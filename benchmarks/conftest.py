"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one exhibit of the paper (a table, the
figure, or an ablation DESIGN.md calls for) and prints it in a form
directly comparable with the original.  pytest-benchmark times the
computational core; the assertions check the *shape* of the results
(who wins, rough factors, crossovers) rather than exact platform-
dependent numbers.

Run with::

    pytest benchmarks/ --benchmark-only -s

This conftest also registers the same ``--runslow`` split the tier-1
suite uses (``benchmarks/`` sits outside ``testpaths``, so it cannot
see ``tests/conftest.py``): heavyweight perf benchmarks are marked
``@pytest.mark.slow`` and skipped unless ``--runslow`` is given.  The
registration is guarded so running ``pytest tests benchmarks`` — where
both conftests are "initial" — does not double-define the option.
"""

from typing import List, Sequence

import pytest


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--runslow",
            action="store_true",
            default=False,
            help="also run benchmarks marked @pytest.mark.slow",
        )
    except ValueError:
        pass  # already registered by tests/conftest.py


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running benchmark, skipped unless --runslow"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow; use --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def print_exhibit(title: str, lines: Sequence[str]) -> None:
    """Print a reproduced table/figure with a banner (visible with -s)."""
    width = max([len(title) + 4] + [len(line) for line in lines])
    print()
    print("=" * width)
    print(title)
    print("=" * width)
    for line in lines:
        print(line)
    print("=" * width)


def format_row(columns: Sequence[object], widths: Sequence[int]) -> str:
    """Right-align columns to fixed widths."""
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            if value != 0 and abs(value) < 0.01:
                cells.append(f"{value:>{width}.4g}")
            else:
                cells.append(f"{value:>{width}.2f}")
        else:
            cells.append(f"{value!s:>{width}}")
    return " ".join(cells)
