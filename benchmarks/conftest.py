"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one exhibit of the paper (a table, the
figure, or an ablation DESIGN.md calls for) and prints it in a form
directly comparable with the original.  pytest-benchmark times the
computational core; the assertions check the *shape* of the results
(who wins, rough factors, crossovers) rather than exact platform-
dependent numbers.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from typing import List, Sequence


def print_exhibit(title: str, lines: Sequence[str]) -> None:
    """Print a reproduced table/figure with a banner (visible with -s)."""
    width = max([len(title) + 4] + [len(line) for line in lines])
    print()
    print("=" * width)
    print(title)
    print("=" * width)
    for line in lines:
        print(line)
    print("=" * width)


def format_row(columns: Sequence[object], widths: Sequence[int]) -> str:
    """Right-align columns to fixed widths."""
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            if value != 0 and abs(value) < 0.01:
                cells.append(f"{value:>{width}.4g}")
            else:
                cells.append(f"{value:>{width}.2f}")
        else:
            cells.append(f"{value!s:>{width}}")
    return " ".join(cells)
