"""Ablation B — the section 5 claim: important outputs stay certain.

"The polyvalue mechanism is best suited to applications where ... the
most important results depend only loosely on the values of the data
items in the database.  If this is the case, the important transactions
will frequently produce simple output values, even when the database
contains polyvalues."

This bench makes balances/seat-counts uncertain (in-doubt transfers and
reservations), then runs streams of the section 5 "important
transactions" — credit authorizations and reservation grants — far from
and near the uncertainty boundary, and reports the fraction of external
outputs that remained simple (certain).
"""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.banking import authorize, balance_inquiry, transfer
from repro.workloads.reservations import reserve

from conftest import format_row, print_exhibit


def settle(system, handle, limit=5.0):
    deadline = system.sim.now + limit
    while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
        system.run_for(0.1)
    return handle


def output_certainty(handles, key):
    certain = 0
    uncertain = 0
    for handle in handles:
        if handle.status is not TxnStatus.COMMITTED:
            continue
        value = handle.outputs.get(key)
        if is_polyvalue(value):
            uncertain += 1
        else:
            certain += 1
    return certain, uncertain


def uncertain_bank(seed=77):
    """A banking system with acct-b in doubt: {530 committed, 500 aborted}."""
    system = DistributedSystem.build(
        sites=3,
        items={"acct-a": 500, "acct-b": 500, "acct-c": 500},
        seed=seed,
        jitter=0.0,
    )
    system.submit(transfer("acct-a", "acct-b", 30))
    system.run_for(0.035)
    system.crash_site("site-0")
    system.run_for(1.0)
    assert is_polyvalue(system.read_item("acct-b"))
    return system


def run_banking_authorizations(amounts, seed=77):
    """Authorize a stream of purchases against the uncertain balance."""
    system = uncertain_bank(seed)
    handles = []
    for amount in amounts:
        handle = system.submit(authorize("acct-b", amount), at="site-1")
        settle(system, handle)
        handles.append(handle)
    return system, handles


def run_banking_inquiries(count, seed=79):
    """Section 3.4's other option: present uncertain balances raw."""
    system = uncertain_bank(seed)
    handles = []
    for _ in range(count):
        handle = system.submit(balance_inquiry("acct-b"), at="site-1")
        settle(system, handle)
        handles.append(handle)
    return system, handles


def run_reservations(initial_sold, capacity, requests, seed=78):
    """Grant a stream of reservations against an uncertain sold count."""
    system = DistributedSystem.build(
        sites=3,
        items={"flight-x": initial_sold, "flight-y": 0, "flight-z": 0},
        seed=seed,
        jitter=0.0,
    )
    # Make flight-x's count uncertain via an in-doubt reservation
    # coordinated at a remote site that then crashes.
    system.submit(reserve("flight-x", capacity), at="site-1")
    system.run_for(0.035)
    system.crash_site("site-1")
    system.run_for(1.0)
    assert is_polyvalue(system.read_item("flight-x"))
    handles = []
    for _ in range(requests):
        handle = system.submit(reserve("flight-x", capacity), at="site-0")
        settle(system, handle)
        handles.append(handle)
    return system, handles


def run_all():
    results = {}
    # Credit authorizations are *conservative by construction*
    # (definitely(balance >= amount)), so the yes/no answer is always
    # simple — one of section 3.4's two options for outputs.
    _, handles = run_banking_authorizations(amounts=[40, 60, 75, 90, 120])
    results["credit authorizations"] = output_certainty(handles, "approved")
    # Balance inquiries take the other 3.4 option: present the
    # uncertain output to the user ("a ticket agent would not be
    # bothered by an uncertain answer").
    _, handles = run_banking_inquiries(count=5)
    results["balance inquiries"] = output_certainty(handles, "balance")
    # Plenty of seats: every alternative grants — certain output.
    _, handles = run_reservations(initial_sold=10, capacity=100, requests=6)
    results["reservations, empty flight"] = output_certainty(handles, "granted")
    # Nearly full: the grant decision honestly depends on the outcome.
    _, handles = run_reservations(initial_sold=97, capacity=100, requests=6)
    results["reservations, nearly full"] = output_certainty(handles, "granted")
    return results


def test_application_output_certainty(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (28, 9, 11, 16)
    lines = [
        format_row(("scenario", "certain", "uncertain", "certain_frac"), widths)
    ]
    for scenario, (certain, uncertain) in results.items():
        total = certain + uncertain
        lines.append(
            format_row(
                (scenario, certain, uncertain, certain / total if total else 1.0),
                widths,
            )
        )
    print_exhibit(
        "Ablation B: certainty of 'important' outputs under database "
        "uncertainty (section 5)",
        lines,
    )

    # The paper's headline claim: the important transactions (credit
    # approvals, reservation grants away from capacity) produce simple
    # outputs even over an uncertain database.
    certain, uncertain = results["credit authorizations"]
    assert uncertain == 0 and certain == 5
    certain, uncertain = results["reservations, empty flight"]
    assert uncertain == 0 and certain == 6

    # Inquiries present the uncertainty honestly (section 3.4).
    certain, uncertain = results["balance inquiries"]
    assert uncertain == 5

    # Near capacity, *some* grant decisions are honestly uncertain —
    # the mechanism surfaces exactly the unavoidable uncertainty —
    # but requests that fit below the smallest possible count still
    # answer exactly.
    certain, uncertain = results["reservations, nearly full"]
    assert uncertain >= 1
    assert certain >= 1
