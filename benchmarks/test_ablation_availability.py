"""Ablation A — availability and consistency of the three commit policies.

Sections 2.2-2.4 of the paper position polyvalues against window
minimisation (blocking 2PC) and relaxed consistency.  This bench
constructs the in-doubt window deterministically, many times: each
round submits a cross-site transfer, crashes the coordinator inside the
commit window, then — while the failure is outstanding — submits probe
transactions against the in-doubt item.  After recovery and settling it
moves to the next round.

The probes measure exactly the property the paper is about: *can the
database keep processing transactions against data touched by an
interrupted atomic update?*

* POLYVALUE — probes commit (items stay available) and the database
  converges to the correct state;
* BLOCKING — probes abort while the outcome is unknown (availability
  cost of holding locks across the window);
* RELAXED — probes commit, but the unilateral guesses disagree with the
  coordinator's actual outcome (consistency cost).
"""

import pytest

from repro.txn.baselines import blocking_system, polyvalue_system, relaxed_system
from repro.txn.transaction import Transaction, TxnStatus

from conftest import format_row, print_exhibit

ROUNDS = 10
PROBES_PER_ROUND = 3


def transfer(source, target, amount):
    def body(ctx):
        value = ctx.read(source)
        ctx.write(source, value - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(body=body, items=(source, target))


def probe(item):
    def body(ctx):
        ctx.write(item, ctx.read(item) + 1)

    return Transaction(body=body, items=(item,), label="probe")


def run_policy(factory, seed=909):
    items = {"a": 1000, "b": 1000, "c": 1000}
    # Zero jitter makes the protocol timeline exact: reads at 10 ms,
    # stage at 30 ms, readies delivered at 40 ms.  Crashing at 35 ms is
    # therefore *always* inside the in-doubt window: the remote
    # participant has sent ready, the coordinator has not yet decided.
    system = factory(sites=3, items=items, seed=seed, jitter=0.0)
    probe_committed = 0
    probe_aborted = 0
    for round_index in range(ROUNDS):
        system.submit(transfer("a", "b", 10))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)  # wait-timeout fires; policy applies
        # Probes against the in-doubt item "b" during the outage.
        for _ in range(PROBES_PER_ROUND):
            handle = system.submit(probe("b"), at="site-1")
            system.run_for(1.0)
            if handle.status is TxnStatus.COMMITTED:
                probe_committed += 1
            else:
                probe_aborted += 1
        system.recover_site("site-0")
        system.run_for(5.0)
    metrics = system.metrics
    return {
        "probe_committed": probe_committed,
        "probe_aborted": probe_aborted,
        "polyvalues": metrics.polyvalues_installed,
        "blocked_item_s": metrics.blocked_item_seconds,
        "unilateral": metrics.unilateral_decisions,
        "inconsistent": metrics.inconsistent_decisions,
        "residual_poly": system.total_polyvalues(),
        "final_b": system.read_item("b"),
    }


def run_all():
    return {
        "polyvalue": run_policy(polyvalue_system),
        "blocking": run_policy(blocking_system),
        "relaxed": run_policy(relaxed_system),
    }


def test_policy_ablation(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (10, 12, 10, 11, 14, 11, 13, 9)
    lines = [
        format_row(
            (
                "policy",
                "probes ok",
                "probes ab",
                "polyvalues",
                "blocked_item_s",
                "unilateral",
                "inconsistent",
                "final b",
            ),
            widths,
        )
    ]
    for policy, row in results.items():
        lines.append(
            format_row(
                (
                    policy,
                    row["probe_committed"],
                    row["probe_aborted"],
                    row["polyvalues"],
                    row["blocked_item_s"],
                    row["unilateral"],
                    row["inconsistent"],
                    row["final_b"],
                ),
                widths,
            )
        )
    lines.append("")
    lines.append(
        f"({ROUNDS} in-doubt windows x {PROBES_PER_ROUND} probes against the "
        "in-doubt item during each outage)"
    )
    print_exhibit(
        "Ablation A: wait-timeout policies, probe availability during the "
        "in-doubt window",
        lines,
    )

    polyvalue = results["polyvalue"]
    blocking = results["blocking"]
    relaxed = results["relaxed"]
    total_probes = ROUNDS * PROBES_PER_ROUND

    # Every round created an in-doubt window under the polyvalue policy.
    assert polyvalue["polyvalues"] >= ROUNDS

    # POLYVALUE: full availability — every probe commits.
    assert polyvalue["probe_committed"] == total_probes

    # BLOCKING: no availability — every probe aborts (lock held).
    assert blocking["probe_aborted"] == total_probes
    assert blocking["blocked_item_s"] > 5.0
    assert blocking["polyvalues"] == 0

    # RELAXED: available, but it guessed, and the guesses were wrong
    # (coordinator presumed abort; participant committed).
    assert relaxed["probe_committed"] == total_probes
    assert relaxed["unilateral"] >= ROUNDS
    assert relaxed["inconsistent"] >= ROUNDS

    # Consistency of final state: transfers were all presumed-aborted,
    # so b = 1000 + committed probes for honest policies...
    assert polyvalue["final_b"] == 1000 + total_probes
    assert blocking["final_b"] == 1000
    # ...while RELAXED kept the phantom transfers (10 each) — the
    # "transaction performed incorrectly" of section 2.3.
    assert relaxed["final_b"] == 1000 + total_probes + 10 * ROUNDS

    # No residual uncertainty under any policy.
    for row in results.values():
        assert row["residual_poly"] == 0
