"""Ablation F — combining polyvalues with retry-based recovery (§6).

    "The polyvalue mechanism can be combined with other atomic
    distributed update protocols to decrease the chance that polyvalues
    will be created."

The combination implemented here: a wait-phase participant re-queries
the coordinator up to N times before resorting to polyvalues
(``ProtocolConfig.wait_query_retries``).  On a lossy network (8% of
messages dropped), most in-doubt windows are *transient* — a dropped
complete message, not a dead coordinator — and one or two retries
resolve them exactly.  The bench measures, for N in {0, 1, 3}:

* how many polyvalues get created (should fall sharply with N);
* the commit rate (unchanged — polyvalues never blocked anything);
* convergence (always: residual uncertainty is zero either way).
"""

import pytest

from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from conftest import format_row, print_exhibit

TRANSFERS = 120
LOSS = 0.08


def move(source, target):
    def body(ctx):
        ctx.write(source, ctx.read(source) - 1)
        ctx.write(target, ctx.read(target) + 1)

    return Transaction(body=body, items=(source, target))


def run_with_retries(retries, seed=808):
    items = {f"item-{index}": 1000 for index in range(6)}
    system = DistributedSystem.build(
        sites=3,
        items=items,
        seed=seed,
        loss_probability=LOSS,
        config=ProtocolConfig(wait_query_retries=retries, wait_timeout=0.3),
    )
    for index in range(TRANSFERS):
        source = f"item-{index % 6}"
        target = f"item-{(index + 1) % 6}"
        system.submit(move(source, target))
        system.run_for(0.8)
    system.run_for(30.0)
    return {
        "polyvalues": system.metrics.polyvalues_installed,
        "committed": system.metrics.committed,
        "aborted": system.metrics.aborted,
        "residual": system.total_polyvalues(),
        "total": sum(system.database_state().values()),
    }


def run_all():
    return {retries: run_with_retries(retries) for retries in (0, 1, 3)}


def test_retry_combination(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (8, 12, 11, 9, 10, 9)
    lines = [
        format_row(
            ("retries", "polyvalues", "committed", "aborted", "residual", "total"),
            widths,
        )
    ]
    for retries, row in results.items():
        lines.append(
            format_row(
                (
                    retries,
                    row["polyvalues"],
                    row["committed"],
                    row["aborted"],
                    row["residual"],
                    row["total"],
                ),
                widths,
            )
        )
    lines.append("")
    lines.append(
        f"({TRANSFERS} cross-site transfers over a network dropping "
        f"{LOSS:.0%} of messages)"
    )
    print_exhibit(
        "Ablation F: outcome-query retries before polyvalue creation (§6)",
        lines,
    )

    # The lossy network produces real in-doubt windows without retries.
    assert results[0]["polyvalues"] >= 3

    # Retries cut polyvalue creation sharply and monotonically.
    assert results[1]["polyvalues"] < results[0]["polyvalues"]
    assert results[3]["polyvalues"] <= results[1]["polyvalues"]
    assert results[3]["polyvalues"] <= results[0]["polyvalues"] // 3

    # The combination costs nothing in correctness: every run converges
    # with all transfers atomic (totals conserved) and no residue.
    for row in results.values():
        assert row["residual"] == 0
        assert row["total"] == 6000
        assert row["committed"] + row["aborted"] == TRANSFERS
