"""Ablation E — the cost claim of the paper's conclusion.

    "Analysis and simulation have shown that the extra storage and
    processing required to support this mechanism are small, given
    reasonable failure rates and repair times."

This bench produces the numbers behind that sentence on the *real*
system: it creates compounding in-doubt windows, measures the storage
footprint of the resulting polyvalues (pairs, condition literals,
serialized bytes vs. plain values) and the processing fan-out of the
polytransactions that run against them, and checks the analytic
prediction that the steady-state storage overhead for the paper's
typical database is on the order of one part per million.
"""

import pytest

from repro.analysis.cost import (
    measure_processing,
    measure_storage,
    predicted_storage_fraction,
)
from repro.analysis.model import TYPICAL
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from conftest import format_row, print_exhibit

ITEM_COUNT = 30


def move(source, target, amount):
    def body(ctx):
        ctx.write(source, ctx.read(source) - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(body=body, items=(source, target))


def touch(item):
    def body(ctx):
        ctx.write(item, ctx.read(item) + 1)

    return Transaction(body=body, items=(item,))


def run_cost_experiment(seed=31):
    items = {f"item-{index:02d}": 100 for index in range(ITEM_COUNT)}
    system = DistributedSystem.build(
        sites=3, items=items, seed=seed, jitter=0.0
    )
    snapshots = []

    def settle(handle):
        deadline = system.sim.now + 3.0
        while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
            system.run_for(0.1)

    def in_doubt_wave(source, coordinator, amount):
        """One in-doubt window over item-01 plus a polytransaction on it."""
        system.submit(move(source, "item-01", amount), at=coordinator)
        system.run_for(0.035)
        system.crash_site(coordinator)
        system.run_for(1.0)
        settle(system.submit(touch("item-01"), at="site-1"))
        snapshots.append(measure_storage(system))

    # Two STACKED in-doubt windows (neither recovers before the second
    # arrives): the uncertainty on item-01 compounds to 2x2 pairs.
    in_doubt_wave("item-00", "site-0", amount=5)
    in_doubt_wave("item-02", "site-2", amount=6)

    # Recover everything, then one more (non-stacked) wave.
    system.recover_site("site-0")
    system.recover_site("site-2")
    system.run_for(8.0)
    in_doubt_wave("item-03", "site-0", amount=7)
    system.recover_site("site-0")
    system.run_for(8.0)

    final_storage = measure_storage(system)
    processing = measure_processing(system)
    return snapshots, final_storage, processing


def test_cost_of_the_mechanism(benchmark):
    snapshots, final_storage, processing = benchmark.pedantic(
        run_cost_experiment, rounds=1, iterations=1
    )

    widths = (6, 12, 11, 11, 13, 13, 15)
    lines = [
        format_row(
            (
                "wave",
                "poly items",
                "max pairs",
                "mean pairs",
                "extra bytes",
                "table rows",
                "poly fraction",
            ),
            widths,
        )
    ]
    for wave, report in enumerate(snapshots, start=1):
        lines.append(
            format_row(
                (
                    wave,
                    report.polyvalued_items,
                    report.max_pairs,
                    report.mean_pairs or 0.0,
                    report.extra_bytes,
                    report.outcome_table_entries,
                    report.polyvalue_fraction,
                ),
                widths,
            )
        )
    lines.append("")
    lines.append(
        f"processing: {processing.polytransactions} polytransactions / "
        f"{processing.transactions_decided} decided "
        f"(mean fan-out {processing.mean_fanout:.2f}, "
        f"max {processing.max_fanout}, "
        f"{processing.extra_executions} extra executions)"
    )
    lines.append(
        f"after all recoveries: {final_storage.polyvalued_items} polyvalues, "
        f"{final_storage.outcome_table_entries} bookkeeping rows, "
        f"{final_storage.extra_bytes} extra bytes"
    )
    lines.append(
        "analytic prediction, paper's typical database (Table 1 row 1): "
        f"storage overhead = {predicted_storage_fraction(TYPICAL):.2e} "
        "of the database"
    )
    print_exhibit("Ablation E: storage and processing cost (§4, conclusion)", lines)

    # Uncertainty was created, and the stacked second wave compounded
    # it (2 in-doubt transactions -> 2x2 pairs); the post-recovery
    # third wave is back to a plain 2-pair polyvalue.
    assert snapshots[0].polyvalued_items >= 1
    assert snapshots[0].max_pairs == 2
    assert snapshots[1].max_pairs == 4
    assert snapshots[2].max_pairs == 2

    # Storage overhead stays bounded: even mid-failure, polyvalues are
    # a small slice of the database and each has few pairs.
    for report in snapshots:
        assert report.polyvalue_fraction < 0.25
        assert report.max_pairs <= 8

    # Processing overhead: a handful of extra executions.
    assert processing.polytransactions >= 3
    assert processing.mean_fanout <= 4
    assert processing.extra_executions <= 3 * processing.polytransactions

    # The central cost claim: after failures recover, every cost term
    # returns to zero.
    assert final_storage.polyvalued_items == 0
    assert final_storage.outcome_table_entries == 0
    assert final_storage.extra_bytes == 0

    # And the analytic overhead for the typical database is ~1e-6.
    assert predicted_storage_fraction(TYPICAL) < 1e-5
