"""Ablation H — cross-validating the full system against the §4 model.

The paper validates its analytic model only against an *abstract*
simulation (Table 2).  This repository also has the thing neither the
model nor that simulation contains: a full implementation — network,
2PC, locking, polyvalue installation and distributed outcome recovery.
This bench closes the loop:

1. run the full system under a background random-update workload while
   in-doubt windows are injected at a known rate (a cross-site transfer
   whose coordinator is crashed between the participant's *ready* and
   the decision, with exponentially distributed repair);
2. *measure* the model's inputs from the run itself — arrival rate U,
   failure probability F (in-doubt windows per submission) — and use
   the effective recovery rate R_eff implied by the injection (mean
   repair plus the outcome-query delay);
3. compare ``P = U·F·I/(I·R_eff + U·Y − U·D)`` with the *observed*
   time-weighted mean polyvalue count of the full system, for two
   dependency levels.

Findings the assertions encode:

* at D=0 (no propagation) the model predicts the implemented system's
  polyvalue population within ~50% — the 1979 back-of-envelope formula
  describes a real protocol stack, not just its own abstraction;
* at D=2 the implementation carries *less* uncertainty than the model
  allows: the model's propagation term assumes every read of a
  polyvalued item spreads the uncertainty, but this implementation's
  eager outcome caching (sites reduce incoming values against outcomes
  they already know) suppresses much of that spread.  The model is an
  upper bound here — the safe direction.
"""

import pytest

from repro.analysis.model import ModelParams, steady_state_polyvalues
from repro.metrics.series import TimeSeries
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
)

from conftest import format_row, print_exhibit

ITEM_COUNT = 60
UPDATE_RATE = 8.0
MEAN_REPAIR = 2.0
#: Mean extra delay before a resolved outcome reaches the polyvalue
#: holder: half the outcome-query interval plus a round trip.
QUERY_DELAY = 0.6
WINDOW_PERIOD = 5.0
DURATION = 400.0
WARMUP = 50.0
SEEDS = (901, 902, 903)


def transfer(source, target):
    def body(ctx):
        ctx.write(source, ctx.read(source) - 1)
        ctx.write(target, ctx.read(target) + 1)

    return Transaction(body=body, items=(source, target), label="window")


class WindowInjector:
    """Every WINDOW_PERIOD seconds: one transfer whose coordinator is
    crashed inside the commit window, repaired after Exp(MEAN_REPAIR)."""

    def __init__(self, system, items):
        self._system = system
        self._rng = system.rng.fork("window-injector")
        # Alternate between two site-pairs so consecutive windows never
        # hit a still-down site.
        self._pairs = [(items[0], items[1]), (items[2], items[0])]
        self._round = 0
        system.sim.schedule(WINDOW_PERIOD, self._fire)

    def _fire(self):
        system = self._system
        source, target = self._pairs[self._round % len(self._pairs)]
        self._round += 1
        coordinator = system.catalog.site_of(source)
        if system.network.is_up(coordinator):
            system.submit(transfer(source, target), at=coordinator)
            # Timeline (50 ms links, no jitter): stage delivered at
            # 150 ms, readies at 200 ms.  Crash at 175 ms: the remote
            # participant has staged and sent ready; no decision exists.
            system.sim.schedule(0.175, lambda c=coordinator: self._crash(c))
        system.sim.schedule(WINDOW_PERIOD, self._fire)

    def _crash(self, coordinator):
        system = self._system
        if not system.network.is_up(coordinator):
            return
        system.crash_site(coordinator)
        repair = self._rng.exponential(MEAN_REPAIR)
        system.sim.schedule(
            repair, lambda: system.recover_site(coordinator)
        )


def run_once(dependency_mean, seed):
    values = {item: 1 for item in make_item_ids(ITEM_COUNT)}
    system = DistributedSystem.build(
        sites=3,
        items=values,
        seed=seed,
        base_latency=0.05,
        jitter=0.0,
    )
    workload = RandomUpdateWorkload(
        system,
        WorkloadConfig(
            update_rate=UPDATE_RATE,
            dependency_mean=dependency_mean,
        ),
        seed=seed,
    )
    WindowInjector(system, make_item_ids(ITEM_COUNT))
    workload.start()
    system.run_for(DURATION)
    workload.stop()

    metrics = system.metrics
    series = TimeSeries()
    series.record(0.0, 0)
    for time, value in metrics.polyvalue_count.points:
        series.record(time, value)
    observed_p = series.time_weighted_mean(WARMUP, DURATION)

    measured_u = metrics.submitted / DURATION
    measured_f = (
        metrics.in_doubt_windows / metrics.submitted if metrics.submitted else 0.0
    )
    params = ModelParams(
        updates_per_second=measured_u,
        failure_probability=max(measured_f, 1e-9),
        items=ITEM_COUNT,
        recovery_rate=1.0 / (MEAN_REPAIR + QUERY_DELAY),
        dependency_mean=dependency_mean,
        update_independence=0.0,
    )
    return {
        "D": dependency_mean,
        "seed": seed,
        "measured_u": measured_u,
        "measured_f": measured_f,
        "windows": metrics.in_doubt_windows,
        "observed_p": observed_p,
        "predicted_p": steady_state_polyvalues(params),
    }


def run_all():
    rows = []
    for dependency_mean in (0.0, 2.0):
        for seed in SEEDS:
            rows.append(run_once(dependency_mean, seed))
    return rows


def test_model_predicts_the_full_system(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (4, 6, 10, 11, 9, 12, 13)
    lines = [
        format_row(
            ("D", "seed", "U (meas)", "F (meas)", "windows", "observed P",
             "predicted P"),
            widths,
        )
    ]
    for row in rows:
        lines.append(
            format_row(
                (
                    row["D"],
                    row["seed"],
                    row["measured_u"],
                    row["measured_f"],
                    row["windows"],
                    row["observed_p"],
                    row["predicted_p"],
                ),
                widths,
            )
        )

    def mean_over_seeds(dependency_mean, key):
        chosen = [row[key] for row in rows if row["D"] == dependency_mean]
        return sum(chosen) / len(chosen)

    lines.append("")
    for dependency_mean in (0.0, 2.0):
        lines.append(
            f"D={dependency_mean:g}: observed P = "
            f"{mean_over_seeds(dependency_mean, 'observed_p'):.3f}, "
            f"model(measured U,F) predicts "
            f"{mean_over_seeds(dependency_mean, 'predicted_p'):.3f}"
        )
    print_exhibit(
        "Ablation H: the §4 model vs the FULL system (measured U and F)",
        lines,
    )

    # In-doubt windows were injected throughout every run.
    for row in rows:
        assert row["windows"] >= 30, row

    # D=0: the model predicts the full system.  Factor-level agreement
    # per run; ~50% agreement on seed means.
    for row in rows:
        if row["D"] == 0.0:
            assert row["observed_p"] < 3.0 * row["predicted_p"], row
            assert row["observed_p"] > row["predicted_p"] / 3.0, row
    observed_d0 = mean_over_seeds(0.0, "observed_p")
    predicted_d0 = mean_over_seeds(0.0, "predicted_p")
    assert observed_d0 == pytest.approx(predicted_d0, rel=0.5)

    # D=2: the model's propagation-amplified prediction upper-bounds
    # the implementation (eager outcome caching suppresses spread).
    observed_d2 = mean_over_seeds(2.0, "observed_p")
    predicted_d2 = mean_over_seeds(2.0, "predicted_p")
    assert predicted_d2 > predicted_d0  # the model amplifies with D
    assert observed_d2 <= predicted_d2
    assert observed_d2 > 0.3 * observed_d0  # same order as D=0
