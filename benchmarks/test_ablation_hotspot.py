"""Ablation G — non-uniform access and the "effective database size" (§4.2).

    "In a real system, the selection of items to participate in
    transactions is not likely to be uniform.  Some items may
    participate in transactions much more frequently than others.  This
    has the effect of reducing the effective size of the database."

The paper states this and moves on; this bench quantifies it.  For a
range of hot-spot skews (a fraction *h* of items receiving weight *w*
of all accesses), it measures the steady-state polyvalue count and
compares it against the model evaluated at the *effective* database
size ``I_eff = 1 / sum_i p_i^2`` (the uniform size with the same access
collision probability).  It also locates the cliff the remark implies:
enough skew pushes a comfortably stable database into the unstable
regime where propagation outpaces recovery.
"""

import pytest

from repro.analysis.model import (
    ModelParams,
    is_stable,
    steady_state_polyvalues,
)
from repro.analysis.montecarlo import PolyvalueSimulation

from conftest import format_row, print_exhibit

BASE = ModelParams(
    updates_per_second=10,
    failure_probability=0.01,
    items=10_000,
    recovery_rate=0.01,
    dependency_mean=1,
    update_independence=0,
)

#: (hot_fraction, hot_weight) pairs, mildest to harshest — all chosen to
#: keep I_eff comfortably inside the model's stable, small-P regime
#: (near the stability boundary the paper's first-order model is, by
#: its own admission, not an accurate predictor).
SKEWS = [
    (0.0, 0.0),
    (0.20, 0.50),
    (0.10, 0.50),
    (0.10, 0.65),
    (0.05, 0.50),
]

#: A skew harsh enough to destabilise the system.
UNSTABLE_SKEW = (0.01, 0.80)


def run_skew(hot_fraction, hot_weight, seed):
    simulation = PolyvalueSimulation(
        BASE, seed=seed, hot_fraction=hot_fraction, hot_weight=hot_weight
    )
    effective = simulation.effective_items()
    effective_params = BASE.vary(items=effective)
    result = simulation.run(4000.0)
    if is_stable(effective_params):
        prediction = steady_state_polyvalues(effective_params)
    else:
        prediction = None
    return {
        "effective_items": effective,
        "simulated": result.mean_polyvalues,
        "predicted": prediction,
        "final": result.final_polyvalues,
    }


def run_all():
    rows = []
    for index, (hot_fraction, hot_weight) in enumerate(SKEWS):
        rows.append(
            (
                (hot_fraction, hot_weight),
                run_skew(hot_fraction, hot_weight, seed=4200 + index),
            )
        )
    unstable = run_skew(*UNSTABLE_SKEW, seed=4299)
    return rows, unstable


def test_hotspot_effective_size(benchmark):
    rows, unstable = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (8, 8, 12, 12, 14)
    lines = [
        format_row(
            ("hot %", "weight", "I_eff", "sim P", "model(I_eff)"), widths
        )
    ]
    for (hot_fraction, hot_weight), row in rows:
        lines.append(
            format_row(
                (
                    hot_fraction * 100,
                    hot_weight,
                    row["effective_items"],
                    row["simulated"],
                    row["predicted"] if row["predicted"] is not None else "unstable",
                ),
                widths,
            )
        )
    lines.append("")
    lines.append(
        f"destabilising skew {UNSTABLE_SKEW}: I_eff = "
        f"{unstable['effective_items']:.0f} -> model unstable; simulated P "
        f"reached {unstable['final']} (uniform steady state is "
        f"{steady_state_polyvalues(BASE):.1f})"
    )
    print_exhibit(
        'Ablation G: hot spots reduce the "effective size of the database" '
        "(§4.2 remark)",
        lines,
    )

    by_skew = dict(rows)

    # Effective size is monotone in skew harshness.
    sizes = [row["effective_items"] for _, row in rows]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] == BASE.items

    # More skew -> more polyvalues (compare endpoints, which differ 2x+).
    assert (
        by_skew[SKEWS[-1]]["simulated"] > 1.4 * by_skew[(0.0, 0.0)]["simulated"]
    )

    # The uniform model evaluated at I_eff predicts every stable point.
    for (hot_fraction, hot_weight), row in rows:
        assert row["predicted"] is not None
        assert row["simulated"] == pytest.approx(row["predicted"], rel=0.45)

    # The destabilising skew: model flags it, and the simulation blows
    # far past anything the stable configurations reach.
    assert unstable["predicted"] is None
    stable_max = max(row["simulated"] for _, row in rows)
    assert unstable["final"] > 3 * stable_max
