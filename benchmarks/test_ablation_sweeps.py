"""Ablation D — the parameter-space exploration the paper skipped.

"Space limitations in this paper prevent a thorough exploration of the
parameter space, however the individual effects of the parameters can
be clearly seen from the equations and the data."

This bench produces the figure-style series behind that sentence: one
sweep per model parameter around the Table 2 operating point, model
against Monte-Carlo measurement, plus the stability boundary in D
(the value where propagation outpaces recovery and the steady state
diverges).
"""

import pytest

from repro.analysis.model import ModelParams, steady_state_polyvalues
from repro.analysis.sweep import format_sweep_table, sweep

from conftest import print_exhibit

BASE = ModelParams(
    updates_per_second=10,
    failure_probability=0.01,
    items=10_000,
    recovery_rate=0.01,
    dependency_mean=1,
    update_independence=0,
)

SWEEPS = [
    ("updates_per_second", [2, 5, 10, 20, 40]),
    ("failure_probability", [0.001, 0.005, 0.01, 0.02, 0.05]),
    ("recovery_rate", [0.005, 0.01, 0.02, 0.05, 0.1]),
    # D stops at 4: beyond that the operating point nears the stability
    # boundary (I*R/U = 10), where the paper's first-order model is, by
    # its own admission, no longer an accurate predictor and the
    # stochastic settling time (I / margin) outgrows any fixed run
    # length.  The boundary itself is examined separately below.
    ("dependency_mean", [0, 1, 2, 3, 4]),
    ("update_independence", [0.0, 0.25, 0.5, 0.75, 1.0]),
    ("items", [5_000, 10_000, 20_000, 50_000]),
]


def run_all_sweeps():
    results = {}
    for index, (parameter, values) in enumerate(SWEEPS):
        results[parameter] = sweep(
            BASE,
            parameter,
            values,
            run_simulation=True,
            duration=1500.0,
            seed=6000 + index,
        )
    # The stability boundary: sweep D up to and past I*R/U = 10.
    results["dependency_boundary"] = sweep(
        BASE, "dependency_mean", [8, 9, 9.5, 10, 11, 15]
    )
    return results


def test_parameter_sweeps(benchmark):
    results = benchmark.pedantic(run_all_sweeps, rounds=1, iterations=1)

    for parameter, _ in SWEEPS:
        print_exhibit(
            f"Ablation D: P vs {parameter} (model and simulation)",
            format_sweep_table(results[parameter]).splitlines(),
        )
    print_exhibit(
        "Ablation D: the stability boundary in D (I*R/U = 10)",
        format_sweep_table(results["dependency_boundary"]).splitlines(),
    )

    # Monotone trends predicted by the formula, confirmed by simulation.
    def models(parameter):
        return [p.model for p in results[parameter] if p.model is not None]

    def sims(parameter):
        return [p.simulated for p in results[parameter] if p.simulated is not None]

    assert models("updates_per_second") == sorted(models("updates_per_second"))
    assert sims("updates_per_second") == sorted(sims("updates_per_second"))

    assert models("failure_probability") == sorted(models("failure_probability"))
    assert sims("failure_probability") == sorted(sims("failure_probability"))

    assert models("recovery_rate") == sorted(models("recovery_rate"), reverse=True)
    assert sims("recovery_rate") == sorted(sims("recovery_rate"), reverse=True)

    assert models("dependency_mean") == sorted(models("dependency_mean"))
    assert models("update_independence") == sorted(
        models("update_independence"), reverse=True
    )

    # Simulation tracks the model within a band at every stable point.
    for parameter, _ in SWEEPS:
        for point in results[parameter]:
            if point.model is not None and point.simulated is not None:
                assert point.simulated == pytest.approx(
                    point.model, rel=0.45, abs=0.6
                ), (parameter, point.value)

    # Stability boundary: finite below D = I*R/U = 10, divergent at and
    # beyond it.
    boundary = {p.value: p for p in results["dependency_boundary"]}
    assert boundary[8].stable and boundary[9.5].stable
    assert not boundary[10].stable
    assert not boundary[15].stable
    # Approaching the boundary, P blows up.
    assert boundary[9.5].model > 3 * boundary[8].model
