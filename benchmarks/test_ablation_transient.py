"""Ablation C — stability: a polyvalue burst decays back to steady state.

Section 4.1: "it is stable in that if the number of polyvalues
temporarily becomes larger than the predicted (steady-state) number,
then the number of polyvalues can be expected to decrease with time.  A
serious failure causing the introduction of many polyvalues does not
cause the number of polyvalues to grow without limit."

This bench injects a mass failure (a burst of simultaneous in-doubt
transactions tagging hundreds of items) into the Monte-Carlo simulator,
tracks the decay of the polyvalue count, and compares it against the
corrected transient solution of the model ODE
(``P(t) = P_inf + (P0 - P_inf) * exp(-lambda t)``, lambda = (IR+UY-UD)/I).
"""

import pytest

from repro.analysis.model import (
    ModelParams,
    decay_rate,
    steady_state_polyvalues,
    transient_polyvalues,
)
from repro.analysis.montecarlo import PolyvalueSimulation

from conftest import format_row, print_exhibit

PARAMS = ModelParams(
    updates_per_second=10,
    failure_probability=0.01,
    items=10_000,
    recovery_rate=0.01,
    dependency_mean=1,
    update_independence=0,
)
BURST_SIZE = 400
SAMPLE_TIMES = [0, 25, 50, 100, 150, 200, 300, 400, 600, 800]


def run_burst_experiment(seed=55):
    simulation = PolyvalueSimulation(PARAMS, seed=seed)
    # Reach (approximate) steady state first.
    simulation._next_arrival()
    simulation._sim.run_until(600.0)

    # The "serious failure": a burst of in-doubt transactions, each
    # tagging one distinct item, all recovering on the normal
    # exponential schedule.
    rng = simulation._rng
    for burst_index in range(BURST_SIZE):
        txn = f"BURST{burst_index}"
        item = rng.randint(0, int(PARAMS.items) - 1)
        simulation._set_tags(
            item, simulation._tags.get(item, set()) | {txn}
        )
        simulation._items_of.setdefault(txn, set()).add(item)
        recovery = rng.exponential(1.0 / PARAMS.recovery_rate)
        simulation._sim.schedule(recovery, lambda t=txn: simulation._recover(t))
    simulation._record_sample()
    burst_time = simulation._sim.now
    initial = simulation.polyvalue_count()

    trajectory = []
    for offset in SAMPLE_TIMES:
        simulation._sim.run_until(burst_time + offset)
        trajectory.append((offset, simulation.polyvalue_count()))
    return initial, trajectory


def test_burst_decays_to_steady_state(benchmark):
    initial, trajectory = benchmark.pedantic(
        run_burst_experiment, rounds=1, iterations=1
    )
    steady = steady_state_polyvalues(PARAMS)
    rate = decay_rate(PARAMS)

    widths = (10, 14, 14)
    lines = [
        f"steady state P_inf = {steady:.2f}, decay rate lambda = {rate:.4f}/s,"
        f" burst size = {BURST_SIZE}",
        "",
        format_row(("t (s)", "simulated P", "model P(t)"), widths),
    ]
    for offset, count in trajectory:
        model = transient_polyvalues(PARAMS, initial, offset)
        lines.append(format_row((offset, count, model), widths))
    print_exhibit(
        "Ablation C: decay of a polyvalue burst (stability claim, §4.1)",
        lines,
    )

    # The burst registered.
    assert initial >= BURST_SIZE * 0.9

    # Decay: strictly below the burst at every later multiple of the
    # time constant, and monotone in trend (compare widely spaced
    # samples to ride over noise).
    counts = dict(trajectory)
    assert counts[100] < initial
    assert counts[400] < counts[100]
    assert counts[800] < counts[400]

    # Convergence: back to the steady-state neighbourhood within a few
    # time constants (1/lambda ~ 111 s here) — NOT unbounded growth.
    assert counts[800] < steady + 0.15 * BURST_SIZE

    # Agreement with the corrected analytic transient at half-ish decay.
    for offset in (100, 150, 200):
        model = transient_polyvalues(PARAMS, initial, offset)
        assert counts[offset] == pytest.approx(model, rel=0.35)
