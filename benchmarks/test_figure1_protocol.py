"""Figure 1 — "The Update Protocol States".

The paper's only figure is the participant state diagram: three states
(idle, compute, wait) and the transitions between them.  This bench
drives the full-system simulator through scenarios that exercise every
edge, prints the diagram with the empirically observed transition
counts, and asserts that (a) every one of the seven edges was observed
and (b) no transition outside the diagram ever occurred.
"""

import pytest

from repro.txn.runtime import SiteState, TransitionLog
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from conftest import print_exhibit

DIAGRAM = r"""
                 begin
      +--------+ ----->  +---------+
      |  IDLE  |         | COMPUTE |
      +--------+ <-----  +---------+
        ^    ^   abort /      |
        |    |   compute-     | ready
        |    |   timeout      v
        |    |            +--------+
        |    +----------- |  WAIT  |
        |  complete/abort +--------+
        +-- wait-timeout (install polyvalues)
"""


def increment(item):
    def body(ctx):
        ctx.write(item, ctx.read(item) + 1)

    return Transaction(body=body, items=(item,))


def move(source, target):
    def body(ctx):
        ctx.write(source, ctx.read(source) - 1)
        ctx.write(target, ctx.read(target) + 1)

    return Transaction(body=body, items=(source, target))


def drive_all_edges():
    """Run scenarios covering every Figure-1 edge; return the system."""
    items = {f"item-{index}": 100 for index in range(6)}
    system = DistributedSystem.build(sites=3, items=items, seed=2024)

    # Edges: begin, ready, complete — a clean cross-site commit.
    system.submit(move("item-0", "item-1"))
    system.run_for(2.0)

    # Edge: abort (from compute and from wait) — a lock conflict.
    system.submit(increment("item-2"))
    system.submit(increment("item-2"))
    system.run_for(2.0)

    # Edge: compute-timeout — coordinator crashes before staging.
    system.submit(move("item-0", "item-1"))
    system.run_for(0.015)
    system.crash_site("site-0")
    system.run_for(2.0)
    system.recover_site("site-0")
    system.run_for(3.0)

    # Edge: wait-timeout — coordinator crashes in the commit window.
    system.submit(move("item-0", "item-1"))
    system.run_for(0.05)
    system.crash_site("site-0")
    system.run_for(2.0)
    system.recover_site("site-0")
    system.run_for(5.0)

    # Edge: abort received while in wait — partition the participant
    # after it sent ready, under a *longer* wait timeout so the healed
    # partition delivers the abort before the timer fires.
    from repro.txn.config import ProtocolConfig

    patient = DistributedSystem.build(
        sites=3,
        items=dict(items),
        seed=2025,
        config=ProtocolConfig(wait_timeout=3.0),
    )
    patient.submit(move("item-0", "item-1"))
    patient.run_for(0.046)
    patient.network.partition("site-0", "site-1")
    patient.run_for(1.0)  # coordinator timed out -> abort broadcast lost
    patient.network.heal_all()
    patient.run_for(3.0)
    return system, patient


def test_figure1_state_machine(benchmark):
    system, patient = benchmark.pedantic(drive_all_edges, rounds=1, iterations=1)

    combined = TransitionLog()
    combined.records = system.transitions.records + patient.transitions.records

    counts = combined.edge_counts()
    lines = [DIAGRAM, "Observed transitions:"]
    for (source, trigger, target), count in sorted(counts.items()):
        lines.append(f"  {source:>8} --[{trigger:^16}]--> {target:<8} x{count}")
    print_exhibit("Figure 1: the update protocol states", lines)

    # (a) Every edge of the diagram was observed.
    observed = combined.observed_edges()
    missing = TransitionLog.FIGURE_1_EDGES - observed
    assert not missing, f"unexercised Figure-1 edges: {missing}"

    # (b) Nothing outside the diagram ever happened.
    assert combined.all_edges_valid()

    # (c) Per-transaction sanity at each site: transitions alternate out
    # of and back to idle (idle -> compute [-> wait] -> idle ...).
    # The two systems mint independent txn-id namespaces, so validate
    # each transition log separately.
    for log in (system.transitions, patient.transitions):
        by_key = {}
        for record in log.records:
            by_key.setdefault((record.site, record.txn), []).append(record)
        for (site, txn), records in by_key.items():
            state = SiteState.IDLE
            for record in sorted(records, key=lambda r: r.time):
                assert record.source == state, (site, txn, record)
                state = record.target
            assert state == SiteState.IDLE, (site, txn, "did not return to idle")
