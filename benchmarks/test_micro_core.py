"""Micro-benchmarks of the core mechanism's hot paths.

The paper's cost argument ("the extra storage and processing required
... are small") assumes the per-operation constants are sane.  These
benchmarks pin them with wall-clock statistics:

* condition algebra (AND/OR/negation/substitution) at realistic sizes;
* polyvalue construction with flattening and validation;
* a polytransaction over two in-doubt inputs (fork, prune, merge);
* one full commit round of the system simulator;
* one Monte-Carlo simulated second at the Table 2 operating point.

There are no paper numbers to compare against (1979 hardware); the
assertions only guard against pathological regressions.
"""

import pytest

from repro.analysis.model import ModelParams
from repro.analysis.montecarlo import PolyvalueSimulation
from repro.core.conditions import Condition
from repro.core.polytransaction import execute
from repro.core.polyvalue import Polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction


def in_doubt(txn, new, old):
    return Polyvalue.in_doubt(txn, new, old)


def test_condition_algebra(benchmark):
    t1, t2, t3 = Condition.of("T1"), Condition.of("T2"), Condition.of("T3")

    def algebra():
        condition = (t1 & ~t2) | (t2 & t3) | ~t1
        negated = ~condition
        reduced = condition.substitute({"T2": True})
        return condition, negated, reduced

    condition, negated, reduced = benchmark(algebra)
    assert not (condition & negated).is_satisfiable()
    assert reduced.variables() <= {"T1", "T3"}


def test_polyvalue_construction_with_flattening(benchmark):
    inner = in_doubt("T1", 100, 150)

    def construct():
        outer = Polyvalue(
            [(inner, Condition.of("T2")), (7, Condition.not_of("T2"))]
        )
        return outer.reduce({"T1": True})

    result = benchmark(construct)
    assert set(result.possible_values()) == {100, 7}


def test_polytransaction_two_doubts(benchmark):
    snapshot = {
        "a": in_doubt("T1", 10, 20),
        "b": in_doubt("T2", 1, 2),
        "out": 0,
    }

    def body(ctx):
        ctx.write("out", ctx.read("a") + ctx.read("b"))

    def run():
        return execute(body, snapshot).merged_writes(snapshot)

    merged = benchmark(run)
    assert len(merged["out"].possible_values()) == 4


def test_full_commit_round(benchmark):
    def commit_round():
        system = DistributedSystem.build(
            sites=3, items={"a": 1, "b": 2}, seed=5, jitter=0.0
        )

        def move(ctx):
            ctx.write("a", ctx.read("a") - 1)
            ctx.write("b", ctx.read("b") + 1)

        handle = system.submit(Transaction(body=move, items=("a", "b")))
        system.run_for(0.2)
        return handle

    handle = benchmark(commit_round)
    assert handle.status.value == "committed"


def test_montecarlo_throughput(benchmark):
    params = ModelParams(
        updates_per_second=10,
        failure_probability=0.01,
        items=10_000,
        recovery_rate=0.01,
        dependency_mean=1,
        update_independence=0,
    )

    def one_thousand_seconds():
        simulation = PolyvalueSimulation(params, seed=3)
        return simulation.run(1000.0)

    result = benchmark.pedantic(one_thousand_seconds, rounds=3, iterations=1)
    assert result.transactions > 8000
