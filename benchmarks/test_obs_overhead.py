"""Guard: the observability layer is pay-for-what-you-use.

The bus threads through every hot path of the full-system simulator
(network transport, state transitions, coordinator decisions), each
call site guarded by a plain truthiness check.  These benchmarks pin
the contract that an *unobserved* system — bus present, no subscribers
— runs within a few percent of a system with the bus stripped out
entirely, and that observation changes nothing but what is observed.

Timing guards use best-of-N wall-clock minima (the low-noise estimator
for "how fast can this go"); the thresholds carry a small absolute
slack so sub-millisecond scheduler jitter cannot flake them.
"""

import time

from repro.analysis.model import ModelParams
from repro.analysis.montecarlo import PolyvalueSimulation
from repro.obs.events import EventBus, EventLog
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction


def _build_system(seed=11):
    items = {f"item-{index}": 100 for index in range(12)}
    return DistributedSystem.build(sites=3, items=items, seed=seed, jitter=0.0)


def _strip_bus(system):
    """Remove the bus entirely — the pre-observability baseline."""
    system.sim.bus = None
    system.network._bus = None
    system.transitions._bus = None
    for site in system.sites.values():
        site.runtime.bus = None


def _drive(system, transactions=60):
    def bump(item):
        def body(ctx):
            ctx.write(item, ctx.read(item) + 1)

        return Transaction(body=body, items=(item,))

    item_names = sorted(system.catalog.all_items())
    for index in range(transactions):
        system.submit(bump(item_names[index % len(item_names)]))
        system.run_for(0.05)
    # Drain through the quiescence predicate rather than a fixed-length
    # run: this exercises the engine's indexed event heap
    # (next_time_except) on the same hot path the correctness harness
    # uses, and stops as soon as all protocol work is done.
    system.run_to_quiescence(max_time=system.sim.now + 2.0)


def _best_of(builder, rounds=7):
    best = float("inf")
    for _ in range(rounds):
        system = builder()
        start = time.perf_counter()
        _drive(system)
        best = min(best, time.perf_counter() - start)
    return best


class TestUnobservedOverhead:
    def test_full_system_unobserved_within_5_percent_of_busless(self):
        def stripped():
            system = _build_system()
            _strip_bus(system)
            return system

        # Interleave measurement orders so drift hits both arms alike.
        busless = _best_of(stripped)
        unobserved = _best_of(_build_system)
        busless = min(busless, _best_of(stripped))
        # 5% relative plus 2ms absolute slack for timer granularity.
        assert unobserved <= busless * 1.05 + 0.002, (
            f"unobserved run {unobserved * 1000:.2f}ms vs bus-free "
            f"{busless * 1000:.2f}ms — the no-subscriber guard got expensive"
        )

    def test_montecarlo_unobserved_within_5_percent(self):
        params = ModelParams(
            updates_per_second=10,
            failure_probability=0.01,
            items=10_000,
            recovery_rate=0.01,
            dependency_mean=1,
            update_independence=0,
        )

        def run_one(attach_bus):
            simulation = PolyvalueSimulation(params, seed=5)
            if attach_bus:
                simulation._sim.bus = EventBus()  # attached but unobserved
            start = time.perf_counter()
            simulation.run(1000.0)
            return time.perf_counter() - start

        baseline = min(run_one(False) for _ in range(5))
        unobserved = min(run_one(True) for _ in range(5))
        baseline = min(baseline, min(run_one(False) for _ in range(2)))
        assert unobserved <= baseline * 1.05 + 0.002


def _campaign_worker(seed):
    """One guard trial: drive a small instrumented system to quiescence."""
    system = _build_system(seed=seed)
    _drive(system, transactions=15)
    return system.metrics.committed


class TestCampaignRecordingOverhead:
    """The PR-6 telemetry contract: recording a campaign into the
    SQLite store (a CampaignRecorder subscribed to the driver bus)
    stays within a few percent of the same campaign unrecorded, and a
    bus with no subscribers is still skipped by the pool's truthiness
    guard exactly like the protocol hot paths."""

    TRIALS = 6

    def _campaign(self, bus):
        from repro.parallel import run_trials

        start = time.perf_counter()
        outcome = run_trials(
            _campaign_worker,
            list(range(self.TRIALS)),
            jobs=1,
            label="overhead-guard",
            bus=bus,
        )
        elapsed = time.perf_counter() - start
        assert not outcome.failures
        return elapsed

    def test_recorder_subscribed_within_5_percent(self, tmp_path):
        from repro.obs.store import CampaignRecorder, CampaignStore

        def recorded(round_index):
            store = CampaignStore(str(tmp_path / f"guard-{round_index}.sqlite"))
            bus = EventBus()
            recorder = CampaignRecorder(
                store, command="bench", label="overhead-guard", bus=bus
            )
            try:
                return self._campaign(bus)
            finally:
                recorder.finish(ok=True)
                store.close()

        bare = min(self._campaign(None) for _ in range(3))
        with_recorder = min(recorded(i) for i in range(3))
        bare = min(bare, min(self._campaign(None) for _ in range(2)))
        # 5% relative plus 2ms absolute slack for timer granularity.
        assert with_recorder <= bare * 1.05 + 0.002, (
            f"recorded campaign {with_recorder * 1000:.2f}ms vs bare "
            f"{bare * 1000:.2f}ms — the campaign recorder got expensive"
        )

    def test_no_subscriber_campaign_bus_is_free(self):
        bare = min(self._campaign(None) for _ in range(3))
        empty_bus = min(self._campaign(EventBus()) for _ in range(3))
        bare = min(bare, min(self._campaign(None) for _ in range(2)))
        assert empty_bus <= bare * 1.05 + 0.002, (
            f"unobserved campaign {empty_bus * 1000:.2f}ms vs bus-free "
            f"{bare * 1000:.2f}ms — the no-subscriber guard got expensive"
        )


class TestObservationIsPassive:
    def test_subscribing_changes_nothing_but_observation(self):
        observed = _build_system()
        log = EventLog(observed.bus)
        plain = _build_system()
        _drive(observed)
        _drive(plain)
        assert len(log) > 0
        assert observed.database_state() == plain.database_state()
        assert observed.metrics.summary() == plain.metrics.summary()
        assert observed.sim.events_processed == plain.sim.events_processed
