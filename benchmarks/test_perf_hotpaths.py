"""Guard: the hot-path performance layer actually pays for itself.

The perf layer has three tiers — interned/memoized condition algebra,
sim/net fast paths (indexed event heap, delivery batching, polyvalue
fast paths), and the ``python -m repro bench`` measurement harness.
These benchmarks pin the *machine-relative* contracts: the optimised
path must beat the same workload with the optimisation disabled in
this very process.  Absolute ops/s belong in ``BENCH_perf.json``, not
in assertions — they would flake across runners.

Run the heavyweight set with ``pytest benchmarks/ --runslow``.
"""

import pytest

from repro import bench
from repro.core import conditions
from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue

# Short budgets keep the default run snappy; the ratios they produce
# are noisier than full mode but far above the asserted floors.
QUICK = 0.05


class TestConditionAlgebraSpeedups:
    def test_memoized_algebra_at_least_2x_uncached(self):
        # The PR's headline acceptance criterion, measured in-process:
        # identical workload, caches on vs configure_caches(0).
        speedup = bench.bench_condition_cache_speedup(min_time=QUICK)
        assert speedup >= 2.0, (
            f"condition memoization only {speedup:.2f}x over uncached — "
            "the hot-path layer lost its reason to exist"
        )

    def test_interning_makes_equality_identity(self):
        a = (Condition.of("T1") & Condition.not_of("T2")) | Condition.of("T3")
        b = (Condition.of("T1") & Condition.not_of("T2")) | Condition.of("T3")
        assert a is b

    def test_cache_disable_is_observationally_silent(self):
        with_caches = bench.bench_condition_ops(min_time=QUICK)
        conditions.configure_caches(0)
        try:
            without = bench.bench_condition_ops(min_time=QUICK)
        finally:
            conditions.configure_caches()
        # Both arms must complete and report sane throughput; the ratio
        # itself is asserted above.
        assert with_caches > 0 and without > 0


class TestPolyvalueFastPaths:
    def test_in_doubt_fast_path_beats_validating_constructor(self):
        speedup = bench.bench_polyvalue_fastpath_speedup(min_time=QUICK)
        assert speedup >= 1.2, (
            f"in_doubt fast path only {speedup:.2f}x over the validating "
            "constructor"
        )

    def test_fast_path_and_validating_path_agree(self):
        fast = Polyvalue.in_doubt("T9", 7, 9)
        slow = Polyvalue(
            [(7, Condition.of("T9")), (9, Condition.not_of("T9"))]
        ).collapse()
        assert fast.pairs == slow.pairs

    def test_reduce_identity_short_circuit_returns_self(self):
        pv = Polyvalue(
            [(100, Condition.of("T1")), (150, Condition.not_of("T1"))]
        )
        assert pv.reduce({"UNRELATED": True}) is pv


class TestExplorerThroughput:
    def test_explorer_runs_clean_through_the_indexed_heap(self):
        report = bench.bench_explorer(seeds=3)
        assert report["ok"]
        assert report["schedules"] > 0
        assert report["schedules_per_s"] > 0

    @pytest.mark.slow
    def test_full_explorer_budget_matches_bench_check(self):
        # Same seed budget as BENCH_check.json / the CI check job.
        report = bench.bench_explorer(seeds=bench.FULL_EXPLORER_SEEDS)
        assert report["ok"]
        assert report["schedules"] >= 100


class TestBenchHarness:
    def test_table2_smoke_duration_is_accepted_by_every_row(self):
        wall = bench.bench_table2(duration=bench.SMOKE_TABLE2_DURATION)
        assert wall > 0

    @pytest.mark.slow
    def test_smoke_payload_schema(self):
        report = bench.run_benchmarks(smoke=True)
        assert report["schema"] == 1
        assert report["mode"] == "smoke"
        assert set(report["results"]) >= {
            "condition_ops_per_s",
            "polyvalue_ops_per_s",
            "explorer_schedules",
            "explorer_schedules_per_s",
            "explorer_ok",
            "table2_wall_s",
            "gray_oracles_ok",
            "parallel_cpus",
            "parallel_campaign_trials",
            "parallel_bitwise_identical",
            "campaign_jobs1_per_s",
        }
        assert set(report["guards"]) >= {
            "condition_cache_speedup",
            "polyvalue_fastpath_speedup",
            "adaptive_spurious_reduction",
            "outage_detection_parity",
            "retransmission_reduction",
        }
        assert report["results"]["parallel_bitwise_identical"] is True
        assert report["pre_pr_baseline"] == bench.PRE_PR_BASELINE
        # A payload never regresses against itself.
        assert bench.check_regression(report, report) == []

    def test_check_regression_flags_guard_drops(self):
        report = {
            "results": {"explorer_ok": True},
            "guards": {
                "condition_cache_speedup": 1.0,
                "polyvalue_fastpath_speedup": 2.0,
            },
        }
        baseline = {
            "guards": {
                "condition_cache_speedup": 10.0,
                "polyvalue_fastpath_speedup": 2.0,
            }
        }
        failures = bench.check_regression(report, baseline)
        assert len(failures) == 1
        assert "condition_cache_speedup" in failures[0]

    def test_check_regression_flags_missing_guard_and_oracle_failure(self):
        report = {"results": {"explorer_ok": False}, "guards": {}}
        baseline = {"guards": {"condition_cache_speedup": 10.0}}
        failures = bench.check_regression(report, baseline)
        assert any("missing" in failure for failure in failures)
        assert any("oracle" in failure for failure in failures)

    def test_check_regression_skips_parallel_guards_below_core_count(self):
        # A 1-core machine cannot measure jobs=4 scaling: the committed
        # floor is enforced by multi-core CI, not failed locally.
        baseline = {"guards": {"parallel_speedup_jobs4": 2.0}}
        single_core = {"results": {"parallel_cpus": 1}, "guards": {}}
        assert bench.check_regression(single_core, baseline) == []
        quad_core = {"results": {"parallel_cpus": 4}, "guards": {}}
        failures = bench.check_regression(quad_core, baseline)
        assert any("missing" in failure for failure in failures)
        quad_slow = {
            "results": {"parallel_cpus": 4},
            "guards": {"parallel_speedup_jobs4": 1.0},
        }
        failures = bench.check_regression(quad_slow, baseline)
        assert any("parallel_speedup_jobs4" in f for f in failures)

    def test_check_regression_flags_serial_parallel_divergence(self):
        report = {
            "results": {"parallel_bitwise_identical": False},
            "guards": {},
        }
        failures = bench.check_regression(report, {"guards": {}})
        assert any("diverged" in failure for failure in failures)
