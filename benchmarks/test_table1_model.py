"""Table 1 — "Typical Predictions of the Number of Polyvalues in a Database".

Regenerates all eleven rows of the paper's Table 1 from the analytic
model ``P = UFI / (IR + UY - UD)`` and checks the eight rows whose
printed values are legible in the archival scan against the paper to
two decimal places.
"""

import pytest

from repro.analysis.model import steady_state_polyvalues, table1_rows

from conftest import format_row, print_exhibit

WIDTHS = (6, 8, 10, 8, 4, 4, 10, 10, 28)


def compute_rows():
    return [(row, steady_state_polyvalues(row.params)) for row in table1_rows()]


def test_table1_model_predictions(benchmark):
    computed = benchmark(compute_rows)

    lines = [
        format_row(
            ("U", "F", "I", "R", "Y", "D", "model P", "paper P", "note"),
            WIDTHS,
        )
    ]
    for row, value in computed:
        params = row.params
        lines.append(
            format_row(
                (
                    int(params.U),
                    params.F,
                    int(params.I),
                    params.R,
                    params.Y,
                    int(params.D),
                    value,
                    row.paper_value if row.paper_value is not None else "-",
                    row.note,
                ),
                WIDTHS,
            )
        )
    print_exhibit("Table 1: predicted steady-state polyvalue count", lines)

    # Shape assertions: every legible paper value reproduced exactly
    # (the formula is closed-form; this is a bit-for-bit reproduction).
    for row, value in computed:
        if row.paper_value is not None:
            assert value == pytest.approx(row.paper_value, abs=0.0051), row.note

    # The qualitative reading of Table 1 the paper argues from:
    # polyvalue counts stay tiny (a handful per million items) for
    # reasonable failure rates and recovery times.
    typical_row, typical_value = computed[0]
    assert typical_value < 2.0
    assert typical_value / typical_row.params.I < 1e-5
    assert all(value < 100 for _, value in computed)
