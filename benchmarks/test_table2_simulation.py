"""Table 2 — "Results of Simulating the Polyvalue Mechanism".

Re-runs the paper's Monte-Carlo simulation (section 4.2) for each of
the six parameter rows and prints simulated ("actual") against model
("predicted") P, exactly the two result columns of Table 2.

The paper's qualitative findings, asserted below:
* the simulation tracks the prediction in the small-P regime;
* simulated values sit near or below the prediction ("in general
  smaller than predicted");
* the parameter trends (U up -> P up; F down -> P down; D up -> P up;
  Y up -> P down) all hold.
"""

import pytest

from repro.analysis.model import table2_rows
from repro.analysis.montecarlo import simulate_averaged

from conftest import format_row, print_exhibit

WIDTHS = (4, 8, 8, 6, 3, 3, 12, 12, 12, 12)

#: Simulated seconds per run; 40 recovery time constants (1/R = 100 s).
DURATION = 4000.0
RUNS = 3


def run_all_rows():
    measured = []
    for index, row in enumerate(table2_rows()):
        results = simulate_averaged(
            row.params,
            runs=RUNS,
            duration=DURATION,
            seed=1000 + index,
        )
        mean = sum(r.mean_polyvalues for r in results) / len(results)
        measured.append((row, mean))
    return measured


def test_table2_simulation_vs_model(benchmark):
    measured = benchmark.pedantic(run_all_rows, rounds=1, iterations=1)

    lines = [
        format_row(
            (
                "U",
                "F",
                "R",
                "I",
                "Y",
                "D",
                "our sim P",
                "model P",
                "paper sim",
                "paper pred",
            ),
            WIDTHS,
        )
    ]
    for row, mean in measured:
        params = row.params
        lines.append(
            format_row(
                (
                    int(params.U),
                    params.F,
                    params.R,
                    int(params.I),
                    int(params.Y),
                    int(params.D),
                    mean,
                    row.model_value,
                    row.paper_actual,
                    row.paper_predicted,
                ),
                WIDTHS,
            )
        )
    print_exhibit("Table 2: simulated vs predicted polyvalue count", lines)

    by_index = [mean for _, mean in measured]

    # Model reproduces the paper's predicted column exactly.
    for row, _ in measured:
        assert row.model_value == pytest.approx(row.paper_predicted, rel=0.01)

    # Our simulation tracks the prediction for every row (the paper's
    # "results agree well with the predictions of the model").
    for row, mean in measured:
        assert mean == pytest.approx(row.model_value, rel=0.35), row.params

    # Parameter trends across rows (same comparisons Table 2 supports):
    u2, u5, u10, f_low, d5, d5y1 = by_index
    assert u2 < u5 < u10  # P grows with U
    assert f_low < u10  # P shrinks with F
    assert d5 > u10  # P grows with D
    assert d5y1 < d5  # P shrinks with Y
