#!/usr/bin/env python3
"""Electronic funds transfer under failures — the paper's §5 flagship.

Simulates a small EFT network processing a stream of transfers,
deposits and credit authorizations while sites crash and recover.  The
demonstration targets the paper's exact claim:

    "To satisfy customers, such transactions must be performed
    promptly, even if failures in the database system have interfered
    with other transactions.  Such transactions depend very loosely on
    the state of the database in that the important effect ... depends
    only on the fact that the relevant accounts contain enough funds,
    not on exactly how much."

Watch the `approved` outputs: they stay certain (plain True/False) even
while the balances they consult are polyvalues.

Run:  python examples/funds_transfer.py
"""

from repro.api import (
    CrashPlan,
    DistributedSystem,
    ScriptedFailures,
    TxnStatus,
    is_polyvalue,
)
from repro.workloads.banking import (
    BankingWorkload,
    account_items,
    authorize,
    transfer,
)

ACCOUNTS = account_items(9)
INITIAL_BALANCE = 1000


def main():
    system = DistributedSystem.build(
        sites=3,
        items={account: INITIAL_BALANCE for account in ACCOUNTS},
        seed=42,
        base_latency=0.02,
    )
    # Two outages, each long enough to strand in-doubt transactions.
    ScriptedFailures(
        system.sim,
        system,
        [
            CrashPlan("site-0", at=0.55, duration=2.0),
            CrashPlan("site-2", at=4.05, duration=1.5),
        ],
    )

    # A continuous stream of inter-account transfers.
    workload = BankingWorkload(
        system,
        ACCOUNTS,
        seed=42,
        transfer_weight=1.0,
        authorize_weight=0.0,
        max_amount=50,
    )
    for _ in range(60):
        workload.submit_one()
        system.run_for(0.12)

    print(f"After 60 transfers with 2 site outages "
          f"(t={system.sim.now:.1f}s simulated):")
    print(f"  committed={system.metrics.committed}  "
          f"aborted={system.metrics.aborted}  "
          f"polyvalues installed={system.metrics.polyvalues_installed}")

    # ------------------------------------------------------------------
    # Now a failure at the worst possible moment: a transfer's
    # coordinator dies inside the commit window, leaving acct-001 (whose
    # site is healthy) holding a polyvalue.
    system.submit(transfer("acct-000", "acct-001", 75))
    system.run_for(0.07)  # both participants staged; no decision yet
    system.crash_site("site-0")
    system.run_for(1.5)

    uncertain = system.polyvalued_items()
    print(f"  accounts currently uncertain: {uncertain or 'none'}")

    # ------------------------------------------------------------------
    # The important transactions: credit authorizations, served promptly
    # even against uncertain balances — while site-0 is still down.
    print("\nCredit authorizations during the outage:")
    for account in ("acct-001", "acct-002", "acct-004", "acct-005", "acct-007", "acct-008"):
        balance = system.read_item(account)
        marker = "poly" if is_polyvalue(balance) else "exact"
        handle = system.submit(authorize(account, 100))
        deadline = system.sim.now + 3.0
        while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
            system.run_for(0.1)
        approved = handle.outputs.get("approved") if handle.status is TxnStatus.COMMITTED else "(aborted)"
        print(f"  {account} [{marker:5}] authorize $100 -> {approved}")

    # ------------------------------------------------------------------
    # Let every failure recover and every outcome propagate.
    system.recover_site("site-0")
    system.run_for(40.0)
    state = system.database_state()
    assert system.all_certain()
    print("\nAfter all recoveries:")
    print(f"  all balances exact again: {system.all_certain()}")
    print(f"  outcome bookkeeping left: {system.outcome_bookkeeping_size()} "
          "(the paper's quick-deletion property)")

    # Transfers conserve money; authorizations spent some of it.
    total = sum(state.values())
    authorized_spend = 9000 - total
    print(f"  total funds: {total} "
          f"(initial 9000 minus {authorized_spend} of approved credit)")


if __name__ == "__main__":
    main()
