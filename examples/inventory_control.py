#!/usr/bin/env python3
"""Inventory / process control under uncertainty (§5's third application).

A two-warehouse inventory keeps per-site stock levels.  Cross-warehouse
rebalancing is the multi-site atomic update; a failure interrupts one,
leaving both stock levels polyvalued.  The real-time control decision —
"should we reorder?" — still computes *exactly*, because a rebalance
moves stock without changing the total: the lifted sum collapses the
correlated uncertainty.

An interrupted *order* (stock leaving the system) then shows the other
case: the total becomes genuinely uncertain and the reorder trigger
fires conservatively.

Run:  python examples/inventory_control.py
"""

from repro.api import DistributedSystem, TxnStatus, is_polyvalue
from repro.workloads.inventory import (
    order,
    rebalance,
    reorder_check,
    restock,
    stock_item,
    stock_items,
)

WAREHOUSES = ["east", "west"]
PRODUCT = "widget"
REORDER_POINT = 60


def settle(system, handle, limit=3.0):
    deadline = system.sim.now + limit
    while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
        system.run_for(0.1)
    return handle


def check(system):
    handle = settle(
        system,
        system.submit(reorder_check(WAREHOUSES, PRODUCT, REORDER_POINT)),
    )
    return handle.outputs


def show_stocks(system, label):
    east = system.read_item(stock_item("east", PRODUCT))
    west = system.read_item(stock_item("west", PRODUCT))
    print(f"{label}")
    print(f"  east: {east}")
    print(f"  west: {west}")


def main():
    items = {item: 50 for item in stock_items(WAREHOUSES, [PRODUCT, "gear"])}
    system = DistributedSystem.build(sites=3, items=items, seed=23, jitter=0.0)
    # site-2 holds only gear stock; it is the "neutral" coordinator we
    # crash to interrupt widget transactions without taking widget data
    # offline.
    neutral = "site-2"

    show_stocks(system, "Initial stocks (east 50 + west 50 = 100):")

    # ------------------------------------------------------------------
    print("\n--- An interrupted rebalance: correlated uncertainty ---")
    system.submit(rebalance("east", "west", PRODUCT, 20), at=neutral)
    system.run_for(0.035)
    system.crash_site(neutral)
    system.run_for(1.0)
    show_stocks(system, "Both levels are polyvalues now:")

    outputs = check(system)
    print(f"Reorder check (point={REORDER_POINT}): reorder={outputs['reorder']}, "
          f"certainly_low={outputs['certainly_low']}")
    print("  -> EXACT answer despite the uncertainty: a rebalance cannot")
    print("     change the total, and the condition algebra knows it.")

    system.recover_site(neutral)
    system.run_for(6.0)
    show_stocks(system, "\nAfter recovery (rebalance presumed aborted):")

    # ------------------------------------------------------------------
    print("\n--- An interrupted order: genuine uncertainty ---")
    # Bring the total near the reorder point first.
    settle(system, system.submit(order("east", PRODUCT, 20)))
    settle(system, system.submit(order("west", PRODUCT, 15)))
    show_stocks(system, "After shipping 35 units (total 65, point 60):")

    system.submit(order("east", PRODUCT, 10), at=neutral)
    system.run_for(0.035)
    system.crash_site(neutral)
    system.run_for(1.0)
    show_stocks(system, "An order for 10 is in doubt:")

    outputs = check(system)
    print(f"Reorder check: reorder={outputs['reorder']}, "
          f"certainly_low={outputs['certainly_low']}")
    print("  -> total might be 55 (< 60) or 65: the conservative trigger")
    print("     fires early — the safe direction for process control.")

    # ------------------------------------------------------------------
    system.recover_site(neutral)
    system.run_for(6.0)
    outputs = check(system)
    show_stocks(system, "\nAfter recovery (order presumed aborted):")
    print(f"Reorder check: reorder={outputs['reorder']}, "
          f"certainly_low={outputs['certainly_low']}")
    restocked = settle(system, system.submit(restock("east", PRODUCT, 40)))
    assert restocked.status is TxnStatus.COMMITTED
    outputs = check(system)
    print(f"After restocking 40 at east: reorder={outputs['reorder']}")
    assert system.all_certain()


if __name__ == "__main__":
    main()
