#!/usr/bin/env python3
"""Regenerate the paper's section 4 analysis from the command line.

Prints Table 1 (model predictions), Table 2 (Monte-Carlo simulation vs
model), and the stability transient — the complete quantitative content
of the paper — in under a minute.

Run:  python examples/paper_analysis.py [--quick]
"""

import sys

from repro.analysis.model import (
    decay_rate,
    steady_state_polyvalues,
    table1_rows,
    table2_rows,
    transient_polyvalues,
)
from repro.api import simulate


def print_table1():
    print("Table 1: predicted number of polyvalues")
    print(f"{'U':>6} {'F':>8} {'I':>10} {'R':>7} {'Y':>3} {'D':>3} "
          f"{'P (model)':>10} {'P (paper)':>10}")
    for row in table1_rows():
        p = row.params
        paper = f"{row.paper_value:.2f}" if row.paper_value is not None else "-"
        print(f"{p.U:>6g} {p.F:>8g} {p.I:>10g} {p.R:>7g} {p.Y:>3g} {p.D:>3g} "
              f"{row.model_value:>10.2f} {paper:>10}")


def print_table2(duration):
    print("\nTable 2: simulation vs model")
    print(f"{'U':>4} {'F':>7} {'R':>6} {'I':>7} {'Y':>3} {'D':>3} "
          f"{'sim P':>8} {'model P':>8} {'paper sim':>10} {'paper pred':>11}")
    for index, row in enumerate(table2_rows()):
        result = simulate(row.params, duration=duration, seed=100 + index)
        p = row.params
        print(f"{p.U:>4g} {p.F:>7g} {p.R:>6g} {p.I:>7g} {p.Y:>3g} {p.D:>3g} "
              f"{result.mean_polyvalues:>8.2f} {row.model_value:>8.2f} "
              f"{row.paper_actual:>10.2f} {row.paper_predicted:>11.2f}")


def print_transient():
    from repro.analysis.model import TYPICAL

    burst = 500.0
    print("\nStability: decay of a 500-polyvalue burst "
          "(typical parameters, lambda = "
          f"{decay_rate(TYPICAL):.2e}/s):")
    for t in (0, 500, 1000, 2000, 5000, 10000):
        print(f"  P({t:>6}s) = {transient_polyvalues(TYPICAL, burst, t):8.2f}"
              f"   (steady state "
              f"{steady_state_polyvalues(TYPICAL):.2f})")


def main():
    quick = "--quick" in sys.argv
    print_table1()
    print_table2(duration=1000.0 if quick else 4000.0)
    print_transient()


if __name__ == "__main__":
    main()
