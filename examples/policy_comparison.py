#!/usr/bin/env python3
"""The paper's §2 design space, live: polyvalues vs blocking vs guessing.

Runs the identical in-doubt scenario — a partition swallows the remote
participant's *ready*, so the coordinator times out and aborts while
the participant sits in its wait phase not knowing — under each of the
three wait-timeout policies, probing the in-doubt item during the
partition.  One screen, the whole argument of the paper:

* BLOCKING  : correct but unavailable (probes abort);
* RELAXED   : available but incorrect (the participant guesses commit,
  the coordinator aborted: money appears from nowhere);
* POLYVALUE : available *and* correct.

Run:  python examples/policy_comparison.py
"""

from repro.api import (
    Transaction,
    TxnStatus,
    blocking_system,
    polyvalue_system,
    relaxed_system,
)

ITEMS = {"alice": 1000, "bob": 1000, "carol": 1000}


def transfer(source, target, amount):
    def body(ctx):
        value = ctx.read(source)
        ctx.write(source, value - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(body=body, items=(source, target))


def probe(item):
    def body(ctx):
        ctx.write(item, ctx.read(item) + 1)

    return Transaction(body=body, items=(item,))


def run_policy(name, factory):
    system = factory(sites=3, items=dict(ITEMS), seed=77, jitter=0.0)
    # The in-doubt window: bob's site staged; its ready is lost to a
    # partition, so the coordinator times out and ABORTS — but bob's
    # site cannot know which way the decision went.
    outcome = system.submit(transfer("alice", "bob", 100))
    system.run_for(0.035)  # staged everywhere; readies still in flight
    system.network.partition("site-0", "site-1")
    system.run_for(1.0)

    probes_ok = 0
    for _ in range(3):
        handle = system.submit(probe("bob"), at="site-1")
        system.run_for(1.0)
        if handle.status is TxnStatus.COMMITTED:
            probes_ok += 1

    system.network.heal_all()
    system.run_for(8.0)
    assert outcome.status is TxnStatus.ABORTED

    alice = system.read_item("alice")
    bob = system.read_item("bob")
    total = alice + bob + system.read_item("carol")
    expected = 3000 + probes_ok  # each probe adds exactly 1
    print(f"{name:>10}: probes committed {probes_ok}/3 during the outage; "
          f"after recovery alice={alice}, bob={bob}")
    print(f"{'':>10}  money conserved: {total == expected} "
          f"(total {total}, expected {expected})")
    if system.metrics.inconsistent_decisions:
        print(f"{'':>10}  !! {system.metrics.inconsistent_decisions} "
              "unilateral decisions contradicted the coordinator")
    print()


def main():
    print("One in-doubt window, three policies (paper §2.2-§2.4):\n")
    run_policy("blocking", blocking_system)
    run_policy("relaxed", relaxed_system)
    run_policy("polyvalue", polyvalue_system)
    print("Polyvalues: the availability of guessing, "
          "the correctness of blocking.")


if __name__ == "__main__":
    main()
