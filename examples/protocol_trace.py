#!/usr/bin/env python3
"""Watch the update protocol on the wire — then watch a failure hit it.

Attaches a :class:`~repro.txn.tracing.ProtocolTracer` to the system and
prints message-sequence charts for (1) a clean two-site commit and
(2) the same transaction with its coordinator crashed inside the
commit window, followed by the outcome-query exchange that resolves
the polyvalue after recovery.

Run:  python examples/protocol_trace.py
"""

from repro.api import DistributedSystem, ProtocolTracer, Transaction


def transfer(ctx):
    a = ctx.read("a")
    ctx.write("a", a - 5)
    ctx.write("b", ctx.read("b") + 5)


def main():
    system = DistributedSystem.build(
        sites=2, items={"a": 100, "b": 100}, seed=3, jitter=0.0
    )
    tracer = ProtocolTracer(system)

    print("=== 1. A clean cross-site commit ===\n")
    handle = system.submit(Transaction(body=transfer, items=("a", "b")))
    system.run_for(1.0)
    print(tracer.sequence_chart(handle.txn))
    print(f"\noutcome: {handle.status.value} in {handle.latency * 1000:.0f} ms")

    print("\n=== 2. The coordinator dies inside the commit window ===\n")
    tracer.clear()
    handle = system.submit(Transaction(body=transfer, items=("a", "b")))
    system.run_for(0.035)          # site-1 has staged and sent ready
    system.crash_site("site-0")    # decision never arrives
    system.run_for(2.0)            # site-1 times out, installs polyvalue
    print(tracer.sequence_chart(handle.txn))
    print(f"\nb is now: {system.read_item('b')}")

    print("\n=== 3. Recovery: the outcome query resolves the doubt ===\n")
    tracer.clear()
    system.recover_site("site-0")
    system.run_for(5.0)
    print(tracer.sequence_chart(handle.txn))
    print(f"\nb resolved to: {system.read_item('b')} "
          f"(transaction presumed aborted)")


if __name__ == "__main__":
    main()
