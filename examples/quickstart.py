#!/usr/bin/env python3
"""Quickstart: the polyvalue mechanism in five minutes.

Walks the core loop of the paper on a three-site simulated database:

1. a normal atomic cross-site transfer (two-phase commit);
2. a failure that lands inside the commit window, leaving a
   participant in doubt — it installs a *polyvalue* instead of blocking;
3. continued processing against the polyvalued item;
4. failure recovery, outcome propagation, and convergence back to
   exact values.

Run:  python examples/quickstart.py
"""

from repro.api import DistributedSystem, Transaction, is_polyvalue


def transfer(source, target, amount):
    """An atomic transfer: the paper's canonical distributed update."""

    def body(ctx):
        balance = ctx.read(source)
        if balance >= amount:
            ctx.write(source, balance - amount)
            ctx.write(target, ctx.read(target) + amount)
            ctx.output("transferred", True)
        else:
            ctx.output("transferred", False)

    return Transaction(body=body, items=(source, target), label="transfer")


def main():
    system = DistributedSystem.build(
        sites=3,
        items={"alice": 100, "bob": 100, "carol": 100},
        seed=7,
        jitter=0.0,  # exact protocol timeline, for a reproducible demo
    )
    print("Initial state:", system.database_state())

    # ------------------------------------------------------------------
    print("\n--- 1. A normal atomic transfer ---")
    handle = system.submit(transfer("alice", "bob", 30))
    system.run_for(1.0)
    print(f"status={handle.status.value}, outputs={handle.outputs}, "
          f"latency={handle.latency * 1000:.0f} ms")
    print("State:", system.database_state())

    # ------------------------------------------------------------------
    print("\n--- 2. A failure inside the commit window ---")
    handle = system.submit(transfer("alice", "bob", 25))
    system.run_for(0.035)  # participant staged + ready; no decision yet
    system.crash_site("site-0")  # the coordinator dies at the worst moment
    system.run_for(1.0)
    bob = system.read_item("bob")
    print("bob's balance is now a POLYVALUE:", bob)
    print("  possible values:", sorted(bob.possible_values()))
    print("  depends on in-doubt transaction:", sorted(bob.depends_on()))

    # ------------------------------------------------------------------
    print("\n--- 3. Processing continues against the polyvalue ---")
    # bob's site is up and bob's item is NOT locked: a blocking 2PC
    # would have frozen it until site-0 recovered.
    handle = system.submit(transfer("bob", "carol", 50), at="site-1")
    system.run_for(1.0)
    print(f"transfer bob->carol: status={handle.status.value}, "
          f"transferred={handle.outputs['transferred']}")
    print("bob:  ", system.read_item("bob"))
    print("carol:", system.read_item("carol"))

    # ------------------------------------------------------------------
    print("\n--- 4. Recovery resolves everything ---")
    system.recover_site("site-0")
    system.run_for(5.0)
    print("Final state:", system.database_state())
    assert system.all_certain(), "all polyvalues must be resolved"
    total = sum(system.database_state().values())
    print(f"Total funds: {total} (conserved: {total == 300})")
    print(f"Polyvalues installed over the run: "
          f"{system.metrics.polyvalues_installed}, all resolved: "
          f"{system.metrics.polyvalues_resolved}")


if __name__ == "__main__":
    main()
