#!/usr/bin/env python3
"""Replication + polyvalues: read availability through anything.

Section 3 of the paper notes that a replicated item "can be viewed as a
set of individual items, one for each site".  This demo builds a bank
whose accounts are fully replicated across three sites and shows the
two mechanisms composing:

* **replication** keeps reads available when a *replica site* fails;
* **polyvalues** keep writes (and subsequent reads) available when a
  failure hits a write-all update's *commit window* — the surviving
  replicas hold polyvalues that resolve to the same value under every
  outcome.

Run:  python examples/replicated_bank.py
"""

from repro.api import DistributedSystem, TxnStatus, is_polyvalue
from repro.db.replication import (
    ReplicationScheme,
    all_replicas_consistent,
    read_all_replicas,
    replica_item,
    replicated_read,
    replicated_update,
)

SITES = ("site-0", "site-1", "site-2")
ACCOUNTS = ["checking", "savings"]


def settle(system, handle, limit=3.0):
    deadline = system.sim.now + limit
    while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
        system.run_for(0.1)
    return handle


def main():
    scheme = ReplicationScheme.full(ACCOUNTS, SITES)
    system = DistributedSystem(
        catalog=scheme.catalog(),
        initial_values=scheme.initial_values({"checking": 500, "savings": 900}),
        seed=19,
        jitter=0.0,
    )

    print("Each account is replicated at all three sites:")
    for account in ACCOUNTS:
        print(f"  {account}: {scheme.replicas_of(account)}")

    # ------------------------------------------------------------------
    print("\n--- A write-all deposit reaches every replica atomically ---")
    handle = settle(
        system, system.submit(replicated_update(scheme, "checking", lambda v: v + 100))
    )
    print(f"deposit: {handle.status.value}")
    for site in SITES:
        print(f"  checking@{site} = "
              f"{system.read_item(replica_item('checking', site))}")

    # ------------------------------------------------------------------
    print("\n--- Reads survive a replica-site failure ---")
    system.crash_site("site-2")
    handle = settle(
        system,
        system.submit(replicated_read(scheme, "savings", at_site="site-1"),
                      at="site-1"),
    )
    print(f"read savings@site-1 while site-2 is down: "
          f"{handle.outputs['value']}")
    system.recover_site("site-2")
    system.run_for(2.0)

    # ------------------------------------------------------------------
    print("\n--- A failure inside a write-all commit window ---")
    system.submit(replicated_update(scheme, "checking", lambda v: v - 250))
    system.run_for(0.035)  # replicas staged; no decision yet
    system.crash_site("site-0")  # the coordinator dies
    system.run_for(1.5)
    print("surviving replicas hold polyvalues:")
    for site in ("site-1", "site-2"):
        print(f"  checking@{site} = "
              f"{system.read_item(replica_item('checking', site))}")
    sub_scheme = ReplicationScheme.explicit({"checking": ["site-1", "site-2"]})
    print("conditionally consistent (same value under every outcome):",
          all_replicas_consistent(system.database_state(), sub_scheme))

    # Reads still answer — with honest uncertainty.
    handle = settle(
        system,
        system.submit(replicated_read(scheme, "checking", at_site="site-1"),
                      at="site-1"),
    )
    value = handle.outputs["value"]
    print(f"read during the window: {value} "
          f"({'polyvalue' if is_polyvalue(value) else 'plain'})")

    # ------------------------------------------------------------------
    print("\n--- Recovery converges all replicas exactly ---")
    system.recover_site("site-0")
    system.run_for(6.0)
    handle = settle(system, system.submit(read_all_replicas(scheme, "checking")))
    print(f"all replicas agree: {handle.outputs['agree']}")
    for replica, value in handle.outputs["values"].items():
        print(f"  {replica} = {value}")
    assert all_replicas_consistent(system.database_state(), scheme)
    assert system.all_certain()


if __name__ == "__main__":
    main()
