#!/usr/bin/env python3
"""Reservations under uncertainty — the paper's ticket-agent scenario (§5).

    "If the number of reservations granted is a polyvalue, then a new
    reservation can be granted so long as the largest value in that
    polyvalue is less than the number of available rooms or seats."

The demo books a flight toward capacity, interrupts one booking with a
failure (leaving the sold count uncertain), and shows that:

* reservations keep being granted with *certain* answers while there is
  definitely room,
* the grant decision only becomes uncertain right at the capacity
  boundary,
* a seats-remaining inquiry can present its uncertain answer
  ("a ticket agent would not be bothered"),
* recovery converges the count to the exact value and the flight is
  never oversold.

Run:  python examples/reservations.py
"""

from repro.api import DistributedSystem, TxnStatus, is_polyvalue
from repro.workloads.reservations import (
    never_oversold,
    reserve,
    seats_remaining,
)

CAPACITY = 20
FLIGHT = "flight-SF-BOS"


def settle(system, handle, limit=3.0):
    deadline = system.sim.now + limit
    while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
        system.run_for(0.1)
    return handle


def book(system, at=None):
    handle = settle(system, system.submit(reserve(FLIGHT, CAPACITY), at=at))
    return handle.outputs.get("granted") if handle.status is TxnStatus.COMMITTED else "(aborted)"


def main():
    system = DistributedSystem.build(
        sites=3,
        items={FLIGHT: 0, "flight-other-1": 0, "flight-other-2": 0},
        seed=11,
        jitter=0.0,
    )
    home = system.catalog.site_of(FLIGHT)
    remote = next(s for s in sorted(system.sites) if s != home)

    print(f"Flight {FLIGHT}: capacity {CAPACITY}, home site {home}")

    # Fill most of the flight normally.
    for _ in range(15):
        book(system)
    print(f"\nAfter 15 bookings: sold = {system.read_item(FLIGHT)}")

    # A booking interrupted at the commit instant: its remote
    # coordinator crashes, and the sold count becomes a polyvalue.
    system.submit(reserve(FLIGHT, CAPACITY), at=remote)
    system.run_for(0.035)
    system.crash_site(remote)
    system.run_for(1.0)
    sold = system.read_item(FLIGHT)
    print(f"\nBooking #16 interrupted by a failure at {remote}!")
    print(f"sold is now a polyvalue: {sold}")

    # The paper's rule in action: grants continue, with certain answers,
    # while even the LARGEST possible count leaves room.
    print("\nBooking while the count is uncertain:")
    grants = 0
    while True:
        granted = book(system)
        sold = system.read_item(FLIGHT)
        certainty = "uncertain" if is_polyvalue(granted) else "certain"
        print(f"  grant #{17 + grants}: {granted!s:<40} [{certainty}]")
        assert never_oversold(sold, CAPACITY)
        if is_polyvalue(granted) or granted is False:
            break
        grants += 1
        if grants > CAPACITY:
            break

    # The ticket agent asks how many seats remain.
    handle = settle(system, system.submit(seats_remaining(FLIGHT, CAPACITY)))
    print(f"\nSeats remaining, as presented to the agent (may be a "
          f"polyvalue): {handle.outputs['remaining']}")

    # Recovery: the interrupted booking resolves (presumed abort) and
    # the count becomes exact again.
    system.recover_site(remote)
    system.run_for(6.0)
    final = system.read_item(FLIGHT)
    print(f"\nAfter recovery: sold = {final} (exact: {not is_polyvalue(final)})")
    assert not is_polyvalue(final)
    assert final <= CAPACITY
    print(f"Never oversold: True (capacity {CAPACITY})")


if __name__ == "__main__":
    main()
