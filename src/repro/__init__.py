"""repro — a reproduction of Montgomery's *Polyvalues* (SOSP 1979).

"Polyvalues: A Tool for Implementing Atomic Updates to Distributed
Data" proposes that when a failure catches a two-phase-commit
transaction in its in-doubt window, a participant should — instead of
blocking — install a *polyvalue* for each item the transaction wrote: a
set of ``<value, condition>`` pairs recording every value the item
could have, conditioned on the unknown outcome.  Later transactions
operate on polyvalues as *polytransactions*, and often produce exact
results anyway; when the failure recovers, the uncertainty is
substituted away.

Package map
-----------
* :mod:`repro.core` — the mechanism itself: conditions, polyvalues,
  polytransactions, outcome tables.
* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.net` — simulated network with crash/partition/loss faults.
* :mod:`repro.db` — per-site storage, locking, data placement.
* :mod:`repro.txn` — the 2PC update protocol with polyvalue, blocking
  and relaxed wait-timeout policies; the
  :class:`~repro.txn.system.DistributedSystem` facade.
* :mod:`repro.analysis` — the section 4 analytic model and Monte-Carlo
  simulation (Tables 1 and 2).
* :mod:`repro.workloads` — random-update streams and the section 5
  applications (funds transfer, reservations, inventory).
* :mod:`repro.metrics` — counters and time-series used by experiments.
* :mod:`repro.api` — **the stable public facade**: one flat module
  re-exporting the entire supported surface.  Prefer it (or this top
  level) over deep imports; deep-importing names the facade covers from
  ``repro.core``/``repro.txn`` emits :class:`DeprecationWarning`.
* :mod:`repro.bench` — the hot-path performance suite behind
  ``python -m repro bench`` and ``BENCH_perf.json``.

Quick start
-----------
>>> from repro import DistributedSystem, Transaction
>>> system = DistributedSystem.build(sites=3, items={"a": 10, "b": 0}, seed=1)
>>> def move(ctx):
...     a = ctx.read("a")
...     ctx.write("a", a - 4)
...     ctx.write("b", ctx.read("b") + 4)
>>> handle = system.submit(Transaction(body=move, items=("a", "b")))
>>> system.run_for(1.0)
>>> handle.status.value
'committed'
"""

from repro.core.conditions import Condition
from repro.core.polyvalue import (
    Polyvalue,
    certain,
    combine,
    definitely,
    is_polyvalue,
    possible_values,
    possibly,
)
from repro.txn.baselines import blocking_system, polyvalue_system, relaxed_system
from repro.txn.config import CommitPolicy, ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TransactionHandle, TxnStatus

__version__ = "1.0.0"

__all__ = [
    "CommitPolicy",
    "Condition",
    "DistributedSystem",
    "Polyvalue",
    "ProtocolConfig",
    "Transaction",
    "TransactionHandle",
    "TxnStatus",
    "blocking_system",
    "certain",
    "combine",
    "definitely",
    "is_polyvalue",
    "polyvalue_system",
    "possible_values",
    "possibly",
    "relaxed_system",
    "__version__",
]
