"""Section 4 of the paper: the analytic model and the Monte-Carlo simulation."""

from repro.analysis.model import (
    TYPICAL,
    ModelParams,
    Table1Row,
    Table2Row,
    UnstableRegimeError,
    decay_rate,
    is_stable,
    stability_margin,
    steady_state_polyvalues,
    table1_rows,
    table2_rows,
    time_to_settle,
    transient_polyvalues,
)
from repro.analysis.cost import (
    PolyvalueSize,
    ProcessingReport,
    StorageReport,
    measure_processing,
    measure_storage,
    predicted_storage_fraction,
)
from repro.analysis.montecarlo import (
    PolyvalueSimulation,
    SimulationResult,
    simulate,
    simulate_averaged,
)
from repro.analysis.sweep import SweepPoint, format_sweep_table, sweep

__all__ = [
    "ModelParams",
    "PolyvalueSimulation",
    "PolyvalueSize",
    "ProcessingReport",
    "SimulationResult",
    "StorageReport",
    "SweepPoint",
    "TYPICAL",
    "Table1Row",
    "Table2Row",
    "UnstableRegimeError",
    "decay_rate",
    "format_sweep_table",
    "is_stable",
    "measure_processing",
    "measure_storage",
    "predicted_storage_fraction",
    "simulate",
    "simulate_averaged",
    "stability_margin",
    "steady_state_polyvalues",
    "sweep",
    "table1_rows",
    "table2_rows",
    "time_to_settle",
    "transient_polyvalues",
]
