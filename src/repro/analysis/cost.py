"""Storage and processing cost of the polyvalue mechanism (section 4).

The paper's conclusion rests on a cost argument: "Analysis and
simulation have shown that the extra storage and processing required to
support this mechanism are small, given reasonable failure rates and
repair times."  This module quantifies both halves of that sentence for
a running :class:`~repro.txn.system.DistributedSystem`:

* **storage** — :func:`measure_storage` walks every site's store and
  reports, for each polyvalued item, the number of ``<value,
  condition>`` pairs, the number of condition literals, and the
  serialized size of the polyvalue relative to a plain value; plus the
  size of the section 3.3 bookkeeping (outcome-table entries).
* **processing** — :func:`measure_processing` reads the metrics: what
  fraction of transactions ran as polytransactions, and how many
  alternative executions each one cost (the §3.2 fan-out).
* **prediction** — :func:`predicted_storage_fraction` combines the
  analytic steady state ``P`` with a per-polyvalue size factor to give
  the expected steady-state storage overhead as a fraction of the
  database — the number the paper's conclusion implicitly computes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.model import ModelParams, steady_state_polyvalues
from repro.core.polyvalue import Polyvalue, is_polyvalue
from repro.core.serialize import encode_value


@dataclass(frozen=True)
class PolyvalueSize:
    """The footprint of one polyvalued item."""

    item: str
    pairs: int
    literals: int
    depends_on: int
    encoded_bytes: int
    plain_bytes: int

    @property
    def expansion_factor(self) -> float:
        """Serialized polyvalue size over a plain value's size."""
        return self.encoded_bytes / max(1, self.plain_bytes)


@dataclass
class StorageReport:
    """Aggregate storage cost of the uncertainty currently in a system."""

    total_items: int
    polyvalued_items: int
    sizes: List[PolyvalueSize] = field(default_factory=list)
    outcome_table_entries: int = 0

    @property
    def polyvalue_fraction(self) -> float:
        """Fraction of items currently holding polyvalues (P/I)."""
        return self.polyvalued_items / self.total_items if self.total_items else 0.0

    @property
    def mean_pairs(self) -> Optional[float]:
        """Average pairs per polyvalue (2 when no propagation compounds)."""
        if not self.sizes:
            return None
        return sum(size.pairs for size in self.sizes) / len(self.sizes)

    @property
    def max_pairs(self) -> int:
        """The largest polyvalue in the database."""
        return max((size.pairs for size in self.sizes), default=0)

    @property
    def extra_bytes(self) -> int:
        """Serialized bytes beyond what plain values would need."""
        return sum(
            size.encoded_bytes - size.plain_bytes for size in self.sizes
        )


def _measure_one(item: str, value: Polyvalue) -> PolyvalueSize:
    literals = sum(
        len(product)
        for _, condition in value.pairs
        for product in condition.products
    )
    encoded = len(json.dumps(encode_value(value)))
    # The plain-value baseline: the largest single possibility (what the
    # item would store once resolved).
    plain = max(
        len(json.dumps(encode_value(possibility)))
        for possibility in value.possible_values()
    )
    return PolyvalueSize(
        item=item,
        pairs=len(value),
        literals=literals,
        depends_on=len(value.depends_on()),
        encoded_bytes=encoded,
        plain_bytes=plain,
    )


def measure_storage(system) -> StorageReport:
    """Walk every site of *system* and report the storage footprint."""
    report = StorageReport(total_items=0, polyvalued_items=0)
    for site in system.sites.values():
        store = site.runtime.store
        report.total_items += len(store)
        for item in store.polyvalued_items():
            value = store.read(item)
            if is_polyvalue(value):
                report.polyvalued_items += 1
                report.sizes.append(_measure_one(item, value))
        report.outcome_table_entries += len(site.runtime.outcomes)
    return report


@dataclass(frozen=True)
class ProcessingReport:
    """Aggregate processing cost from a system's metrics."""

    transactions_decided: int
    polytransactions: int
    total_fanout: int
    max_fanout: int

    @property
    def polytransaction_fraction(self) -> float:
        """Fraction of transactions that ran against uncertain inputs."""
        if not self.transactions_decided:
            return 0.0
        return self.polytransactions / self.transactions_decided

    @property
    def mean_fanout(self) -> Optional[float]:
        """Mean alternatives per polytransaction (1 = no extra work)."""
        if not self.polytransactions:
            return None
        return self.total_fanout / self.polytransactions

    @property
    def extra_executions(self) -> int:
        """Alternative executions beyond the one every txn needs anyway."""
        return max(0, self.total_fanout - self.polytransactions)


def measure_processing(system) -> ProcessingReport:
    """Summarise the polytransaction fan-out cost of a run."""
    metrics = system.metrics
    fanouts = metrics.polytransaction_fanouts
    return ProcessingReport(
        transactions_decided=metrics.committed + metrics.aborted,
        polytransactions=metrics.polytransactions,
        total_fanout=sum(fanouts),
        max_fanout=max(fanouts, default=0),
    )


def predicted_storage_fraction(
    params: ModelParams, *, pairs_per_polyvalue: float = 2.0
) -> float:
    """Expected steady-state storage overhead as a fraction of the DB.

    Each polyvalued item stores ``pairs_per_polyvalue`` values instead
    of one, so the extra storage is ``P * (pairs - 1)`` item-values out
    of ``I``.  For the paper's typical database (Table 1 row 1) this is
    about 10^-6 — the quantitative content of "the extra storage ...
    [is] small".
    """
    steady = steady_state_polyvalues(params)
    return steady * (pairs_per_polyvalue - 1.0) / params.items
