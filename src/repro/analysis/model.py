"""The section 4.1 analytic model of polyvalue creation and deletion.

The paper models the expected number of polyvalued items ``P(t)`` in a
database with parameters

* ``I`` — number of items,
* ``U`` — updates per second,
* ``F`` — probability an update fails (is interrupted in its window),
* ``R`` — proportion of failures recovered per second,
* ``D`` — mean number of items a new value depends on,
* ``Y`` — probability a new value does **not** depend on the item's
  previous value,

by the first-order ODE (valid while ``P(t)/I`` is small)::

    P'(t) = U F  +  U D P(t)/I  -  U Y P(t)/I  -  R P(t)

whose steady state is the paper's headline formula::

    P_inf = U F I / (I R + U Y - U D)

Note on the printed transient: the paper prints the exponent as
``exp(-((IR+UY-UD)/(UFI)) t)``, which is dimensionally inconsistent with
its own ODE (the numerator of a rate cannot carry F).  Solving the
printed ODE gives decay rate ``lambda = (I R + U Y - U D)/I`` and the
same steady state; we implement the correct solution and record the
discrepancy in EXPERIMENTS.md.  Every steady-state number printed in
Tables 1 and 2 matches ``P_inf`` above, confirming the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.errors import ReproError


class UnstableRegimeError(ReproError):
    """The parameters put the model outside its stable regime.

    When ``I R + U Y - U D <= 0`` polyvalue creation by propagation
    outpaces recovery and the first-order model predicts unbounded
    growth — the paper notes one "would not wish to operate a database
    with such values".
    """


@dataclass(frozen=True)
class ModelParams:
    """The six parameters of the section 4 model (names as in the paper)."""

    updates_per_second: float  # U
    failure_probability: float  # F
    items: float  # I
    recovery_rate: float  # R
    dependency_mean: float  # D
    update_independence: float  # Y

    def __post_init__(self) -> None:
        if self.items <= 0:
            raise ReproError(f"I must be positive, got {self.items}")
        if self.updates_per_second < 0:
            raise ReproError(f"U must be >= 0, got {self.updates_per_second}")
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ReproError(f"F must be in [0,1], got {self.failure_probability}")
        if self.recovery_rate <= 0:
            raise ReproError(f"R must be positive, got {self.recovery_rate}")
        if self.dependency_mean < 0:
            raise ReproError(f"D must be >= 0, got {self.dependency_mean}")
        if not 0.0 <= self.update_independence <= 1.0:
            raise ReproError(f"Y must be in [0,1], got {self.update_independence}")

    # Single-letter accessors matching the paper's notation.
    @property
    def U(self) -> float:  # noqa: N802 - paper notation
        return self.updates_per_second

    @property
    def F(self) -> float:  # noqa: N802
        return self.failure_probability

    @property
    def I(self) -> float:  # noqa: N802, E743
        return self.items

    @property
    def R(self) -> float:  # noqa: N802
        return self.recovery_rate

    @property
    def D(self) -> float:  # noqa: N802
        return self.dependency_mean

    @property
    def Y(self) -> float:  # noqa: N802
        return self.update_independence

    def vary(self, **changes) -> "ModelParams":
        """A copy with some parameters changed (Table 1 style)."""
        return replace(self, **changes)


#: The paper's "typical database" (first row of Table 1).
TYPICAL = ModelParams(
    updates_per_second=10,
    failure_probability=0.0001,
    items=1_000_000,
    recovery_rate=0.001,
    dependency_mean=1,
    update_independence=0,
)


def stability_margin(params: ModelParams) -> float:
    """The denominator ``I R + U Y - U D``; positive in the stable regime."""
    return (
        params.items * params.recovery_rate
        + params.updates_per_second * params.update_independence
        - params.updates_per_second * params.dependency_mean
    )


def is_stable(params: ModelParams) -> bool:
    """True iff the model has a finite positive steady state."""
    return stability_margin(params) > 0


def steady_state_polyvalues(params: ModelParams) -> float:
    """The paper's ``P = U F I / (I R + U Y - U D)``."""
    margin = stability_margin(params)
    if margin <= 0:
        raise UnstableRegimeError(
            f"I*R + U*Y - U*D = {margin:.6g} <= 0: polyvalue propagation "
            "outpaces recovery; the model predicts unbounded growth"
        )
    return (
        params.updates_per_second
        * params.failure_probability
        * params.items
        / margin
    )


def decay_rate(params: ModelParams) -> float:
    """The transient decay rate ``lambda = (I R + U Y - U D) / I``.

    (The correct exponent for the paper's ODE; see the module docstring
    for the discrepancy with the printed formula.)
    """
    margin = stability_margin(params)
    if margin <= 0:
        raise UnstableRegimeError(
            f"decay rate non-positive ({margin / params.items:.6g}); "
            "unstable regime"
        )
    return margin / params.items


def transient_polyvalues(
    params: ModelParams, initial: float, time: float
) -> float:
    """``P(t)`` from ``P(0) = initial``: exponential approach to steady state.

    This is the stability property the paper highlights: "A serious
    failure causing the introduction of many polyvalues does not cause
    the number of polyvalues to grow without limit" — any excess decays
    at rate :func:`decay_rate`.
    """
    if time < 0:
        raise ReproError(f"time must be >= 0, got {time}")
    steady = steady_state_polyvalues(params)
    rate = decay_rate(params)
    return steady + (initial - steady) * math.exp(-rate * time)


def time_to_settle(
    params: ModelParams, initial: float, tolerance: float = 0.01
) -> float:
    """How long until ``P(t)`` is within *tolerance* (fraction of the
    initial excess) of the steady state."""
    if not 0 < tolerance < 1:
        raise ReproError(f"tolerance must be in (0,1), got {tolerance}")
    steady = steady_state_polyvalues(params)
    if initial == steady:
        return 0.0
    return math.log(1.0 / tolerance) / decay_rate(params)


# ----------------------------------------------------------------------
# The paper's tables
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: parameters plus the paper's printed P.

    ``paper_value`` is None for rows whose printed value is not legible
    in the archival scan; the model value is still reported.
    """

    params: ModelParams
    paper_value: Optional[float]
    note: str = ""

    @property
    def model_value(self) -> float:
        return steady_state_polyvalues(self.params)


def table1_rows() -> List[Table1Row]:
    """The Table 1 parameter grid.

    Row 1 is the paper's "typical database"; each later row varies one
    or two parameters.  Printed P values are attached where the archival
    scan is unambiguous (eight of the eleven rows); the remaining rows
    are reconstructed one-parameter variations and marked accordingly.
    """
    typical = TYPICAL
    return [
        Table1Row(typical, 1.01, "typical database"),
        Table1Row(typical.vary(updates_per_second=100), 11.11, "U x10"),
        Table1Row(typical.vary(items=100_000), 1.11, "I /10"),
        Table1Row(
            typical.vary(items=100_000, dependency_mean=5), 2.00, "I /10, D=5"
        ),
        Table1Row(
            typical.vary(items=100_000, update_independence=1),
            1.00,
            "I /10, Y=1",
        ),
        Table1Row(typical.vary(items=20_000), 2.00, "I /50"),
        Table1Row(typical.vary(failure_probability=0.001), 10.10, "F x10"),
        Table1Row(typical.vary(failure_probability=0.005), 50.50, "F x50"),
        Table1Row(
            typical.vary(recovery_rate=0.0001),
            None,
            "R /10 (scan illegible; model 11.11)",
        ),
        Table1Row(
            typical.vary(dependency_mean=10),
            None,
            "D=10 (reconstructed variation)",
        ),
        Table1Row(
            typical.vary(update_independence=1),
            None,
            "Y=1 (reconstructed variation)",
        ),
    ]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: parameters, the paper's prediction and its
    simulation measurement."""

    params: ModelParams
    paper_predicted: float
    paper_actual: float

    @property
    def model_value(self) -> float:
        return steady_state_polyvalues(self.params)


def table2_rows() -> List[Table2Row]:
    """The six parameter rows of Table 2 (all legible in the scan)."""

    def params(u, f, r, i, y, d):
        return ModelParams(
            updates_per_second=u,
            failure_probability=f,
            items=i,
            recovery_rate=r,
            dependency_mean=d,
            update_independence=y,
        )

    return [
        Table2Row(params(2, 0.01, 0.01, 10_000, 0, 1), 2.04, 2.00),
        Table2Row(params(5, 0.01, 0.01, 10_000, 0, 1), 5.26, 2.71),
        Table2Row(params(10, 0.01, 0.01, 10_000, 0, 1), 11.11, 9.5),
        Table2Row(params(10, 0.001, 0.01, 10_000, 0, 1), 1.11, 0.74),
        Table2Row(params(10, 0.01, 0.01, 10_000, 0, 5), 20.0, 19.8),
        Table2Row(params(10, 0.01, 0.01, 10_000, 1, 5), 16.7, 15.8),
    ]
