"""The section 4.2 Monte-Carlo simulation of the polyvalue mechanism.

This is the paper's own abstract simulation, re-derived from its prose:

    "The simulation maintained a description of the items of the
    database having polyvalues, and the transactions on which those
    items depended.  Transactions were introduced at a rate U.  Each
    transaction updated a single item chosen at random from the
    database.  This update depended on a set of d items, also selected
    at random, where d was chosen from an exponential distribution with
    mean D.  The previous value of the updated item was included in its
    new value with probability (1-Y). ...  Transactions were chosen to
    fail with probability F.  For a failed transaction, a polyvalue was
    created for the item that it updated and a recovery time was chosen
    from an exponential distribution with a mean value of 1/R. ...
    each item with a polyvalue is tagged with the identity of all
    transactions on which the polyvalue depends.  When a failure is
    recovered, the tag for the recovered transaction is removed from
    all polyvalues, and any polyvalue with no remaining tags is
    converted to a simple value."

Unlike the full-system simulator (:mod:`repro.txn`), this model skips
the network and the commit protocol entirely — items are integers, and
polyvalues are tag *sets* rather than value/condition pairs — so it runs
at the paper's scale (10^4..10^6 items, thousands of simulated seconds)
in well under a second per configuration.  The full-system simulator
demonstrates the mechanism; this one reproduces Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.model import ModelParams, steady_state_polyvalues
from repro.core.errors import SimulationError
from repro.metrics.series import TimeSeries
from repro.obs.events import EventBus
from repro.parallel.pool import run_trials
from repro.parallel.seeds import trial_seeds
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one Monte-Carlo run."""

    params: ModelParams
    seed: int
    duration: float
    #: Time-weighted average polyvalue count over the measurement
    #: window (the paper's "average number of polyvalues in the
    #: database during such a stable period").
    mean_polyvalues: float
    #: Polyvalue count at the end of the run.
    final_polyvalues: int
    #: Full sampled trajectory of the polyvalue count.
    series: TimeSeries
    transactions: int
    failures: int
    recoveries: int
    #: Transactions that read or overwrote at least one polyvalued item.
    polytransactions: int

    @property
    def model_prediction(self) -> float:
        """The analytic steady state for the same parameters."""
        return steady_state_polyvalues(self.params)


class PolyvalueSimulation:
    """The abstract tag-set simulation of section 4.2.

    State is two indexes kept exactly inverse to each other:

    * ``_tags[item]`` — the in-doubt transactions item's polyvalue
      depends on (items absent from the map are simple);
    * ``_items_of[txn]`` — the items currently tagged with txn.

    Hot-spot selection (``hot_fraction``/``hot_weight``) implements the
    paper's remark that "in a real system, the selection of items to
    participate in transactions is not likely to be uniform ...  This
    has the effect of reducing the effective size of the database": a
    ``hot_fraction`` of the items receives ``hot_weight`` of all
    accesses.  :func:`effective_items` gives the equivalent uniform
    database size for that skew, and the model evaluated at the
    effective size predicts the skewed simulation.
    """

    def __init__(
        self,
        params: ModelParams,
        *,
        seed: int = 0,
        hot_fraction: float = 0.0,
        hot_weight: float = 0.0,
    ) -> None:
        if params.items > 50_000_000:
            raise SimulationError(
                f"I={params.items:g} items is beyond this simulation's "
                "practical range"
            )
        if not 0.0 <= hot_fraction < 1.0 or not 0.0 <= hot_weight < 1.0:
            raise SimulationError("hot_fraction/hot_weight must be in [0,1)")
        if (hot_fraction == 0.0) != (hot_weight == 0.0):
            raise SimulationError(
                "hot_fraction and hot_weight must be set together"
            )
        self.hot_fraction = hot_fraction
        self.hot_weight = hot_weight
        self._hot_count = max(1, int(params.items * hot_fraction)) if hot_fraction else 0
        self.params = params
        self.seed = seed
        self._rng = Rng(seed)
        self._sim = Simulator()
        self._tags: Dict[int, Set[str]] = {}
        self._items_of: Dict[str, Set[int]] = {}
        self._txn_counter = 0
        self.transactions = 0
        self.failures = 0
        self.recoveries = 0
        self.polytransactions = 0
        self.series = TimeSeries()
        self.series.record(0.0, 0)

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._sim.now

    def polyvalue_count(self) -> int:
        """The number of items currently holding polyvalues."""
        return len(self._tags)

    def effective_items(self) -> float:
        """The equivalent uniform database size under the access skew.

        An access lands on hot item ``i`` with probability
        ``w/H + (1-w)/I`` and on a cold item with ``(1-w)/I`` (a
        non-hot draw is uniform over *all* items).  The collision
        probability of two independent accesses is ``sum p_i^2``; a
        uniform database with ``I_eff = 1 / sum p_i^2`` items has the
        same collision behaviour, which is what drives polyvalue
        propagation and overwriting.  With no skew this is exactly I.
        """
        item_count = self.params.items
        if not self._hot_count:
            return item_count
        hot = self._hot_count
        weight = self.hot_weight
        p_hot = weight / hot + (1 - weight) / item_count
        p_cold = (1 - weight) / item_count
        collision = hot * p_hot**2 + (item_count - hot) * p_cold**2
        return 1.0 / collision

    def pending_failures(self) -> int:
        """The number of transactions still awaiting recovery."""
        return len(self._items_of)

    # ------------------------------------------------------------------
    # One transaction (the paper's workload step)
    # ------------------------------------------------------------------

    def _next_arrival(self) -> None:
        delay = self._rng.exponential(1.0 / self.params.updates_per_second)
        self._sim.schedule(delay, self._transaction)

    def _pick_item(self) -> int:
        item_count = int(self.params.items)
        if self._hot_count and self._rng.bernoulli(self.hot_weight):
            return self._rng.randint(0, self._hot_count - 1)
        return self._rng.randint(0, item_count - 1)

    def _transaction(self) -> None:
        params = self.params
        rng = self._rng
        self.transactions += 1
        target = self._pick_item()
        # d ~ Exponential(mean D), realised as a count of distinct
        # randomly selected dependency items.
        d = int(round(rng.exponential(params.dependency_mean))) if params.dependency_mean > 0 else 0
        dependencies = {self._pick_item() for _ in range(d)}
        include_previous = not rng.bernoulli(params.update_independence)
        # Tags the new value inherits from its inputs (polytransaction
        # propagation, section 3.2).
        inherited: Set[str] = set()
        for dependency in dependencies:
            inherited |= self._tags.get(dependency, set())
        if include_previous:
            inherited |= self._tags.get(target, set())
        failed = rng.bernoulli(params.failure_probability)
        was_poly_involved = bool(inherited) or target in self._tags
        if was_poly_involved:
            self.polytransactions += 1
        if failed:
            self.failures += 1
            txn = f"T{self._txn_counter}"
            self._txn_counter += 1
            # The in-doubt polyvalue {<new, T>, <old, ~T>}: the old
            # value (with any uncertainty it already carried) survives
            # under ~T, so existing tags persist alongside T and the
            # inherited ones.
            new_tags = {txn} | inherited | self._tags.get(target, set())
            self._set_tags(target, new_tags)
            recovery = rng.exponential(1.0 / params.recovery_rate)
            self._sim.schedule(recovery, lambda t=txn: self._recover(t))
        else:
            # Completed update: the item takes the new value.  If the
            # inputs carried uncertainty it propagates; otherwise the
            # write *removes* any polyvalue the item had.
            self._set_tags(target, set(inherited))
        self._record_sample()
        self._next_arrival()

    def _set_tags(self, item: int, tags: Set[str]) -> None:
        old_tags = self._tags.get(item, set())
        for gone in old_tags - tags:
            holders = self._items_of.get(gone)
            if holders is not None:
                holders.discard(item)
                if not holders:
                    del self._items_of[gone]
        for added in tags - old_tags:
            self._items_of.setdefault(added, set()).add(item)
        if tags:
            self._tags[item] = set(tags)
        else:
            self._tags.pop(item, None)

    def _recover(self, txn: str) -> None:
        """Failure recovery: remove txn's tag everywhere (section 3.3)."""
        self.recoveries += 1
        for item in self._items_of.pop(txn, set()):
            tags = self._tags.get(item)
            if tags is None:
                continue
            tags.discard(txn)
            if not tags:
                del self._tags[item]
        self._record_sample()

    def _record_sample(self) -> None:
        self.series.record(self._sim.now, self.polyvalue_count())

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(
        self,
        duration: float,
        *,
        warmup_fraction: float = 0.5,
    ) -> SimulationResult:
        """Run for *duration* simulated seconds and summarise.

        The mean polyvalue count is taken over the post-warmup window
        (default: the second half), which the paper calls the "stable
        period".  The warmup must comfortably exceed the recovery time
        constant ``1/R`` for the average to be meaningful; a duration
        below ``4/R`` raises.
        """
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError(
                f"warmup_fraction must be in [0,1), got {warmup_fraction}"
            )
        time_constant = 1.0 / self.params.recovery_rate
        if duration < 4 * time_constant:
            raise SimulationError(
                f"duration {duration:g}s is too short to stabilise; need "
                f">= {4 * time_constant:g}s (4/R) for a stable period"
            )
        self._next_arrival()
        self._sim.run_until(duration)
        self._record_sample()
        window_start = duration * warmup_fraction
        mean = self.series.time_weighted_mean(window_start, duration)
        return SimulationResult(
            params=self.params,
            seed=self.seed,
            duration=duration,
            mean_polyvalues=mean,
            final_polyvalues=self.polyvalue_count(),
            series=self.series,
            transactions=self.transactions,
            failures=self.failures,
            recoveries=self.recoveries,
            polytransactions=self.polytransactions,
        )


def simulate(
    params: ModelParams,
    *,
    duration: Optional[float] = None,
    seed: int = 0,
    warmup_fraction: float = 0.5,
) -> SimulationResult:
    """One-call Monte-Carlo run.

    *duration* defaults to ``10/R`` — long enough for several recovery
    time constants of warmup plus a stable measurement window.
    """
    if duration is None:
        duration = 10.0 / params.recovery_rate
    simulation = PolyvalueSimulation(params, seed=seed)
    return simulation.run(duration, warmup_fraction=warmup_fraction)


def _simulation_trial(
    task: Tuple[ModelParams, Optional[float], int, float],
) -> SimulationResult:
    """The engine worker: one seeded Monte-Carlo run."""
    params, duration, seed, warmup_fraction = task
    return simulate(
        params, duration=duration, seed=seed, warmup_fraction=warmup_fraction
    )


def simulate_many(
    params_list: Sequence[ModelParams],
    *,
    duration: Optional[float] = None,
    seed: int = 0,
    seeds: Optional[Iterable[int]] = None,
    warmup_fraction: float = 0.5,
    jobs: Optional[int] = 1,
    bus: Optional[EventBus] = None,
) -> List[SimulationResult]:
    """One seeded run per entry of *params_list*, through the engine.

    Trial seeds come from the shared campaign derivation
    (:func:`repro.parallel.seeds.trial_seed` over ``(seed, index)``);
    pass *seeds* explicitly to pin them instead.  *jobs* selects the
    worker count (``1`` = the serial in-process path, ``None`` = every
    core); per-trial results are bit-identical for every value.  Any
    trial failure raises :class:`SimulationError` — a Monte-Carlo batch
    with holes in it would silently bias the averages.
    """
    params_list = list(params_list)
    if seeds is None:
        run_seeds = trial_seeds(seed, len(params_list))
    else:
        run_seeds = list(seeds)
        if len(run_seeds) != len(params_list):
            raise SimulationError(
                f"got {len(run_seeds)} seeds for {len(params_list)} "
                "parameter sets"
            )
    tasks = [
        (params, duration, run_seed, warmup_fraction)
        for params, run_seed in zip(params_list, run_seeds)
    ]
    outcome = run_trials(
        _simulation_trial, tasks, jobs=jobs, bus=bus, label="montecarlo"
    )
    outcome.require_ok("montecarlo")
    return list(outcome.results)


def simulate_averaged(
    params: ModelParams,
    *,
    runs: int = 3,
    duration: Optional[float] = None,
    seed: int = 0,
    warmup_fraction: float = 0.5,
    jobs: Optional[int] = 1,
    bus: Optional[EventBus] = None,
) -> List[SimulationResult]:
    """Several independent runs with derived seeds (for error bars)."""
    if runs <= 0:
        raise SimulationError(f"runs must be positive, got {runs}")
    return simulate_many(
        [params] * runs,
        duration=duration,
        seed=seed,
        warmup_fraction=warmup_fraction,
        jobs=jobs,
        bus=bus,
    )
