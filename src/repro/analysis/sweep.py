"""Parameter sweeps over the model and the Monte-Carlo simulation.

The paper notes that "space limitations ... prevent a thorough
exploration of the parameter space".  This module is that exploration:
sweep one parameter of :class:`~repro.analysis.model.ModelParams` while
holding the rest, and compare the analytic steady state against the
Monte-Carlo measurement at each point.  The figure-style ablation
benches print these series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.model import (
    ModelParams,
    is_stable,
    steady_state_polyvalues,
)
from repro.analysis.montecarlo import simulate
from repro.core.errors import ReproError

#: ModelParams field names accepted by :func:`sweep`.
SWEEPABLE = (
    "updates_per_second",
    "failure_probability",
    "items",
    "recovery_rate",
    "dependency_mean",
    "update_independence",
)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the varied value, model and simulation P."""

    parameter: str
    value: float
    params: ModelParams
    model: Optional[float]  # None when the point is unstable
    simulated: Optional[float]  # None when simulation was skipped

    @property
    def stable(self) -> bool:
        return self.model is not None


def sweep(
    base: ModelParams,
    parameter: str,
    values: Sequence[float],
    *,
    run_simulation: bool = False,
    duration: Optional[float] = None,
    seed: int = 0,
) -> List[SweepPoint]:
    """Vary *parameter* of *base* over *values*.

    Unstable points (propagation outpacing recovery) get ``model=None``
    rather than raising, so a sweep can cross the stability boundary —
    that boundary itself is one of the model's qualitative predictions.
    Simulation (optional, slower) is skipped at unstable points.
    """
    if parameter not in SWEEPABLE:
        raise ReproError(
            f"cannot sweep {parameter!r}; choose one of {SWEEPABLE}"
        )
    points: List[SweepPoint] = []
    for index, value in enumerate(values):
        params = base.vary(**{parameter: value})
        if is_stable(params):
            model_value: Optional[float] = steady_state_polyvalues(params)
        else:
            model_value = None
        simulated: Optional[float] = None
        if run_simulation and model_value is not None:
            result = simulate(
                params, duration=duration, seed=seed + index * 104729
            )
            simulated = result.mean_polyvalues
        points.append(
            SweepPoint(
                parameter=parameter,
                value=value,
                params=params,
                model=model_value,
                simulated=simulated,
            )
        )
    return points


def format_sweep_table(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as an aligned text table (for bench output)."""
    if not points:
        return "(empty sweep)"
    parameter = points[0].parameter
    lines = [f"{parameter:>22} {'model P':>12} {'simulated P':>12}"]
    for point in points:
        model = f"{point.model:.3f}" if point.model is not None else "unstable"
        simulated = (
            f"{point.simulated:.3f}" if point.simulated is not None else "-"
        )
        lines.append(f"{point.value:>22.6g} {model:>12} {simulated:>12}")
    return "\n".join(lines)
