"""Parameter sweeps over the model and the Monte-Carlo simulation.

The paper notes that "space limitations ... prevent a thorough
exploration of the parameter space".  This module is that exploration:
sweep one parameter of :class:`~repro.analysis.model.ModelParams` while
holding the rest, and compare the analytic steady state against the
Monte-Carlo measurement at each point.  The figure-style ablation
benches print these series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.model import (
    ModelParams,
    is_stable,
    steady_state_polyvalues,
)
from repro.analysis.montecarlo import simulate_many
from repro.core.errors import ReproError
from repro.obs.events import EventBus
from repro.parallel.seeds import trial_seed

#: ModelParams field names accepted by :func:`sweep`.
SWEEPABLE = (
    "updates_per_second",
    "failure_probability",
    "items",
    "recovery_rate",
    "dependency_mean",
    "update_independence",
)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the varied value, model and simulation P."""

    parameter: str
    value: float
    params: ModelParams
    model: Optional[float]  # None when the point is unstable
    simulated: Optional[float]  # None when simulation was skipped

    @property
    def stable(self) -> bool:
        return self.model is not None


def sweep(
    base: ModelParams,
    parameter: str,
    values: Sequence[float],
    *,
    run_simulation: bool = False,
    duration: Optional[float] = None,
    seed: int = 0,
    jobs: Optional[int] = 1,
    bus: Optional[EventBus] = None,
) -> List[SweepPoint]:
    """Vary *parameter* of *base* over *values*.

    Unstable points (propagation outpacing recovery) get ``model=None``
    rather than raising, so a sweep can cross the stability boundary —
    that boundary itself is one of the model's qualitative predictions.
    Simulation (optional, slower) is skipped at unstable points; the
    simulated points run as one campaign through the engine (*jobs*
    workers, ``1`` = serial), each point seeded by
    :func:`repro.parallel.seeds.trial_seed` over ``(seed, index)`` so
    a point's result never depends on which other points are stable.
    """
    if parameter not in SWEEPABLE:
        raise ReproError(
            f"cannot sweep {parameter!r}; choose one of {SWEEPABLE}"
        )
    all_params: List[ModelParams] = []
    model_values: List[Optional[float]] = []
    for value in values:
        params = base.vary(**{parameter: value})
        all_params.append(params)
        model_values.append(
            steady_state_polyvalues(params) if is_stable(params) else None
        )
    simulated_values: List[Optional[float]] = [None] * len(all_params)
    if run_simulation:
        sim_indexes = [
            index
            for index, model_value in enumerate(model_values)
            if model_value is not None
        ]
        results = simulate_many(
            [all_params[index] for index in sim_indexes],
            duration=duration,
            seeds=[trial_seed(seed, index) for index in sim_indexes],
            jobs=jobs,
            bus=bus,
        )
        for index, result in zip(sim_indexes, results):
            simulated_values[index] = result.mean_polyvalues
    return [
        SweepPoint(
            parameter=parameter,
            value=value,
            params=params,
            model=model_value,
            simulated=simulated,
        )
        for value, params, model_value, simulated in zip(
            values, all_params, model_values, simulated_values
        )
    ]


def format_sweep_table(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as an aligned text table (for bench output)."""
    if not points:
        return "(empty sweep)"
    parameter = points[0].parameter
    lines = [f"{parameter:>22} {'model P':>12} {'simulated P':>12}"]
    for point in points:
        model = f"{point.model:.3f}" if point.model is not None else "unstable"
        simulated = (
            f"{point.simulated:.3f}" if point.simulated is not None else "-"
        )
        lines.append(f"{point.value:>22.6g} {model:>12} {simulated:>12}")
    return "\n".join(lines)
