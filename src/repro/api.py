"""repro.api — the stable, supported public surface of the library.

Import from here (or from the :mod:`repro` top level, which re-exports
the most common names).  Everything below is covered by the test suite
and kept backwards compatible; anything you reach by deep-importing
``repro.core.*`` / ``repro.txn.*`` internals is not, and the package
``__init__`` modules emit :class:`DeprecationWarning` for names this
facade replaces.

The surface, by layer:

* **Mechanism** (paper section 3) — :class:`Condition`,
  :class:`Literal`, :class:`Polyvalue`, the lifted helpers
  (:func:`combine`, :func:`definitely`, :func:`possibly`,
  :func:`certain`), polytransaction execution
  (:func:`execute_polytransaction`), and :func:`parse_condition`.
* **Performance knobs** — :func:`configure_caches`,
  :func:`clear_caches`, :func:`cache_info` over the condition-algebra
  memoization described in ``docs/performance.md``.
* **Simulation** (section 4) — :class:`Simulator`, :class:`Network`,
  :class:`DistributedSystem` and the policy constructors
  (:func:`polyvalue_system`, :func:`blocking_system`,
  :func:`relaxed_system`, :func:`paxos_commit_system`,
  :func:`path_sensitive_system`), :class:`Transaction`,
  :class:`ProtocolConfig`, and the protocol selector
  (:data:`PROTOCOL_NAMES`, :class:`CommitProtocol`,
  :func:`config_for_protocol`) — ``docs/protocols.md``.
* **Observability** — :class:`EventBus`, :class:`SpanTracer`,
  :class:`MetricsRegistry`, :class:`ProtocolTracer`
  (``docs/observability.md``).
* **Campaign telemetry** — the persistent results store
  (:class:`CampaignStore`, :class:`CampaignRecorder`,
  :func:`default_store_path`) behind ``repro history``, and the live
  dashboard (:class:`DashboardServer`, :class:`LiveState`,
  :func:`serve_dash`) behind ``repro serve-dash``
  (``docs/observability.md``, "The campaign store").
* **Correctness harness** — :func:`explore`, :func:`run_mutation_smoke`,
  :func:`run_protocol_mutation_smoke` and the oracle entry points
  (``docs/testing.md``).
* **Resilience** — the gray-failure fault model
  (:class:`FailureAction`, :class:`ScheduleScript`), adaptive patience
  (:class:`TimeoutPolicy`, :class:`RttEstimator`, :class:`Patience`),
  bounded retransmission (:class:`RetryPolicy`), and the chaos
  campaign (:class:`ChaosProfile`, :func:`run_campaign`,
  :func:`replay_chaos`) — ``docs/faults.md``.
* **Measurement** — :func:`run_benchmarks`, backing
  ``python -m repro bench`` (``docs/performance.md``), and the
  four-protocol frontier campaign (:func:`run_frontier`,
  :class:`FrontierReport`, :func:`fault_matrix`,
  :data:`FRONTIER_PROTOCOLS`) behind ``repro frontier``
  (``docs/protocols.md``).
* **Parallel campaigns** — the process-pool campaign engine
  (:func:`run_trials`, :class:`CampaignOutcome`,
  :class:`TrialFailure`, :func:`default_jobs`), the shared seed
  derivation (:func:`trial_seed`, :func:`trial_seeds`), and the
  batched Monte-Carlo entry point (:func:`simulate_many`) —
  ``docs/performance.md`` ("Parallel campaigns").

Example
-------
>>> from repro.api import DistributedSystem, Transaction
>>> system = DistributedSystem.build(sites=3, items={"a": 10, "b": 0}, seed=1)
>>> def move(ctx):
...     ctx.write("a", ctx.read("a") - 4)
...     ctx.write("b", ctx.read("b") + 4)
>>> handle = system.submit(Transaction(body=move, items=("a", "b")))
>>> system.run_for(1.0)
>>> handle.status.value
'committed'
"""

from __future__ import annotations

# Mechanism: conditions and polyvalues (paper section 3).
from repro.core.conditions import (
    FALSE,
    TRUE,
    Condition,
    Literal,
    TxnId,
    cache_info,
    clear_caches,
    conditions_are_complete,
    conditions_are_complete_and_disjoint,
    conditions_are_disjoint,
    configure_caches,
    intern_literal,
)
from repro.core.errors import (
    ConditionError,
    PolyvalueError,
    ProtocolError,
    ReproError,
    SimulationError,
    TransactionAborted,
    TransactionError,
    TransactionInDoubt,
    UncertainValueError,
)
from repro.core.minimize import minimize
from repro.core.outcome import OutcomeLog, OutcomeTable, Resolution
from repro.core.parser import parse_condition
from repro.core.polytransaction import (
    PolyContext,
    PolyTransactionResult,
    execute as execute_polytransaction,
)
from repro.core.polyvalue import (
    Polyvalue,
    as_pairs,
    certain,
    combine,
    definitely,
    depends_on,
    is_polyvalue,
    possible_values,
    possibly,
    reduce_value,
    simplify,
)
from repro.core.serialize import (
    decode_state,
    decode_value,
    encode_state,
    encode_value,
)

# Simulation substrate and the full-system simulator (section 4).
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.events import Event, SimTime
from repro.sim.rand import Rng
from repro.net.network import Network, NetworkStats
from repro.net.failures import (
    CrashPlan,
    FailureAction,
    RandomFailures,
    ScheduleScript,
    ScriptedFailures,
)
from repro.txn.baselines import (
    blocking_system,
    paxos_commit_system,
    path_sensitive_system,
    polyvalue_system,
    relaxed_system,
)
from repro.txn.config import (
    PROTOCOL_NAMES,
    CommitPolicy,
    CommitProtocol,
    ProtocolConfig,
    config_for_protocol,
)
from repro.txn.timeouts import (
    Patience,
    RetryPolicy,
    RttEstimator,
    TimeoutPolicy,
)
from repro.txn.system import DistributedSystem
from repro.txn.tracing import ProtocolTracer
from repro.txn.transaction import Transaction, TransactionHandle, TxnStatus

# Observability (PR 1, docs/observability.md).
from repro.obs.events import EventBus
from repro.obs.export import CampaignMetrics
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer

# Campaign telemetry: the persistent store + live dashboard (PR 6).
from repro.obs.store import (
    CampaignRecorder,
    CampaignStore,
    RunRecord,
    StoreError,
    TrialRecord,
    VerdictRecord,
    default_store_path,
)
from repro.obs.live import DashboardServer, LiveState, serve_dash

# Correctness harness (PR 2, docs/testing.md).
from repro.check.explorer import explore, replay, run_schedule
from repro.check.mutation import (
    PROTOCOL_FAULTS,
    run_mutation_smoke,
    run_protocol_mutation_smoke,
)
from repro.check.oracles import CheckContext, check_converged, check_quiescent, failed

# Resilience layer: gray-failure chaos campaign (docs/faults.md).
from repro.chaos import ChaosProfile, chaos_walk, replay_chaos, run_campaign

# Analysis: the section 4 analytic model and Monte-Carlo simulation.
from repro.analysis.model import table1_rows, table2_rows
from repro.analysis.montecarlo import simulate, simulate_many

# Measurement (docs/performance.md).
from repro.bench import run_benchmarks

# The commit-protocol bake-off frontier (docs/protocols.md).
from repro.frontier import (
    FRONTIER_PROTOCOLS,
    FrontierReport,
    fault_matrix,
    run_frontier,
)

# The Runtime seam and the live cluster (docs/runtime.md): the same
# state machines on sim time or wall-clock asyncio sockets.
from repro.runtime import AsyncioRuntime, Periodic, Runtime, SimRuntime
from repro.live import (
    ClusterThread,
    HttpApi,
    LiveCluster,
    LiveClusterError,
    TransactionScriptError,
    WireError,
    compile_script,
    decode_envelope,
    decode_message,
    encode_envelope,
    encode_message,
    run_serve,
)
from repro.live.cluster import LIVE_PROTOCOLS

# Parallel campaign engine (docs/performance.md, "Parallel campaigns").
from repro.parallel import (
    CampaignOutcome,
    TrialFailure,
    default_jobs,
    run_trials,
    trial_seed,
    trial_seeds,
)

__all__ = [
    "AsyncioRuntime",
    "CampaignMetrics",
    "CampaignOutcome",
    "CampaignRecorder",
    "CampaignStore",
    "ChaosProfile",
    "CheckContext",
    "ClusterThread",
    "CommitPolicy",
    "CommitProtocol",
    "Condition",
    "ConditionError",
    "CrashPlan",
    "DashboardServer",
    "DistributedSystem",
    "Event",
    "EventBus",
    "FALSE",
    "FRONTIER_PROTOCOLS",
    "FailureAction",
    "FrontierReport",
    "HttpApi",
    "LIVE_PROTOCOLS",
    "Literal",
    "LiveCluster",
    "LiveClusterError",
    "LiveState",
    "MetricsRegistry",
    "Network",
    "NetworkStats",
    "OutcomeLog",
    "OutcomeTable",
    "PROTOCOL_FAULTS",
    "PROTOCOL_NAMES",
    "Patience",
    "Periodic",
    "PeriodicTask",
    "PolyContext",
    "PolyTransactionResult",
    "Polyvalue",
    "PolyvalueError",
    "ProtocolConfig",
    "ProtocolError",
    "ProtocolTracer",
    "RandomFailures",
    "ReproError",
    "Resolution",
    "RetryPolicy",
    "Rng",
    "RttEstimator",
    "RunRecord",
    "Runtime",
    "ScheduleScript",
    "ScriptedFailures",
    "SimRuntime",
    "SimTime",
    "SimulationError",
    "Simulator",
    "SpanTracer",
    "StoreError",
    "TRUE",
    "TimeoutPolicy",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TransactionHandle",
    "TransactionInDoubt",
    "TransactionScriptError",
    "TrialFailure",
    "TrialRecord",
    "TxnId",
    "TxnStatus",
    "UncertainValueError",
    "VerdictRecord",
    "WireError",
    "as_pairs",
    "blocking_system",
    "cache_info",
    "certain",
    "chaos_walk",
    "check_converged",
    "check_quiescent",
    "clear_caches",
    "combine",
    "compile_script",
    "conditions_are_complete",
    "conditions_are_complete_and_disjoint",
    "conditions_are_disjoint",
    "config_for_protocol",
    "configure_caches",
    "decode_envelope",
    "decode_message",
    "decode_state",
    "decode_value",
    "default_jobs",
    "default_store_path",
    "definitely",
    "depends_on",
    "encode_envelope",
    "encode_message",
    "encode_state",
    "encode_value",
    "execute_polytransaction",
    "explore",
    "failed",
    "fault_matrix",
    "intern_literal",
    "is_polyvalue",
    "minimize",
    "parse_condition",
    "path_sensitive_system",
    "paxos_commit_system",
    "polyvalue_system",
    "possible_values",
    "possibly",
    "reduce_value",
    "relaxed_system",
    "replay",
    "replay_chaos",
    "run_benchmarks",
    "run_campaign",
    "run_frontier",
    "run_mutation_smoke",
    "run_protocol_mutation_smoke",
    "run_schedule",
    "run_serve",
    "run_trials",
    "serve_dash",
    "simplify",
    "simulate",
    "simulate_many",
    "table1_rows",
    "table2_rows",
    "trial_seed",
    "trial_seeds",
]