"""Performance benchmarks for the hot paths (``python -m repro bench``).

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; this module gives every PR a measured trajectory to move.  It
times the four hot paths the performance layer optimises:

* **condition ops** — the ``&``/``|``/``~``/``substitute`` algebra of
  :mod:`repro.core.conditions` (interned + memoized);
* **polyvalue reads** — :func:`~repro.core.polyvalue.combine`,
  :meth:`~repro.core.polyvalue.Polyvalue.reduce` and
  :meth:`~repro.core.polyvalue.Polyvalue.in_doubt` (single-pair fast
  paths);
* **explorer throughput** — schedules/second of the correctness
  harness's deterministic explorer (indexed event heap);
* **Table-2 wall time** — the end-to-end Monte-Carlo simulation of the
  paper's section 4.2.

Besides raw ops/s — which vary with the machine — the report includes
two *machine-relative guards*, each the ratio of the optimised path to
the same workload with the optimisation disabled in-process:

* ``condition_cache_speedup`` — condition ops with the memoization
  caches configured normally vs :func:`configure_caches(0) <repro.core.\
conditions.configure_caches>`;
* ``polyvalue_fastpath_speedup`` — ``Polyvalue.in_doubt`` (which skips
  truth-table validation for two simple values) vs the full validating
  constructor on the same inputs.

The resilience layer adds three more machine-relative guards (see
:func:`bench_resilience` and ``docs/faults.md``):

* ``adaptive_spurious_reduction`` — spurious wait-timeout polyvalue
  installs under the reference gray campaign, fixed / resilient;
* ``outage_detection_parity`` — real-outage detection latency,
  fixed / resilient;
* ``retransmission_reduction`` — owed-notification sends over a
  one-minute outage, flat-interval / exponential-backoff.

The commit-protocol bake-off adds the frontier guards (see
:mod:`repro.frontier` and ``docs/protocols.md``): per-protocol commit
availability floors over the shared fault matrix, the path-sensitive
message-advantage ratio, and the Didona one-round-trip latency sanity
bit.

CI compares the guards against the committed ``BENCH_perf.json`` and
fails on a >25% relative regression; ratios transfer across runner
speeds where absolute ops/s do not.  See ``docs/performance.md``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core import conditions
from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue, combine
from repro.parallel.artifacts import write_json
from repro.parallel.pool import default_jobs
from repro.parallel.seeds import trial_seed

#: Seconds each microbenchmark loop runs for (after one warmup call).
FULL_MIN_TIME = 0.4
SMOKE_MIN_TIME = 0.05

#: Explorer seed budget in full mode — matches ``BENCH_check.json`` so
#: the schedules/s figures are directly comparable.
FULL_EXPLORER_SEEDS = 25
SMOKE_EXPLORER_SEEDS = 5

#: Simulated seconds per Table-2 row (full mode mirrors the pre-PR
#: baseline measurement recorded in ``BENCH_perf.json``).
FULL_TABLE2_DURATION = 2000.0
#: Shortest duration every Table-2 row accepts (4/R with R = 0.01).
SMOKE_TABLE2_DURATION = 400.0


def _ops_per_second(fn: Callable[[], None], min_time: float) -> float:
    """Iterations/second of *fn*: one warmup call, then a timed loop."""
    fn()
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_time:
        fn()
        count += 1
    return count / (time.perf_counter() - start)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

_TXNS = tuple(f"T{i}" for i in range(6))


def _condition_ops() -> None:
    """Repeated ``&``, ``|``, ``~`` and substitution over a small space.

    This workload (including its exact fold order) is frozen: the
    ``pre_pr_baseline`` numbers in ``BENCH_perf.json`` were measured
    with it, so changing it would invalidate the trajectory.
    """
    conds = [Condition.of(t) for t in _TXNS]
    c = Condition.true()
    for i, _ in enumerate(_TXNS):
        c = (c & conds[i]) | ~conds[(i + 1) % len(_TXNS)]
    c.substitute({"T0": True, "T1": False})
    c.variables()
    c.is_satisfiable()
    (conds[0] & ~conds[1]) | (conds[2] & conds[3])


def _polyvalue_reads() -> None:
    """Lifted reads against a two-alternative polyvalue (also frozen)."""
    pv = Polyvalue([(100, Condition.of("T1")), (150, Condition.not_of("T1"))])
    for _ in range(10):
        combine(lambda a, b: a + b, pv, 5)
        pv.reduce({"T1": True})
        Polyvalue.in_doubt("T2", 7, 7)
        Polyvalue.in_doubt("T3", 7, 9)


def _in_doubt_fast() -> None:
    for _ in range(10):
        Polyvalue.in_doubt("T2", 7, 9)


def _in_doubt_validating() -> None:
    # What ``in_doubt`` computes without its fast path: the validating
    # constructor (truth-table completeness/disjointness) plus collapse.
    for _ in range(10):
        Polyvalue(
            [(7, Condition.of("T2")), (9, Condition.not_of("T2"))]
        ).collapse()


# ----------------------------------------------------------------------
# Benchmark suite
# ----------------------------------------------------------------------


def bench_condition_ops(min_time: float = FULL_MIN_TIME) -> float:
    """Condition-algebra ops/s with the caches as currently configured."""
    return _ops_per_second(_condition_ops, min_time)


def bench_polyvalue_reads(min_time: float = FULL_MIN_TIME) -> float:
    """Polyvalue read-path ops/s."""
    return _ops_per_second(_polyvalue_reads, min_time)


def bench_condition_cache_speedup(min_time: float = FULL_MIN_TIME) -> float:
    """Cached vs uncached condition ops on this machine (ratio > 1)."""
    cached = _ops_per_second(_condition_ops, min_time)
    conditions.configure_caches(0)
    try:
        uncached = _ops_per_second(_condition_ops, min_time)
    finally:
        conditions.configure_caches()
    return cached / uncached


def bench_polyvalue_fastpath_speedup(min_time: float = FULL_MIN_TIME) -> float:
    """``in_doubt`` fast path vs the full validating constructor."""
    fast = _ops_per_second(_in_doubt_fast, min_time)
    slow = _ops_per_second(_in_doubt_validating, min_time)
    return fast / slow


def bench_explorer(
    seeds: int = FULL_EXPLORER_SEEDS,
    first: int = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, Any]:
    """Schedules/second of the deterministic explorer (oracles on)."""
    from repro.check.explorer import explore

    report = explore(
        campaign_seed=first,
        trials=seeds,
        include_enumeration=True,
        jobs=jobs,
    )
    return {
        "schedules": report.schedules_run,
        "schedules_per_s": report.schedules_per_second,
        "ok": report.ok,
    }


# ----------------------------------------------------------------------
# Resilience benchmarks (the gray-failure layer)
# ----------------------------------------------------------------------

#: Simulated seconds of gray-campaign traffic.  Smoke mode does NOT
#: shrink this: simulated seconds are nearly free in wall time, and an
#: identical seeded run makes every resilience guard bit-for-bit
#: reproducible across machines (unlike the timing-based guards).
GRAY_DURATION = 200.0

#: Simulated seconds the retransmission outage lasts (the acceptance
#: scenario: one site down for a minute while owed a notification).
OUTAGE_DURATION = 60.0


def _resilience_transfer(src: str, dst: str):
    from repro.txn.transaction import Transaction

    def body(ctx):
        ctx.write(src, ctx.read(src) - 1)
        ctx.write(dst, ctx.read(dst) + 1)

    return Transaction(body=body, items=(src, dst), label=f"{src}->{dst}")


def _resilience_spread(items3):
    from repro.txn.transaction import Transaction

    a, b, c = items3

    def body(ctx):
        ctx.write(a, ctx.read(a) - 2)
        ctx.write(b, ctx.read(b) + 1)
        ctx.write(c, ctx.read(c) + 1)

    return Transaction(body=body, items=items3, label=f"spread:{a}")


def _resilience_config(resilient: bool, retry=None):
    from repro.txn.config import ProtocolConfig
    from repro.txn.timeouts import TimeoutPolicy

    kwargs = {"retry": retry} if retry is not None else {}
    if resilient:
        # The resilient stack: adaptive RTO + two §6 wait-phase probes
        # (three probes at the adaptive RTO fit the fixed policy's
        # outage-detection budget — measured by the parity guard).
        return ProtocolConfig(
            timeout_policy=TimeoutPolicy(mode="adaptive"),
            wait_query_retries=2,
            **kwargs,
        )
    return ProtocolConfig(**kwargs)


def _gray_campaign_run(resilient: bool, seed: int, duration: float) -> Dict[str, Any]:
    """The reference gray campaign: no crash ever happens, so every
    wait-timeout polyvalue install is spurious.

    Three sites; healthy warmup, then one site degraded x5, one
    directed link spiked x10 and 2% ambient message loss for the rest
    of the run.  Steady disjoint three-site transactions keep lock
    contention out of the measurement.
    """
    from repro.check.oracles import CheckContext, check_converged, failed
    from repro.txn.system import DistributedSystem

    system = DistributedSystem.build(
        sites=3,
        items={f"item-{i}": 100 for i in range(12)},
        seed=seed,
        loss_probability=0.02,
        config=_resilience_config(resilient),
    )
    groups = [
        tuple(f"item-{3 * g + k}" for k in range(3)) for g in range(4)
    ]
    at, index = 0.1, 0
    while at < duration:
        group = groups[index % len(groups)]
        system.sim.schedule_at(
            at,
            lambda g=group: system.submit(_resilience_spread(g)),
            label="arrival",
        )
        at += 0.2
        index += 1
    system.run_until(5.0)  # healthy warmup: estimators sample real RTTs
    system.degrade_site("site-2", 5.0)
    system.network.spike_link("site-0", "site-1", 10.0)
    system.run_until(duration)
    system.restore_site("site-2")
    system.network.clear_link("site-0", "site-1")
    settled = system.settle(max_time=system.sim.now + 120.0)
    oracles = check_converged(CheckContext(system=system))
    return {
        "spurious_installs": system.metrics.in_doubt_windows,
        "committed": system.metrics.committed,
        "aborted": system.metrics.aborted,
        "settled": settled,
        "oracles_checked": len(oracles),
        "oracles_ok": settled and not failed(oracles),
    }


def _outage_detection_run(resilient: bool, seed: int) -> float:
    """Seconds from a real coordinator crash (healthy network, warmed
    estimators) to the participant's first polyvalue install."""
    from repro.txn.system import DistributedSystem

    system = DistributedSystem.build(
        sites=3,
        items={f"item-{i}": 100 for i in range(6)},
        seed=seed,
        config=_resilience_config(resilient),
    )
    for _ in range(10):  # warmup so adaptive mode runs on live estimates
        system.submit(_resilience_transfer("item-0", "item-1"))
        system.run_for(0.4)
    system.submit(_resilience_transfer("item-0", "item-1"))
    system.run_for(0.030)  # mid-protocol: the in-doubt window is open
    before = system.metrics.in_doubt_windows
    crashed_at = system.sim.now
    system.crash_site("site-0")
    while (
        system.metrics.in_doubt_windows == before
        and system.sim.now < crashed_at + 30.0
    ):
        system.run_for(0.005)
    latency = system.sim.now - crashed_at
    system.recover_site("site-0")
    system.settle(max_time=system.sim.now + 60.0)
    return latency


def _retransmission_run(flat: bool, seed: int) -> int:
    """OutcomeNotify retransmissions over a one-minute participant
    outage that begins inside the notification window."""
    from repro.txn.system import DistributedSystem
    from repro.txn.timeouts import RetryPolicy

    retry = (
        RetryPolicy(
            backoff_factor=1.0, jitter=0.0, suppression_threshold=10**9
        )
        if flat
        else RetryPolicy()
    )
    system = DistributedSystem.build(
        sites=3,
        items={f"item-{i}": 100 for i in range(6)},
        seed=seed,
        config=_resilience_config(False, retry=retry),
    )
    system.submit(_resilience_transfer("item-0", "item-1"))
    log = system.sites["site-0"].runtime.outcome_log
    while not log.pending() and system.sim.now < 1.0:
        system.run_for(0.002)
    system.crash_site("site-1")
    system.run_for(OUTAGE_DURATION)
    sends = system.metrics.notify_retransmissions
    system.recover_site("site-1")
    system.settle(max_time=system.sim.now + 60.0)
    return sends


def bench_resilience(*, seed: int = 0) -> Dict[str, Any]:
    """The resilience suite: three measurements, three guard ratios.

    * ``adaptive_spurious_reduction`` — spurious wait-timeout polyvalue
      installs under the reference gray campaign, fixed / resilient
      (acceptance floor: 3x);
    * ``outage_detection_parity`` — real-outage detection latency,
      fixed / resilient (~1: the resilient stack buys its reduction
      without giving up detection speed);
    * ``retransmission_reduction`` — OutcomeNotify sends over a
      one-minute owed-notification outage, flat / backoff.
    """
    baseline = _gray_campaign_run(False, seed, GRAY_DURATION)
    resilient = _gray_campaign_run(True, seed, GRAY_DURATION)
    detection_fixed = _outage_detection_run(False, seed)
    detection_adaptive = _outage_detection_run(True, seed)
    flat_sends = _retransmission_run(True, seed)
    backoff_sends = _retransmission_run(False, seed)
    results = {
        "gray_spurious_installs_fixed": baseline["spurious_installs"],
        "gray_spurious_installs_adaptive": resilient["spurious_installs"],
        "gray_committed_fixed": baseline["committed"],
        "gray_committed_adaptive": resilient["committed"],
        "gray_oracles_checked": baseline["oracles_checked"],
        "gray_oracles_ok": bool(
            baseline["oracles_ok"] and resilient["oracles_ok"]
        ),
        "outage_detection_fixed_s": round(detection_fixed, 3),
        "outage_detection_adaptive_s": round(detection_adaptive, 3),
        "outage_retransmissions_flat": flat_sends,
        "outage_retransmissions_backoff": backoff_sends,
    }
    guards = {
        "adaptive_spurious_reduction": round(
            baseline["spurious_installs"]
            / max(1, resilient["spurious_installs"]),
            2,
        ),
        "outage_detection_parity": round(
            detection_fixed / detection_adaptive, 2
        ),
        "retransmission_reduction": round(
            flat_sends / max(1, backoff_sends), 2
        ),
    }
    return {"results": results, "guards": guards}


def bench_table2(duration: float = FULL_TABLE2_DURATION) -> float:
    """Wall seconds to run every Table-2 row for *duration* sim-seconds."""
    from repro.analysis.model import table2_rows
    from repro.analysis.montecarlo import simulate

    start = time.perf_counter()
    for index, row in enumerate(table2_rows()):
        simulate(row.params, duration=duration, seed=trial_seed(0, index))
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# The commit-protocol frontier (the bake-off)
# ----------------------------------------------------------------------

#: Fail-stop walks per scenario in the frontier matrix.
FRONTIER_TRIALS_FULL = 4
FRONTIER_TRIALS_SMOKE = 3


def bench_frontier(
    *,
    seed: int = 0,
    smoke: bool = False,
    jobs: Optional[int] = 1,
    protocols: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """The four-protocol bake-off (see :mod:`repro.frontier`).

    Contributes per-protocol availability floors, the path-sensitive
    message-advantage guard, and the Didona latency sanity bit to the
    benchmark payload.
    """
    from repro.frontier import FRONTIER_PROTOCOLS, run_frontier

    report = run_frontier(
        campaign_seed=seed,
        trials=FRONTIER_TRIALS_SMOKE if smoke else FRONTIER_TRIALS_FULL,
        smoke=smoke,
        jobs=jobs,
        protocols=tuple(protocols) if protocols else FRONTIER_PROTOCOLS,
    )
    payload = report.to_bench()
    payload["results"]["frontier_failed_trials"] = len(report.failed_trials)
    return payload


# ----------------------------------------------------------------------
# Parallel campaign scaling (the campaign engine)
# ----------------------------------------------------------------------

#: Monte-Carlo trials in the scaling campaign.  Each trial is a full
#: stable-period simulation (~0.1-0.2 wall seconds), so chunk dispatch
#: and fork overhead are noise against the work being sharded.
SCALING_TRIALS_FULL = 24
SCALING_TRIALS_SMOKE = 12

#: Worker counts the scaling bench measures.  Levels above what the
#: machine can actually schedule (``default_jobs()``) are skipped —
#: oversubscribed workers time-slice one core and measure nothing.
SCALING_JOBS_LEVELS = (1, 2, 4)


def bench_parallel_scaling(
    *,
    seed: int = 0,
    trials: int = SCALING_TRIALS_FULL,
    jobs_levels: Sequence[int] = SCALING_JOBS_LEVELS,
) -> Dict[str, Any]:
    """Campaign throughput at each worker count, plus speedup guards.

    Runs the same seeded Monte-Carlo campaign (the Table-2 baseline
    row) through :func:`~repro.analysis.montecarlo.simulate_many` at
    each jobs level.  Besides throughput, it asserts the engine's core
    promise — per-seed results bit-identical at every level — and
    reports it as ``parallel_bitwise_identical``.

    Guards are ``parallel_speedup_jobsN`` = throughput at N workers
    over the serial path.  :func:`check_regression` skips a committed
    ``parallel_speedup_jobsN`` guard when the measuring machine has
    fewer than N usable cores (the committed floors are enforced by
    multi-core CI, not by whatever laptop re-runs the suite).
    """
    from repro.analysis.model import ModelParams
    from repro.analysis.montecarlo import simulate_many

    params = ModelParams(
        updates_per_second=40.0,
        failure_probability=0.02,
        items=25_000,
        recovery_rate=0.02,
        dependency_mean=2.0,
        update_independence=0.5,
    )
    cpus = default_jobs()
    results: Dict[str, Any] = {
        "parallel_campaign_trials": trials,
        "parallel_cpus": cpus,
    }
    guards: Dict[str, Any] = {}
    throughput: Dict[int, float] = {}
    reference = None
    identical = True
    for level in jobs_levels:
        if level > max(1, cpus):
            continue
        start = time.perf_counter()
        batch = simulate_many([params] * trials, seed=seed, jobs=level)
        wall = time.perf_counter() - start
        throughput[level] = trials / wall
        results[f"campaign_jobs{level}_per_s"] = round(trials / wall, 2)
        means = [result.mean_polyvalues for result in batch]
        if reference is None:
            reference = means
        elif means != reference:
            identical = False
    results["parallel_bitwise_identical"] = identical
    serial = throughput.get(1)
    for level, rate in throughput.items():
        if level > 1 and serial:
            guards[f"parallel_speedup_jobs{level}"] = round(rate / serial, 2)
    return {"results": results, "guards": guards}


#: The pre-PR measurements this performance layer is judged against,
#: taken on the development machine immediately before the layer was
#: introduced, with the exact workloads above.
PRE_PR_BASELINE: Dict[str, float] = {
    "condition_ops_per_s": 2627.1,
    "polyvalue_ops_per_s": 381.0,
    "explorer_schedules_per_s": 723.4,
    "table2_wall_s": 0.81,
}


def run_benchmarks(
    *,
    smoke: bool = False,
    explorer_seeds: Optional[int] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    frontier_protocols: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run the full perf suite and return the ``BENCH_perf.json`` payload.

    ``smoke=True`` shrinks every budget (CI-friendly: a few seconds
    total); absolute numbers then undershoot full mode, but the guard
    ratios remain meaningful.  *seed* is the explorer campaign seed
    (mirroring ``repro check --seed``); the microbenchmarks are
    deterministic modulo timing.  *jobs* caps the scaling bench's
    worker levels (``None`` = every level the machine can schedule);
    the other benchmarks stay serial — they time single-core hot paths.
    """
    min_time = SMOKE_MIN_TIME if smoke else FULL_MIN_TIME
    if explorer_seeds is None:
        explorer_seeds = SMOKE_EXPLORER_SEEDS if smoke else FULL_EXPLORER_SEEDS
    duration = SMOKE_TABLE2_DURATION if smoke else FULL_TABLE2_DURATION
    scaling_trials = SCALING_TRIALS_SMOKE if smoke else SCALING_TRIALS_FULL
    jobs_cap = default_jobs() if jobs is None else jobs
    jobs_levels = tuple(
        level for level in SCALING_JOBS_LEVELS if level <= max(1, jobs_cap)
    )

    explorer = bench_explorer(seeds=explorer_seeds, first=seed)
    resilience = bench_resilience(seed=seed)
    frontier = bench_frontier(
        seed=seed, smoke=smoke, jobs=jobs_cap, protocols=frontier_protocols
    )
    scaling = bench_parallel_scaling(
        seed=seed, trials=scaling_trials, jobs_levels=jobs_levels
    )
    results: Dict[str, Any] = {
        "condition_ops_per_s": round(bench_condition_ops(min_time), 1),
        "polyvalue_ops_per_s": round(bench_polyvalue_reads(min_time), 1),
        "explorer_schedules": explorer["schedules"],
        "explorer_schedules_per_s": round(explorer["schedules_per_s"], 1),
        "explorer_ok": explorer["ok"],
        "table2_wall_s": round(bench_table2(duration), 3),
    }
    results.update(resilience["results"])
    results.update(frontier["results"])
    results.update(scaling["results"])
    guards = {
        "condition_cache_speedup": round(
            bench_condition_cache_speedup(min_time), 2
        ),
        "polyvalue_fastpath_speedup": round(
            bench_polyvalue_fastpath_speedup(min_time), 2
        ),
    }
    guards.update(resilience["guards"])
    guards.update(frontier["guards"])
    guards.update(scaling["guards"])
    return {
        "schema": 1,
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "budgets": {
            "microbench_min_time_s": min_time,
            "explorer_seeds": explorer_seeds,
            "table2_duration_s": duration,
            "scaling_trials": scaling_trials,
        },
        "pre_pr_baseline": dict(PRE_PR_BASELINE),
        "results": results,
        "guards": guards,
    }


def check_regression(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    max_regression: float = 0.25,
) -> list:
    """Compare *report* guards against a committed *baseline* payload.

    Returns a list of human-readable failures (empty = pass).  Only the
    machine-relative guard ratios are gated — absolute ops/s depend on
    the runner and would flake.  A committed ``parallel_speedup_jobsN``
    guard is skipped (not failed) when the machine running the check
    has fewer than N usable cores: the floor is meaningful only where
    N workers can actually run in parallel, and multi-core CI is the
    enforcement point.
    """
    failures = []
    cpus = report.get("results", {}).get("parallel_cpus", default_jobs())
    for name, recorded in baseline.get("guards", {}).items():
        measured = report["guards"].get(name)
        if measured is None:
            if name.startswith("parallel_speedup_jobs"):
                suffix = name[len("parallel_speedup_jobs"):]
                if suffix.isdigit() and cpus < int(suffix):
                    continue
            failures.append(f"guard {name!r} missing from this run")
            continue
        floor = recorded * (1.0 - max_regression)
        if measured < floor:
            failures.append(
                f"guard {name!r} regressed: measured {measured:.2f} < "
                f"{floor:.2f} (committed {recorded:.2f} - {max_regression:.0%})"
            )
    if not report["results"].get("explorer_ok", True):
        failures.append("explorer reported oracle violations during bench")
    if not report["results"].get("gray_oracles_ok", True):
        failures.append(
            "gray campaign reported oracle violations during bench"
        )
    if not report["results"].get("frontier_didona_ok", True):
        failures.append(
            "frontier: a coordinated protocol's mean commit latency fell "
            "below the one-round-trip floor (measurement is broken)"
        )
    if report["results"].get("frontier_settled") is False:
        failures.append("frontier: a protocol failed to settle after repair")
    if report["results"].get("frontier_failed_trials"):
        failures.append(
            f"frontier: {report['results']['frontier_failed_trials']} "
            "trial(s) produced no result"
        )
    if report["results"].get("parallel_bitwise_identical") is False:
        failures.append(
            "parallel campaign results diverged from the serial path"
        )
    return failures


def render_report(report: Dict[str, Any]) -> str:
    """A short human-readable summary of a benchmark payload."""
    results = report["results"]
    guards = report["guards"]
    baseline = report.get("pre_pr_baseline", {})
    lines = [
        f"perf benchmarks ({report['mode']} mode)",
        f"  condition ops/s:    {results['condition_ops_per_s']:>12,.1f}"
        f"  (pre-PR {baseline.get('condition_ops_per_s', 0):,.1f})",
        f"  polyvalue ops/s:    {results['polyvalue_ops_per_s']:>12,.1f}"
        f"  (pre-PR {baseline.get('polyvalue_ops_per_s', 0):,.1f})",
        f"  explorer sched/s:   {results['explorer_schedules_per_s']:>12,.1f}"
        f"  ({results['explorer_schedules']} schedules, "
        f"ok={results['explorer_ok']})",
        f"  table2 wall:        {results['table2_wall_s']:>12.3f}s",
        f"  cache speedup:      {guards['condition_cache_speedup']:>12.2f}x",
        f"  fast-path speedup:  {guards['polyvalue_fastpath_speedup']:>12.2f}x",
    ]
    if "adaptive_spurious_reduction" in guards:
        lines += [
            f"  spurious installs:  "
            f"{results['gray_spurious_installs_fixed']:>8} fixed / "
            f"{results['gray_spurious_installs_adaptive']} adaptive "
            f"({guards['adaptive_spurious_reduction']:.1f}x reduction, "
            f"oracles ok={results['gray_oracles_ok']})",
            f"  outage detection:   "
            f"{results['outage_detection_fixed_s']:>8.3f}s fixed / "
            f"{results['outage_detection_adaptive_s']:.3f}s adaptive "
            f"(parity {guards['outage_detection_parity']:.2f})",
            f"  retransmissions:    "
            f"{results['outage_retransmissions_flat']:>8} flat / "
            f"{results['outage_retransmissions_backoff']} backoff "
            f"({guards['retransmission_reduction']:.1f}x reduction)",
        ]
    if "frontier_schedules_per_protocol" in results:
        lines.append(
            f"  frontier:           "
            f"{results['frontier_schedules_per_protocol']:>8} schedules x "
            f"4 protocols (didona ok={results['frontier_didona_ok']})"
        )
        for name in ("polyvalue", "blocking", "paxos", "pathsensitive"):
            availability = guards.get(f"frontier_availability_{name}")
            mean_ms = results.get(f"frontier_{name}_mean_latency_ms")
            msgs = results.get(f"frontier_{name}_msgs_per_commit")
            if availability is None:
                continue
            lines.append(
                f"    {name:<14} avail={availability:.3f} "
                f"mean={mean_ms:.2f}ms msg/commit={msgs:.2f}"
            )
        advantage = guards.get("frontier_path_message_advantage")
        if advantage is not None:
            lines.append(
                f"    path message advantage: {advantage:.1f}x fewer "
                "sends per commit than polyvalue"
            )
    if "parallel_cpus" in results:
        levels = ", ".join(
            f"jobs={level} {results[key]:.2f}/s"
            for level in SCALING_JOBS_LEVELS
            if (key := f"campaign_jobs{level}_per_s") in results
        )
        lines.append(
            f"  campaign scaling:   {levels} "
            f"({results['parallel_cpus']} cpus, bitwise "
            f"identical={results['parallel_bitwise_identical']})"
        )
        for level in SCALING_JOBS_LEVELS:
            guard = guards.get(f"parallel_speedup_jobs{level}")
            if guard is not None:
                lines.append(
                    f"  speedup @ jobs={level}:   {guard:>12.2f}x"
                )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write *report* as stable, diff-friendly JSON."""
    write_json(report, path)
