"""Performance benchmarks for the hot paths (``python -m repro bench``).

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; this module gives every PR a measured trajectory to move.  It
times the four hot paths the performance layer optimises:

* **condition ops** — the ``&``/``|``/``~``/``substitute`` algebra of
  :mod:`repro.core.conditions` (interned + memoized);
* **polyvalue reads** — :func:`~repro.core.polyvalue.combine`,
  :meth:`~repro.core.polyvalue.Polyvalue.reduce` and
  :meth:`~repro.core.polyvalue.Polyvalue.in_doubt` (single-pair fast
  paths);
* **explorer throughput** — schedules/second of the correctness
  harness's deterministic explorer (indexed event heap);
* **Table-2 wall time** — the end-to-end Monte-Carlo simulation of the
  paper's section 4.2.

Besides raw ops/s — which vary with the machine — the report includes
two *machine-relative guards*, each the ratio of the optimised path to
the same workload with the optimisation disabled in-process:

* ``condition_cache_speedup`` — condition ops with the memoization
  caches configured normally vs :func:`configure_caches(0) <repro.core.\
conditions.configure_caches>`;
* ``polyvalue_fastpath_speedup`` — ``Polyvalue.in_doubt`` (which skips
  truth-table validation for two simple values) vs the full validating
  constructor on the same inputs.

CI compares the guards against the committed ``BENCH_perf.json`` and
fails on a >25% relative regression; ratios transfer across runner
speeds where absolute ops/s do not.  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Optional

from repro.core import conditions
from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue, combine

#: Seconds each microbenchmark loop runs for (after one warmup call).
FULL_MIN_TIME = 0.4
SMOKE_MIN_TIME = 0.05

#: Explorer seed budget in full mode — matches ``BENCH_check.json`` so
#: the schedules/s figures are directly comparable.
FULL_EXPLORER_SEEDS = 25
SMOKE_EXPLORER_SEEDS = 5

#: Simulated seconds per Table-2 row (full mode mirrors the pre-PR
#: baseline measurement recorded in ``BENCH_perf.json``).
FULL_TABLE2_DURATION = 2000.0
#: Shortest duration every Table-2 row accepts (4/R with R = 0.01).
SMOKE_TABLE2_DURATION = 400.0


def _ops_per_second(fn: Callable[[], None], min_time: float) -> float:
    """Iterations/second of *fn*: one warmup call, then a timed loop."""
    fn()
    count = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_time:
        fn()
        count += 1
    return count / (time.perf_counter() - start)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

_TXNS = tuple(f"T{i}" for i in range(6))


def _condition_ops() -> None:
    """Repeated ``&``, ``|``, ``~`` and substitution over a small space.

    This workload (including its exact fold order) is frozen: the
    ``pre_pr_baseline`` numbers in ``BENCH_perf.json`` were measured
    with it, so changing it would invalidate the trajectory.
    """
    conds = [Condition.of(t) for t in _TXNS]
    c = Condition.true()
    for i, _ in enumerate(_TXNS):
        c = (c & conds[i]) | ~conds[(i + 1) % len(_TXNS)]
    c.substitute({"T0": True, "T1": False})
    c.variables()
    c.is_satisfiable()
    (conds[0] & ~conds[1]) | (conds[2] & conds[3])


def _polyvalue_reads() -> None:
    """Lifted reads against a two-alternative polyvalue (also frozen)."""
    pv = Polyvalue([(100, Condition.of("T1")), (150, Condition.not_of("T1"))])
    for _ in range(10):
        combine(lambda a, b: a + b, pv, 5)
        pv.reduce({"T1": True})
        Polyvalue.in_doubt("T2", 7, 7)
        Polyvalue.in_doubt("T3", 7, 9)


def _in_doubt_fast() -> None:
    for _ in range(10):
        Polyvalue.in_doubt("T2", 7, 9)


def _in_doubt_validating() -> None:
    # What ``in_doubt`` computes without its fast path: the validating
    # constructor (truth-table completeness/disjointness) plus collapse.
    for _ in range(10):
        Polyvalue(
            [(7, Condition.of("T2")), (9, Condition.not_of("T2"))]
        ).collapse()


# ----------------------------------------------------------------------
# Benchmark suite
# ----------------------------------------------------------------------


def bench_condition_ops(min_time: float = FULL_MIN_TIME) -> float:
    """Condition-algebra ops/s with the caches as currently configured."""
    return _ops_per_second(_condition_ops, min_time)


def bench_polyvalue_reads(min_time: float = FULL_MIN_TIME) -> float:
    """Polyvalue read-path ops/s."""
    return _ops_per_second(_polyvalue_reads, min_time)


def bench_condition_cache_speedup(min_time: float = FULL_MIN_TIME) -> float:
    """Cached vs uncached condition ops on this machine (ratio > 1)."""
    cached = _ops_per_second(_condition_ops, min_time)
    conditions.configure_caches(0)
    try:
        uncached = _ops_per_second(_condition_ops, min_time)
    finally:
        conditions.configure_caches()
    return cached / uncached


def bench_polyvalue_fastpath_speedup(min_time: float = FULL_MIN_TIME) -> float:
    """``in_doubt`` fast path vs the full validating constructor."""
    fast = _ops_per_second(_in_doubt_fast, min_time)
    slow = _ops_per_second(_in_doubt_validating, min_time)
    return fast / slow


def bench_explorer(
    seeds: int = FULL_EXPLORER_SEEDS, first: int = 0
) -> Dict[str, Any]:
    """Schedules/second of the deterministic explorer (oracles on)."""
    from repro.check.explorer import explore

    report = explore(seeds=range(first, first + seeds), include_enumeration=True)
    return {
        "schedules": report.schedules_run,
        "schedules_per_s": report.schedules_per_second,
        "ok": report.ok,
    }


def bench_table2(duration: float = FULL_TABLE2_DURATION) -> float:
    """Wall seconds to run every Table-2 row for *duration* sim-seconds."""
    from repro.analysis.model import table2_rows
    from repro.analysis.montecarlo import simulate

    start = time.perf_counter()
    for index, row in enumerate(table2_rows()):
        simulate(row.params, duration=duration, seed=index)
    return time.perf_counter() - start


#: The pre-PR measurements this performance layer is judged against,
#: taken on the development machine immediately before the layer was
#: introduced, with the exact workloads above.
PRE_PR_BASELINE: Dict[str, float] = {
    "condition_ops_per_s": 2627.1,
    "polyvalue_ops_per_s": 381.0,
    "explorer_schedules_per_s": 723.4,
    "table2_wall_s": 0.81,
}


def run_benchmarks(
    *,
    smoke: bool = False,
    explorer_seeds: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run the full perf suite and return the ``BENCH_perf.json`` payload.

    ``smoke=True`` shrinks every budget (CI-friendly: a few seconds
    total); absolute numbers then undershoot full mode, but the guard
    ratios remain meaningful.  *seed* is the first explorer seed
    (mirroring ``repro check --seed``); the microbenchmarks are
    deterministic modulo timing.
    """
    min_time = SMOKE_MIN_TIME if smoke else FULL_MIN_TIME
    if explorer_seeds is None:
        explorer_seeds = SMOKE_EXPLORER_SEEDS if smoke else FULL_EXPLORER_SEEDS
    duration = SMOKE_TABLE2_DURATION if smoke else FULL_TABLE2_DURATION

    explorer = bench_explorer(seeds=explorer_seeds, first=seed)
    results: Dict[str, Any] = {
        "condition_ops_per_s": round(bench_condition_ops(min_time), 1),
        "polyvalue_ops_per_s": round(bench_polyvalue_reads(min_time), 1),
        "explorer_schedules": explorer["schedules"],
        "explorer_schedules_per_s": round(explorer["schedules_per_s"], 1),
        "explorer_ok": explorer["ok"],
        "table2_wall_s": round(bench_table2(duration), 3),
    }
    guards = {
        "condition_cache_speedup": round(
            bench_condition_cache_speedup(min_time), 2
        ),
        "polyvalue_fastpath_speedup": round(
            bench_polyvalue_fastpath_speedup(min_time), 2
        ),
    }
    return {
        "schema": 1,
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "budgets": {
            "microbench_min_time_s": min_time,
            "explorer_seeds": explorer_seeds,
            "table2_duration_s": duration,
        },
        "pre_pr_baseline": dict(PRE_PR_BASELINE),
        "results": results,
        "guards": guards,
    }


def check_regression(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    max_regression: float = 0.25,
) -> list:
    """Compare *report* guards against a committed *baseline* payload.

    Returns a list of human-readable failures (empty = pass).  Only the
    machine-relative guard ratios are gated — absolute ops/s depend on
    the runner and would flake.
    """
    failures = []
    for name, recorded in baseline.get("guards", {}).items():
        measured = report["guards"].get(name)
        if measured is None:
            failures.append(f"guard {name!r} missing from this run")
            continue
        floor = recorded * (1.0 - max_regression)
        if measured < floor:
            failures.append(
                f"guard {name!r} regressed: measured {measured:.2f} < "
                f"{floor:.2f} (committed {recorded:.2f} - {max_regression:.0%})"
            )
    if not report["results"].get("explorer_ok", True):
        failures.append("explorer reported oracle violations during bench")
    return failures


def render_report(report: Dict[str, Any]) -> str:
    """A short human-readable summary of a benchmark payload."""
    results = report["results"]
    guards = report["guards"]
    baseline = report.get("pre_pr_baseline", {})
    lines = [
        f"perf benchmarks ({report['mode']} mode)",
        f"  condition ops/s:    {results['condition_ops_per_s']:>12,.1f}"
        f"  (pre-PR {baseline.get('condition_ops_per_s', 0):,.1f})",
        f"  polyvalue ops/s:    {results['polyvalue_ops_per_s']:>12,.1f}"
        f"  (pre-PR {baseline.get('polyvalue_ops_per_s', 0):,.1f})",
        f"  explorer sched/s:   {results['explorer_schedules_per_s']:>12,.1f}"
        f"  ({results['explorer_schedules']} schedules, "
        f"ok={results['explorer_ok']})",
        f"  table2 wall:        {results['table2_wall_s']:>12.3f}s",
        f"  cache speedup:      {guards['condition_cache_speedup']:>12.2f}x",
        f"  fast-path speedup:  {guards['polyvalue_fastpath_speedup']:>12.2f}x",
    ]
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write *report* as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
