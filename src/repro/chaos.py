"""The chaos campaign: every fault class at once, judged by the oracles.

Where ``python -m repro check`` explores *fail-stop* schedules (crash /
recover / partition / heal) over a perfect network, the chaos campaign
layers the full gray-failure model on top:

* **ambient unreliability** — every message is subject to seeded loss,
  duplication and checksum-detected corruption for the whole run;
* **gray failures** — seeded walks that degrade whole sites, spike
  individual directed links, and cut links one way only
  (:class:`~repro.net.failures.FailureAction`'s extended vocabulary);
* **fail-stop failures** — the classic crash/recover/partition/heal
  actions, interleaved with the gray ones;
* **resilience configuration** — the campaign runs the protocol with
  the adaptive :class:`~repro.txn.timeouts.TimeoutPolicy` (and
  optionally a polyvalue budget) so the resilience layer itself is
  inside the tested loop, not just the failure injectors.

Every run is still a pure function of ``(scenario, seed, schedule,
profile)``: a violating run writes a JSON artifact embedding all four,
and :func:`replay_chaos` re-executes it bit-for-bit.

Command line: ``python -m repro chaos`` (see ``docs/faults.md``).
"""

from __future__ import annotations

import functools
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.net.failures import FailureAction
from repro.obs.events import EventBus
from repro.parallel.artifacts import write_violation_artifact
from repro.parallel.pool import run_trials
from repro.parallel.seeds import trial_seeds
from repro.sim.rand import Rng
from repro.txn.config import (
    PROTOCOL_NAMES,
    ProtocolConfig,
    config_for_protocol,
)
from repro.txn.system import DistributedSystem
from repro.txn.timeouts import TimeoutPolicy
from repro.check.explorer import (
    WALK_DELTAS,
    ExplorationResult,
    Schedule,
    Violation,
    reduce_exploration,
)
from repro.check.explorer import run_schedule as _run_schedule
from repro.check.scenarios import SCENARIOS, build_scenario

#: Scenario subset used by ``--smoke`` (CI): the 2- and 3-site scopes
#: where protocol bugs first appear, skipping the slowest scenario.
SMOKE_SCENARIOS: Tuple[str, ...] = ("pair", "transfers")


@dataclass(frozen=True)
class ChaosProfile:
    """Ambient unreliability plus the resilience configuration under test.

    The profile is half of a campaign's identity (the other half being
    the per-run ``(scenario, seed, schedule)`` triple): identical
    profiles replay identical runs, so the profile is embedded in every
    violation artifact.
    """

    #: Per-message loss probability on every link, all run long.
    loss_probability: float = 0.02
    #: Per-message probability of checksum-detected corruption (the
    #: receiver discards; shows up as the ``drop:corrupt`` stat).
    corruption_probability: float = 0.01
    #: Per-message duplication probability.
    duplicate_probability: float = 0.02
    #: Latency multiplier a ``degrade`` action applies to a whole site.
    degrade_factor: float = 5.0
    #: Latency multiplier a ``link-spike`` action applies to one
    #: directed link.
    spike_factor: float = 10.0
    #: Run the protocol with adaptive (RTT-tracking) timeouts; False
    #: pins the fixed-timeout baseline.
    adaptive: bool = True
    #: Optional per-site polyvalue budget (the section 6 overload
    #: valve); None leaves degradation-under-overload off.
    polyvalue_budget: Optional[int] = None
    #: Which commit protocol the campaign stresses (a
    #: :data:`repro.txn.runtime.PROTOCOL_NAMES` entry) — the bake-off
    #: peers run under the identical fault surface as the paper's
    #: mechanism.
    protocol: str = "polyvalue"

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise SimulationError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {PROTOCOL_NAMES}"
            )
        for name in (
            "loss_probability",
            "corruption_probability",
            "duplicate_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    f"{name} must be within [0, 1], got {value}"
                )
        for name in ("degrade_factor", "spike_factor"):
            value = getattr(self, name)
            if value < 1.0:
                raise SimulationError(
                    f"{name} must be >= 1 (a latency multiplier), "
                    f"got {value}"
                )

    def protocol_config(self) -> ProtocolConfig:
        """The protocol configuration this profile runs under.

        Adaptive mode is the full resilient stack: RTT-tracking
        timeouts plus two section 6 wait-phase query probes (the
        adaptive RTO is small enough that three probes still fit the
        fixed policy's outage-detection budget).  Fixed mode is the
        exact historical configuration.
        """
        base = ProtocolConfig(
            timeout_policy=TimeoutPolicy(
                mode="adaptive" if self.adaptive else "fixed"
            ),
            wait_query_retries=2 if self.adaptive else 0,
            polyvalue_budget=self.polyvalue_budget,
        )
        return config_for_protocol(self.protocol, base=base)

    def network_kwargs(self) -> Dict[str, float]:
        """The ambient-unreliability keywords for the system builder."""
        return {
            "loss_probability": self.loss_probability,
            "corruption_probability": self.corruption_probability,
            "duplicate_probability": self.duplicate_probability,
        }

    def to_dict(self) -> Dict:
        return {
            "loss_probability": self.loss_probability,
            "corruption_probability": self.corruption_probability,
            "duplicate_probability": self.duplicate_probability,
            "degrade_factor": self.degrade_factor,
            "spike_factor": self.spike_factor,
            "adaptive": self.adaptive,
            "polyvalue_budget": self.polyvalue_budget,
            "protocol": self.protocol,
        }

    @staticmethod
    def from_dict(data: Dict) -> "ChaosProfile":
        budget = data.get("polyvalue_budget")
        return ChaosProfile(
            loss_probability=float(data.get("loss_probability", 0.02)),
            corruption_probability=float(
                data.get("corruption_probability", 0.01)
            ),
            duplicate_probability=float(
                data.get("duplicate_probability", 0.02)
            ),
            degrade_factor=float(data.get("degrade_factor", 5.0)),
            spike_factor=float(data.get("spike_factor", 10.0)),
            adaptive=bool(data.get("adaptive", True)),
            polyvalue_budget=None if budget is None else int(budget),
            protocol=str(data.get("protocol", "polyvalue")),
        )


def system_factory(
    profile: ChaosProfile,
) -> Callable[[Schedule], DistributedSystem]:
    """A :func:`~repro.check.explorer.run_schedule` system factory that
    builds the schedule's scenario over *profile*'s lossy network with
    *profile*'s resilience configuration."""

    def factory(schedule: Schedule) -> DistributedSystem:
        return build_scenario(
            schedule.scenario,
            schedule.seed,
            config=profile.protocol_config(),
            network=profile.network_kwargs(),
        )

    return factory


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------


def chaos_walk(
    scenario: str,
    seed: int,
    *,
    profile: Optional[ChaosProfile] = None,
    steps: int = 14,
) -> Schedule:
    """One seeded walk over the FULL failure vocabulary (symbolically).

    Like :func:`~repro.check.explorer.random_walk`, but each step may
    also gray-degrade a site, spike or cut a single directed link, or
    undo any of those.  State tracking keeps actions sensible (no
    double-degrade, at least one site up); finalisation during the run
    repairs whatever the walk left broken.
    """
    if scenario not in SCENARIOS:
        raise SimulationError(f"unknown scenario {scenario!r}")
    profile = profile or ChaosProfile()
    rng = Rng(seed).fork(f"chaos:{scenario}")
    sites = [f"site-{index}" for index in range(SCENARIOS[scenario].sites)]
    links = [
        (a, b) for a, b in itertools.permutations(sites, 2)
    ]
    down: set = set()
    partitions: set = set()
    degraded: set = set()
    spiked: set = set()
    oneway: set = set()
    now = 0.0
    actions: List[FailureAction] = []
    for _ in range(steps):
        now += rng.choice(WALK_DELTAS)
        now = round(now, 6)
        candidates: List[Tuple[str, Tuple[str, ...], float]] = [
            ("none", (), 0.0)
        ]
        for site in sites:
            if site in down:
                candidates.append(("recover", (site,), 0.0))
            elif len(down) < len(sites) - 1:
                candidates.append(("crash", (site,), 0.0))
            if site in degraded:
                candidates.append(("restore", (site,), 0.0))
            else:
                candidates.append(
                    ("degrade", (site,), profile.degrade_factor)
                )
        for a, b in itertools.combinations(sites, 2):
            pair = frozenset((a, b))
            if pair in partitions:
                candidates.append(("heal", (a, b), 0.0))
            else:
                candidates.append(("partition", (a, b), 0.0))
        for link in links:
            if link in spiked:
                candidates.append(("link-clear", link, 0.0))
            else:
                candidates.append(
                    ("link-spike", link, profile.spike_factor)
                )
            if link in oneway:
                candidates.append(("heal-oneway", link, 0.0))
            else:
                candidates.append(("partition-oneway", link, 0.0))
        kind, targets, value = rng.choice(candidates)
        if kind == "none":
            continue
        if kind == "crash":
            down.add(targets[0])
        elif kind == "recover":
            down.discard(targets[0])
        elif kind == "partition":
            partitions.add(frozenset(targets))
        elif kind == "heal":
            partitions.discard(frozenset(targets))
        elif kind == "degrade":
            degraded.add(targets[0])
        elif kind == "restore":
            degraded.discard(targets[0])
        elif kind == "link-spike":
            spiked.add(targets)
        elif kind == "link-clear":
            spiked.discard(targets)
        elif kind == "partition-oneway":
            oneway.add(targets)
        elif kind == "heal-oneway":
            oneway.discard(targets)
        actions.append(
            FailureAction(at=now, kind=kind, targets=targets, value=value)
        )
    horizon = max(4.5, now + 0.25)
    return Schedule(
        scenario=scenario,
        seed=seed,
        actions=tuple(actions),
        horizon=round(horizon, 6),
        # Stamp non-default protocols into the schedule so artifacts
        # are self-describing; the default keeps the historical
        # fingerprints (and the walk itself is protocol-independent).
        protocol=None if profile.protocol == "polyvalue" else profile.protocol,
        label=f"chaos:{scenario}:{seed}",
    )


# ----------------------------------------------------------------------
# Campaign execution
# ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Aggregate of one chaos campaign."""

    profile: ChaosProfile
    results: List[ExplorationResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Trials that produced no result at all (worker process died);
    #: one human-readable line each.  Distinct from oracle violations.
    failed_trials: List[str] = field(default_factory=list)

    @property
    def schedules_run(self) -> int:
        return len(self.results)

    @property
    def violations(self) -> List[Violation]:
        return [v for result in self.results for v in result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failed_trials

    def total_stats(self) -> Dict[str, int]:
        """Summed fault-injection evidence across the campaign's runs."""
        totals = {
            "gray_actions": 0,
            "failstop_actions": 0,
            "events": 0,
        }
        gray_kinds = {
            "degrade",
            "restore",
            "link-spike",
            "link-clear",
            "partition-oneway",
            "heal-oneway",
        }
        for result in self.results:
            totals["events"] += result.events_processed
            for action in result.schedule.actions:
                bucket = (
                    "gray_actions"
                    if action.kind in gray_kinds
                    else "failstop_actions"
                )
                totals[bucket] += 1
        return totals

    def summary_lines(self) -> List[str]:
        totals = self.total_stats()
        mode = "adaptive" if self.profile.adaptive else "fixed"
        lines = [
            f"{self.schedules_run} chaos schedules in "
            f"{self.wall_seconds:.2f}s wall "
            f"({totals['gray_actions']} gray + "
            f"{totals['failstop_actions']} fail-stop actions, "
            f"{totals['events']} events, {mode} timeouts, "
            f"protocol={self.profile.protocol}, "
            f"loss={self.profile.loss_probability:g} "
            f"corrupt={self.profile.corruption_probability:g})",
        ]
        if self.failed_trials:
            lines.append(
                f"{len(self.failed_trials)} FAILED TRIAL(S) "
                "(no result produced):"
            )
            lines.extend(f"  {entry}" for entry in self.failed_trials)
        if self.ok:
            lines.append("all oracles passed on every schedule")
        elif self.violations:
            lines.append(f"{len(self.violations)} ORACLE VIOLATION(S):")
            for result in self.results:
                for violation in result.violations:
                    where = result.artifact_path or result.schedule.label
                    lines.append(f"  {where}: {violation}")
        return lines


def _write_chaos_artifact(
    schedule: Schedule,
    profile: ChaosProfile,
    violations: List[Violation],
    artifact_dir: str,
) -> str:
    return write_violation_artifact(
        schedule,
        violations,
        artifact_dir,
        prefix="chaos",
        extra={"profile": profile.to_dict()},
    )


def run_chaos_schedule(
    schedule: Schedule,
    profile: ChaosProfile,
    *,
    artifact_dir: Optional[str] = None,
) -> ExplorationResult:
    """Execute one chaos schedule under *profile* and judge it."""
    result = _run_schedule(
        schedule, system_factory=system_factory(profile)
    )
    if result.violations and artifact_dir is not None:
        result.artifact_path = _write_chaos_artifact(
            schedule, profile, result.violations, artifact_dir
        )
    return result


def replay_chaos(artifact_path: str) -> ExplorationResult:
    """Re-execute the run stored in a chaos violation artifact.

    The artifact embeds both the schedule and the profile, so the same
    ambient unreliability, gray actions and resilience configuration
    are reconstructed; the recorded violation either reappears
    identically or was produced by a since-fixed build.
    """
    with open(artifact_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schedule = Schedule.from_dict(data)
    profile = ChaosProfile.from_dict(data.get("profile", {}))
    return run_chaos_schedule(schedule, profile)


def _chaos_trial(profile: ChaosProfile, schedule: Schedule):
    """The engine worker: one chaos schedule under *profile*.

    No artifact I/O in the worker — the reduce step writes artifacts in
    the parent so the file set is identical whatever the worker count.
    """
    return _run_schedule(schedule, system_factory=system_factory(profile))


def run_campaign(
    *,
    profile: Optional[ChaosProfile] = None,
    scenarios: Optional[Sequence[str]] = None,
    seeds: Optional[Iterable[int]] = None,
    campaign_seed: int = 0,
    trials: int = 10,
    steps: int = 14,
    smoke: bool = False,
    artifact_dir: Optional[str] = None,
    jobs: Optional[int] = 1,
    bus: Optional[EventBus] = None,
) -> ChaosReport:
    """Run the chaos campaign: one :func:`chaos_walk` per (scenario, seed).

    Walk seeds come from the shared campaign derivation
    (:func:`repro.parallel.seeds.trial_seed` over
    ``(campaign_seed, 0..trials)``); pass *seeds* explicitly to pin
    exact walk seeds instead.  ``smoke=True`` trims to the
    :data:`SMOKE_SCENARIOS` subset and shorter walks — the CI budget.
    Explicit *scenarios*/*steps* override the smoke defaults.

    *jobs* selects the campaign engine's worker count (``1`` = the
    serial in-process path, ``None`` = every core); per-seed results
    are bit-identical for every value.  *bus* receives streamed
    ``campaign.*`` progress events.
    """
    profile = profile or ChaosProfile()
    if scenarios is None:
        scenarios = SMOKE_SCENARIOS if smoke else tuple(SCENARIOS)
    if smoke:
        steps = min(steps, 10)
    if seeds is None:
        seeds = trial_seeds(campaign_seed, trials)
    schedules = [
        chaos_walk(scenario, seed, profile=profile, steps=steps)
        for seed in seeds
        for scenario in scenarios
    ]
    report = ChaosReport(profile=profile)
    started = time.perf_counter()
    outcome = run_trials(
        functools.partial(_chaos_trial, profile),
        schedules,
        jobs=jobs,
        bus=bus,
        label="chaos",
    )
    report.results, report.failed_trials = reduce_exploration(
        schedules,
        outcome,
        artifact_dir=artifact_dir,
        artifact_prefix="chaos",
        artifact_extra={"profile": profile.to_dict()},
    )
    report.wall_seconds = time.perf_counter() - started
    return report
