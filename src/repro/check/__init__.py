"""repro.check — the correctness harness for the polyvalue protocol.

The paper's central claims are *global* properties of the whole
distributed database, not of any single module:

* the ``<value, condition>`` sets of every polyvalue stay complete and
  disjoint (section 3);
* substituting any single assignment of outcomes yields exactly one
  simple value per item;
* committed effects are equivalent to a serial execution (no lost
  updates, even across section 3.3 forwarding chains);
* polyvalued items stay unlocked — availability is never sacrificed;
* once every failure recovers, the database converges: zero polyvalues,
  empty bookkeeping, no undecided transactions.

This package makes those claims machine-checkable:

* :mod:`repro.check.oracles` — the invariant oracle library, evaluated
  against a live :class:`~repro.txn.system.DistributedSystem`;
* :mod:`repro.check.scenarios` — small seeded workloads the explorer
  drives;
* :mod:`repro.check.explorer` — the deterministic schedule explorer:
  seed-enumerated random walks over crash/recovery/partition
  interleavings plus systematic small-scope enumeration, checking every
  oracle at each quiescent point and emitting a replayable
  ``(seed, schedule)`` artifact on violation;
* :mod:`repro.check.mutation` — the mutation smoke test that arms a
  deliberately-wrong wait-phase branch and proves the oracles notice.

Command line: ``python -m repro check`` (see ``docs/testing.md``).
"""

from repro.check.explorer import (
    ExplorationResult,
    ExplorerReport,
    Schedule,
    Violation,
    enumerate_small_scope,
    explore,
    load_artifact,
    random_walk,
    replay,
    run_schedule,
)
from repro.check.mutation import FAULTS, MutationReport, run_mutation_smoke
from repro.check.oracles import (
    ALL_ORACLES,
    CONVERGENCE_ORACLES,
    QUIESCENT_ORACLES,
    CheckContext,
    Verdict,
    check_converged,
    check_quiescent,
    failed,
)

__all__ = [
    "ALL_ORACLES",
    "CONVERGENCE_ORACLES",
    "QUIESCENT_ORACLES",
    "CheckContext",
    "ExplorationResult",
    "ExplorerReport",
    "FAULTS",
    "MutationReport",
    "Schedule",
    "Verdict",
    "Violation",
    "check_converged",
    "check_quiescent",
    "enumerate_small_scope",
    "explore",
    "failed",
    "load_artifact",
    "random_walk",
    "replay",
    "run_mutation_smoke",
    "run_schedule",
]
