"""The deterministic schedule explorer.

The protocol's bugs live in rare interleavings of message delivery,
crashes and recoveries — exactly the class of behaviour hand-written
scenarios miss.  The explorer drives a seeded
:class:`~repro.txn.system.DistributedSystem` through many failure
schedules and evaluates the :mod:`repro.check.oracles` catalogue at
every quiescent point along the way, plus the convergence oracles after
a final recover-everything settle phase.

Two schedule sources:

* :func:`random_walk` — a seed-enumerated walk: at each step, advance
  virtual time by a seeded amount and apply a seeded choice of crash /
  recover / partition / heal (or nothing).  Different seeds shift every
  message-delivery jitter draw *and* the failure instants, so each seed
  is a genuinely different interleaving.
* :func:`enumerate_small_scope` — systematic enumeration over the 2- and
  3-site scenarios: every site crashed at every protocol-phase boundary
  for short and long outages, and every site pair partitioned across
  the commit window.  Small scopes are exhaustively checkable and are
  where protocol bugs overwhelmingly first appear.

Every run is a pure function of ``(scenario, seed, schedule)``; a run
that violates an oracle writes that triple to a JSON artifact which
:func:`replay` re-executes bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.net.failures import FailureAction, ScheduleScript
from repro.obs.events import EventBus
from repro.parallel.artifacts import (
    fingerprint as artifact_fingerprint,
    write_violation_artifact,
)
from repro.parallel.pool import run_trials
from repro.parallel.seeds import trial_seeds
from repro.sim.rand import Rng
from repro.txn.config import ProtocolConfig, config_for_protocol
from repro.check.oracles import (
    CheckContext,
    Verdict,
    check_converged,
    check_quiescent,
    failed,
)
from repro.check.scenarios import SCENARIOS, build_scenario

#: Time-step menu for random walks: spans sub-latency nudges (to land
#: inside read/stage/wait windows of the default 10-15 ms links) up to
#: full maintenance periods.
WALK_DELTAS: Tuple[float, ...] = (
    0.004, 0.008, 0.015, 0.03, 0.06, 0.12, 0.25, 0.5, 1.0,
)

#: Crash instants for small-scope enumeration, chosen to bracket the
#: default-timing protocol phases of the scenarios' first transfer:
#: reads in flight (~5-15 ms), staging (~30-45 ms), wait phase
#: (~45-60 ms), decided (~60 ms+), and steady state.
PHASE_GRID: Tuple[float, ...] = (0.005, 0.015, 0.03, 0.045, 0.06, 0.2)

#: Outage lengths: shorter than the wait timeout (transient blip) and
#: much longer (a real outage that forces polyvalue installation).
OUTAGE_DURATIONS: Tuple[float, ...] = (0.3, 2.5)


@dataclass(frozen=True)
class Schedule:
    """One deterministic exploration input: scenario + seed + actions."""

    scenario: str
    seed: int
    actions: Tuple[FailureAction, ...]
    #: When the scenario's traffic is over and finalisation may begin.
    horizon: float = 4.5
    #: Armed protocol fault (mutation smoke test only; None normally).
    #: Plain names arm ``wait_phase_fault``; the ``paxos:``/``path:``
    #: prefixes arm the corresponding protocol's fault hook.
    fault: Optional[str] = None
    #: Which commit protocol to explore (a repro.txn.runtime
    #: PROTOCOL_NAMES entry; None = the default polyvalue system).
    protocol: Optional[str] = None
    label: str = ""

    def fingerprint(self) -> str:
        """A short stable id for artifact file names."""
        return artifact_fingerprint(self.to_dict())

    def to_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon": self.horizon,
            "fault": self.fault,
            "protocol": self.protocol,
            "label": self.label,
            "actions": [
                {
                    "at": action.at,
                    "kind": action.kind,
                    "targets": list(action.targets),
                    "value": action.value,
                }
                for action in self.actions
            ],
        }

    @staticmethod
    def from_dict(data: Dict) -> "Schedule":
        return Schedule(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            horizon=float(data.get("horizon", 4.5)),
            fault=data.get("fault"),
            protocol=data.get("protocol"),
            label=data.get("label", ""),
            actions=tuple(
                FailureAction(
                    at=float(entry["at"]),
                    kind=entry["kind"],
                    targets=tuple(entry["targets"]),
                    value=float(entry.get("value", 0.0)),
                )
                for entry in data["actions"]
            ),
        )


def schedule_config(schedule: Schedule) -> Optional[ProtocolConfig]:
    """The protocol configuration a schedule asks for (None = defaults).

    Fault names are namespaced by protocol: a plain name arms the
    participant's ``wait_phase_fault`` (the original mutation
    catalogue), ``paxos:<name>`` arms ``paxos_fault``, ``path:<name>``
    arms ``path_fault`` — one schedule field round-trips every mutant.
    Returns None when neither a protocol nor a fault is requested, so
    the unconfigured baseline path stays bit-for-bit identical.
    """
    if not schedule.fault and not schedule.protocol:
        return None
    base = ProtocolConfig()
    if schedule.fault:
        if schedule.fault.startswith("paxos:"):
            base = dataclasses.replace(
                base, paxos_fault=schedule.fault.split(":", 1)[1]
            )
        elif schedule.fault.startswith("path:"):
            base = dataclasses.replace(
                base, path_fault=schedule.fault.split(":", 1)[1]
            )
        else:
            base = dataclasses.replace(base, wait_phase_fault=schedule.fault)
    return config_for_protocol(schedule.protocol or "polyvalue", base=base)


@dataclass(frozen=True)
class Violation:
    """One oracle violation, tagged with where in the run it was seen."""

    phase: str
    oracle: str
    details: str

    def __str__(self) -> str:
        return f"{self.phase}: {self.oracle}: {self.details}"


@dataclass
class ExplorationResult:
    """What one schedule run produced."""

    schedule: Schedule
    violations: List[Violation]
    final_verdicts: List[Verdict]
    quiescent_checkpoints: int
    events_processed: int
    converged: bool
    artifact_path: Optional[str] = None
    #: Headline numbers of the run's metrics collector (committed,
    #: aborted, polyvalue counts, ...) — deterministic per (scenario,
    #: seed, schedule), so they survive the worker boundary intact.
    stats: Dict[str, float] = field(default_factory=dict)
    #: The run's in-doubt window distribution as non-cumulative
    #: (upper-bound, count) pairs, ready for
    #: :meth:`~repro.obs.store.CampaignStore.record_histogram`.
    in_doubt_hist: List[Tuple[float, int]] = field(default_factory=list)
    #: Position in the campaign's task list (set by the reduce step);
    #: the key the store's trial rows are written under.
    task_index: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ExplorerReport:
    """Aggregate of an exploration batch."""

    results: List[ExplorationResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Trials that produced no result at all (worker process died);
    #: one human-readable line each.  Distinct from oracle violations.
    failed_trials: List[str] = field(default_factory=list)

    @property
    def schedules_run(self) -> int:
        return len(self.results)

    @property
    def violations(self) -> List[Violation]:
        return [v for result in self.results for v in result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failed_trials

    @property
    def schedules_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.schedules_run / self.wall_seconds

    def summary_lines(self) -> List[str]:
        checkpoints = sum(r.quiescent_checkpoints for r in self.results)
        lines = [
            f"{self.schedules_run} schedules explored in "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.schedules_per_second:.1f} schedules/s), "
            f"{checkpoints} quiescent checkpoints",
        ]
        if self.failed_trials:
            lines.append(
                f"{len(self.failed_trials)} FAILED TRIAL(S) "
                "(no result produced):"
            )
            lines.extend(f"  {entry}" for entry in self.failed_trials)
        if self.ok:
            lines.append("all oracles passed on every schedule")
        elif self.violations:
            lines.append(f"{len(self.violations)} ORACLE VIOLATION(S):")
            for result in self.results:
                for violation in result.violations:
                    where = result.artifact_path or (
                        f"{result.schedule.scenario} seed="
                        f"{result.schedule.seed}"
                    )
                    lines.append(f"  {where}: {violation}")
        return lines


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------


def _site_ids(scenario: str) -> List[str]:
    return [f"site-{index}" for index in range(SCENARIOS[scenario].sites)]


def random_walk(
    scenario: str,
    seed: int,
    *,
    steps: int = 12,
    allow_partitions: bool = True,
) -> Schedule:
    """Generate one seeded random-walk schedule (symbolically — no run).

    The walk tracks which sites are down and which pairs are
    partitioned so generated actions are always sensible, and it
    guarantees nothing stays broken at the end: finalisation during the
    run recovers and heals whatever the walk left outstanding.
    """
    if scenario not in SCENARIOS:
        raise SimulationError(f"unknown scenario {scenario!r}")
    rng = Rng(seed).fork(f"walk:{scenario}")
    sites = _site_ids(scenario)
    down: set = set()
    partitions: set = set()
    now = 0.0
    actions: List[FailureAction] = []
    for _ in range(steps):
        now += rng.choice(WALK_DELTAS)
        now = round(now, 6)
        candidates: List[Tuple[str, Tuple[str, ...]]] = [("none", ())]
        for site in sites:
            if site in down:
                candidates.append(("recover", (site,)))
            elif len(down) < len(sites) - 1:
                # Keep at least one site alive so traffic can flow.
                candidates.append(("crash", (site,)))
        if allow_partitions:
            for a, b in itertools.combinations(sites, 2):
                pair = frozenset((a, b))
                if pair in partitions:
                    candidates.append(("heal", (a, b)))
                else:
                    candidates.append(("partition", (a, b)))
        kind, targets = rng.choice(candidates)
        if kind == "none":
            continue
        if kind == "crash":
            down.add(targets[0])
        elif kind == "recover":
            down.discard(targets[0])
        elif kind == "partition":
            partitions.add(frozenset(targets))
        elif kind == "heal":
            partitions.discard(frozenset(targets))
        actions.append(FailureAction(at=now, kind=kind, targets=targets))
    horizon = max(4.5, now + 0.25)
    return Schedule(
        scenario=scenario,
        seed=seed,
        actions=tuple(actions),
        horizon=round(horizon, 6),
        label=f"walk:{scenario}:{seed}",
    )


def enumerate_small_scope(
    scenarios: Sequence[str] = ("pair", "transfers"),
    *,
    seed: int = 0,
    crash_instants: Sequence[float] = PHASE_GRID,
    durations: Sequence[float] = OUTAGE_DURATIONS,
) -> List[Schedule]:
    """Systematic small-scope schedules over the 2- and 3-site scenarios.

    Every site is crashed at every protocol-phase instant for every
    outage duration, and every site pair is partitioned across the
    commit window.  With the default grids this is a bounded, fast,
    exhaustive-in-the-small sweep (~70 schedules).
    """
    schedules: List[Schedule] = []
    for scenario in scenarios:
        sites = _site_ids(scenario)
        for victim, at, duration in itertools.product(
            sites, crash_instants, durations
        ):
            schedules.append(
                Schedule(
                    scenario=scenario,
                    seed=seed,
                    actions=(
                        FailureAction(at=at, kind="crash", targets=(victim,)),
                        FailureAction(
                            at=round(at + duration, 6),
                            kind="recover",
                            targets=(victim,),
                        ),
                    ),
                    label=(
                        f"scope:{scenario}:crash:{victim}@{at:g}+{duration:g}"
                    ),
                )
            )
        for (a, b), at in itertools.product(
            itertools.combinations(sites, 2), (0.015, 0.045)
        ):
            schedules.append(
                Schedule(
                    scenario=scenario,
                    seed=seed,
                    actions=(
                        FailureAction(at=at, kind="partition", targets=(a, b)),
                        FailureAction(
                            at=round(at + 1.0, 6), kind="heal", targets=(a, b)
                        ),
                    ),
                    label=f"scope:{scenario}:partition:{a}|{b}@{at:g}",
                )
            )
    return schedules


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _write_artifact(
    schedule: Schedule, violations: List[Violation], artifact_dir: str
) -> str:
    return write_violation_artifact(
        schedule, violations, artifact_dir, prefix="violation"
    )


def load_artifact(path: str) -> Schedule:
    """Load the ``(seed, schedule)`` of a violation artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return Schedule.from_dict(json.load(handle))


def run_schedule(
    schedule: Schedule,
    *,
    artifact_dir: Optional[str] = None,
    settle_budget: float = 120.0,
    system_factory: Optional[Callable] = None,
) -> ExplorationResult:
    """Execute one schedule and judge it with the full oracle catalogue.

    The run applies each failure action at its exact virtual time,
    drives the system to quiescence between actions (bounded by the
    next action's time) and evaluates the quiescent-point oracles at
    every such point.  After the last action and the traffic horizon it
    recovers every site, heals every partition, clears every gray
    degradation, settles, and evaluates the convergence oracles.  Any
    violation (or an outright crash of the protocol code) is recorded;
    with *artifact_dir* set, a replayable artifact is written.

    *system_factory* (``schedule -> DistributedSystem``) overrides the
    default scenario construction — the chaos campaign uses it to build
    scenarios over lossy/corrupting networks with resilience configs.
    A factory takes full responsibility for the config (including
    ``schedule.fault``, which the default path arms itself).
    """
    if system_factory is not None:
        system = system_factory(schedule)
    else:
        system = build_scenario(
            schedule.scenario, schedule.seed, config=schedule_config(schedule)
        )
    ctx = CheckContext(system=system)
    script = ScheduleScript(system.sim, system, system.network, ())
    violations: List[Violation] = []
    checkpoints = 0

    def note(phase: str, verdicts: List[Verdict]) -> None:
        for verdict in failed(verdicts):
            violations.append(
                Violation(
                    phase=phase, oracle=verdict.oracle, details=verdict.details
                )
            )

    final_verdicts: List[Verdict] = []
    converged = False
    try:
        pending = sorted(schedule.actions, key=lambda action: action.at)
        for index, action in enumerate(pending):
            system.run_until(action.at)
            script.apply(action)
            next_at = (
                pending[index + 1].at
                if index + 1 < len(pending)
                else schedule.horizon
            )
            if system.run_to_quiescence(max_time=next_at):
                checkpoints += 1
                note(
                    f"quiescent@t={system.sim.now:.3f} after "
                    f"{action.kind}({','.join(action.targets)})",
                    check_quiescent(ctx),
                )
        system.run_until(max(system.sim.now, schedule.horizon))
        # Finalisation: deterministically repair everything, then let
        # the section 3.3 machinery resolve all remaining uncertainty.
        system.network.heal_all()
        system.network.clear_degradations()
        for site in system.down_sites():
            system.recover_site(site)
        converged = system.settle(
            max_time=system.sim.now + settle_budget, step=0.5
        )
        system.run_to_quiescence(max_time=system.sim.now + 5.0)
        checkpoints += 1
        final_verdicts = check_converged(ctx)
        note(f"converged@t={system.sim.now:.3f}", final_verdicts)
    except Exception as error:  # noqa: BLE001 — a crash IS a finding
        violations.append(
            Violation(
                phase=f"exception@t={system.sim.now:.3f}",
                oracle="no-crash",
                details=f"{type(error).__name__}: {error}",
            )
        )
    artifact_path: Optional[str] = None
    if violations and artifact_dir is not None:
        artifact_path = _write_artifact(schedule, violations, artifact_dir)
    return ExplorationResult(
        schedule=schedule,
        violations=violations,
        final_verdicts=final_verdicts,
        quiescent_checkpoints=checkpoints,
        events_processed=system.sim.events_processed,
        converged=converged,
        artifact_path=artifact_path,
        stats=system.metrics.summary(),
        in_doubt_hist=_in_doubt_hist(system),
    )


def _in_doubt_hist(system) -> List[Tuple[float, int]]:
    """The run's in-doubt window histogram as (upper-bound, count)
    pairs, non-cumulative, with the +Inf overflow slot last."""
    family = system.metrics.registry.get("repro_in_doubt_window_seconds")
    if family is None:
        return []
    child = family.merged()
    bounds = list(child.buckets) + [float("inf")]
    return list(zip(bounds, child.counts))


def replay(artifact_path: str, **kwargs) -> ExplorationResult:
    """Re-execute the schedule stored in a violation artifact.

    Determinism guarantee: the same (scenario, seed, actions) triple
    reproduces the same event interleaving, so the recorded violation
    either reappears identically (a real, stable finding) or the
    artifact was produced by a since-fixed build.
    """
    return run_schedule(load_artifact(artifact_path), **kwargs)


def _explore_trial(schedule: Schedule) -> ExplorationResult:
    """The engine worker: one schedule, no artifact I/O in the worker.

    Artifacts are written by the reduce step in the parent so the file
    set is identical whatever the worker count.
    """
    return run_schedule(schedule, artifact_dir=None)


def reduce_exploration(
    schedules: Sequence[Schedule],
    outcome,
    *,
    artifact_dir: Optional[str] = None,
    artifact_prefix: str = "violation",
    artifact_extra: Optional[Dict] = None,
) -> Tuple[List[ExplorationResult], List[str]]:
    """The typed reduce step shared by the explorer and chaos campaigns.

    Merges a :class:`~repro.parallel.pool.CampaignOutcome` back into the
    serial output shape: completed :class:`ExplorationResult` records in
    schedule order (violating ones get their artifact written here, by
    the parent), plus one line per trial that produced no result.
    """
    errors = {failure.index: failure.error for failure in outcome.failures}
    results: List[ExplorationResult] = []
    failed_trials: List[str] = []
    for index, (schedule, result) in enumerate(
        zip(schedules, outcome.results)
    ):
        if result is None:
            where = schedule.label or (
                f"{schedule.scenario} seed={schedule.seed}"
            )
            failed_trials.append(
                f"{where}: {errors.get(index, 'no result')}"
            )
            continue
        if result.violations and artifact_dir is not None:
            result.artifact_path = write_violation_artifact(
                schedule,
                result.violations,
                artifact_dir,
                prefix=artifact_prefix,
                extra=artifact_extra,
            )
        result.task_index = index
        results.append(result)
    return results, failed_trials


def explore(
    *,
    scenarios: Sequence[str] = ("pair", "transfers", "mixed"),
    seeds: Optional[Iterable[int]] = None,
    campaign_seed: int = 0,
    trials: int = 10,
    steps: int = 12,
    include_enumeration: bool = True,
    artifact_dir: Optional[str] = None,
    fault: Optional[str] = None,
    protocol: Optional[str] = None,
    jobs: Optional[int] = 1,
    bus: Optional[EventBus] = None,
) -> ExplorerReport:
    """Run the full exploration budget: random walks plus enumeration.

    Walk seeds come from the shared campaign derivation
    (:func:`repro.parallel.seeds.trial_seed` over
    ``(campaign_seed, 0..trials)``); pass *seeds* explicitly to pin
    exact walk seeds instead (replay, tests).  Every seed yields one
    random walk per scenario; the small-scope enumeration is appended
    once (it is deterministic and seed-free).  *fault* arms a
    wait-phase mutation in every run (used by the mutation smoke test;
    ``paxos:``/``path:`` prefixes arm the new protocols' mutants) and
    *protocol* walks a non-default commit protocol — see
    :func:`schedule_config`.

    *jobs* selects the campaign engine's worker count (``1`` = the
    serial in-process path, ``None`` = every core); per-seed results
    are bit-identical for every value.  *bus* receives streamed
    ``campaign.*`` progress events.
    """
    if seeds is None:
        seeds = trial_seeds(campaign_seed, trials)
    schedules: List[Schedule] = []
    for seed in seeds:
        for scenario in scenarios:
            schedules.append(random_walk(scenario, seed, steps=steps))
    if include_enumeration:
        schedules.extend(
            enumerate_small_scope(
                [name for name in ("pair", "transfers") if name in scenarios]
            )
        )
    if fault is not None or protocol is not None:
        schedules = [
            dataclasses.replace(schedule, fault=fault, protocol=protocol)
            for schedule in schedules
        ]
    report = ExplorerReport()
    started = time.perf_counter()
    outcome = run_trials(
        _explore_trial, schedules, jobs=jobs, bus=bus, label="explore"
    )
    report.results, report.failed_trials = reduce_exploration(
        schedules, outcome, artifact_dir=artifact_dir
    )
    report.wall_seconds = time.perf_counter() - started
    return report
