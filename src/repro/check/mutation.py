"""Mutation smoke test: prove the oracles catch real protocol bugs.

An oracle library that has never failed proves nothing — it might be
vacuously green.  This module arms one of three deliberately-wrong
branches in the participant wait phase (guarded behind
``ProtocolConfig.wait_phase_fault``, never enabled in any real
configuration) and runs the schedule explorer over schedules that force
polyvalue installation.  The harness passes only if **every** fault is
caught by at least one oracle **and** the unmutated protocol passes the
same schedules clean.

The three faults each break a different paper claim, so together they
exercise most of the oracle catalogue:

* ``unilateral-commit`` — the participant commits its staged writes at
  wait timeout instead of installing polyvalues (the classic unsafe
  resolution of the in-doubt window; section 2).  Caught by
  serial-equivalence (a possibly-aborted transaction's effects
  survive) and decision bookkeeping oracles.
* ``overlapping-conditions`` — the installed polyvalue pairs
  ``<new, T>`` with ``<old, TRUE>`` instead of ``<old, ~T>``, so two
  conditions are simultaneously true (violates section 3's
  "one and only one").  Caught by condition-sets / single-outcome.
* ``keep-locks`` — polyvalues are installed correctly but the item
  locks are never released, defeating the availability claim the
  polyvalue mechanism exists to provide.  Caught by no-blocking and
  convergence.

The bake-off peers get their own catalogue (:data:`PROTOCOL_FAULTS`,
run by :func:`run_protocol_mutation_smoke`): a Paxos acceptor that
acks without persisting its vote (caught by decision-consistency via
the shared decision board) and a path-sensitive pre-analysis that
misclassifies or drops effects (caught by the effect-conservation
oracle).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.net.failures import FailureAction
from repro.check.explorer import (
    Schedule,
    Violation,
    enumerate_small_scope,
    run_schedule,
)

#: fault name -> what the armed branch does wrong.
FAULTS: Dict[str, str] = {
    "unilateral-commit": (
        "wait timeout commits staged writes outright instead of "
        "installing polyvalues"
    ),
    "overlapping-conditions": (
        "installed polyvalues pair <new, T> with <old, TRUE>, so the "
        "condition set is not disjoint"
    ),
    "keep-locks": (
        "polyvalues are installed but the write locks are never "
        "released (availability lost)"
    ),
}

#: Protocol-specific mutants for the bake-off peers.  Names are
#: namespaced (``paxos:``/``path:``) so one schedule ``fault`` field
#: round-trips every catalogue; :func:`repro.check.explorer.schedule_config`
#: arms the matching protocol's fault hook.
PROTOCOL_FAULTS: Dict[str, str] = {
    "paxos:acceptor-no-persist": (
        "an acceptor replies Phase2b without recording the accepted "
        "vote, so a failover proposer's Phase1 reads an empty history "
        "and can decide differently from the ballot-0 leader"
    ),
    "path:misclassify-one": (
        "the pre-analysis probes a single snapshot, so one "
        "order-sensitive transaction is misclassified as decomposable "
        "and committed without coordination"
    ),
    "path:drop-remote-apply": (
        "the first remote delta of a decomposable commit is silently "
        "swallowed instead of being shipped, losing a committed effect"
    ),
}


@dataclass
class FaultOutcome:
    """What the explorer saw with one fault armed."""

    fault: str
    schedules_run: int
    violations: List[Violation]
    oracles_triggered: List[str] = field(default_factory=list)

    @property
    def caught(self) -> bool:
        return bool(self.violations)


@dataclass
class MutationReport:
    """Result of the full smoke test: clean baseline + every fault caught."""

    baseline_violations: List[Violation]
    outcomes: List[FaultOutcome]
    schedules_per_fault: int = 0
    wall_seconds: float = 0.0

    @property
    def baseline_ok(self) -> bool:
        return not self.baseline_violations

    @property
    def ok(self) -> bool:
        return self.baseline_ok and all(o.caught for o in self.outcomes)

    def summary_lines(self) -> List[str]:
        lines = [
            f"mutation smoke: {len(self.outcomes)} fault(s) x "
            f"{self.schedules_per_fault} schedule(s) in "
            f"{self.wall_seconds:.2f}s wall",
        ]
        if self.baseline_ok:
            lines.append("  baseline (no fault): all oracles passed")
        else:
            lines.append(
                f"  baseline (no fault): {len(self.baseline_violations)} "
                f"UNEXPECTED violation(s):"
            )
            for violation in self.baseline_violations:
                lines.append(f"    {violation}")
        for outcome in self.outcomes:
            if outcome.caught:
                lines.append(
                    f"  {outcome.fault}: CAUGHT by "
                    f"{', '.join(outcome.oracles_triggered)} "
                    f"({len(outcome.violations)} violation(s))"
                )
            else:
                lines.append(
                    f"  {outcome.fault}: NOT CAUGHT — oracle gap!"
                )
        return lines


def _armed(schedule: Schedule, fault: Optional[str]) -> Schedule:
    return dataclasses.replace(
        schedule,
        fault=fault,
        label=f"{schedule.label}|fault={fault}" if fault else schedule.label,
    )


def smoke_schedules(seed: int = 0) -> List[Schedule]:
    """Schedules that force polyvalue installation (long coordinator
    outages straddling the wait phase), where the faulty branch runs."""
    return enumerate_small_scope(
        ("pair", "transfers"),
        seed=seed,
        crash_instants=(0.03, 0.045),
        durations=(2.5,),
    )


def _paxos_smoke_schedules(seed: int) -> List[Schedule]:
    """Schedules that make ``paxos:acceptor-no-persist`` observable.

    The mutant is invisible while the ballot-0 leader stays fast: the
    fast-path Phase2b quorum completes before any failover Phase1 ever
    reads the (unpersisted) acceptor history.  Degrading the
    coordinator site *after* every participant's Phase2a vote is out
    but *before* the leader's Phase2b quorum completes (the
    0.056-0.065 window for the transfers scenario's first cross-site
    transfer at default timings) slows only the collection leg, so the
    participants' failover timers fire while the ballot-0 Phase2b
    messages are still crawling home.  A correct acceptor hands the
    failover its ``prepared`` vote and both proposers agree; the
    mutant hands it nothing, the failover presumes abort, and the
    ballot-0 leader later commits — a decision conflict the
    decision-consistency oracle reports from the shared board.
    (Degrading earlier delays the leader's own participant vote too,
    and then *both* proposers see an incomplete history and agree on
    abort — the mutant hides.)
    """
    schedules = []
    for at in (0.056, 0.06, 0.065):
        schedules.append(
            Schedule(
                scenario="transfers",
                seed=seed,
                actions=(
                    FailureAction(
                        at=at, kind="degrade", targets=("site-0",), value=100.0
                    ),
                    FailureAction(at=2.0, kind="restore", targets=("site-0",)),
                ),
                protocol="paxos",
                label=f"paxos-slow-leader@{at}",
            )
        )
    return schedules


def _path_smoke_schedules(fault: str, seed: int) -> List[Schedule]:
    """Schedules that make the path-sensitive mutants observable.

    Both mutants corrupt the fast path itself, so no failure injection
    is needed — a failure-free run over traffic with the right shape
    suffices.  ``misclassify-one`` needs an order-sensitive transaction
    (the ``mixed`` scenario's copy) to force onto the fast path;
    ``drop-remote-apply`` needs a genuinely decomposable multi-site
    transaction (any ``transfers`` braid) whose remote delta it can
    swallow.
    """
    scenarios = ("mixed",) if fault == "path:misclassify-one" else ("transfers",)
    return [
        Schedule(
            scenario=scenario,
            seed=seed,
            actions=(),
            protocol="pathsensitive",
            label=f"path-{scenario}",
        )
        for scenario in scenarios
    ]


def protocol_smoke_schedules(fault: str, seed: int = 0) -> List[Schedule]:
    """Schedules (fault *not* yet armed) under which *fault* is visible."""
    if fault not in PROTOCOL_FAULTS:
        raise ValueError(
            f"unknown protocol fault {fault!r}; "
            f"known: {', '.join(sorted(PROTOCOL_FAULTS))}"
        )
    if fault.startswith("paxos:"):
        return _paxos_smoke_schedules(seed)
    return _path_smoke_schedules(fault, seed)


def run_protocol_mutation_smoke(
    *,
    faults: Sequence[str] = tuple(PROTOCOL_FAULTS),
    seed: int = 0,
    artifact_dir: Optional[str] = None,
) -> MutationReport:
    """Mutation smoke for the bake-off peers' state machines.

    Mirrors :func:`run_mutation_smoke`: for every protocol fault, the
    same schedules must run clean with the fault disarmed (the peer
    protocols are correct under the stress that exposes the mutant) and
    produce at least one oracle violation with it armed.  Schedules are
    per-fault because each mutant needs different traffic shape or
    failure timing to become observable.
    """
    for fault in faults:
        if fault not in PROTOCOL_FAULTS:
            raise ValueError(
                f"unknown protocol fault {fault!r}; "
                f"choose from {sorted(PROTOCOL_FAULTS)}"
            )
    started = time.perf_counter()
    baseline_violations: List[Violation] = []
    baseline_done: Set[str] = set()
    outcomes: List[FaultOutcome] = []
    schedules_per_fault = 0
    for fault in faults:
        schedules = protocol_smoke_schedules(fault, seed)
        schedules_per_fault = max(schedules_per_fault, len(schedules))
        for schedule in schedules:
            key = schedule.fingerprint()
            if key not in baseline_done:
                baseline_done.add(key)
                result = run_schedule(schedule, artifact_dir=artifact_dir)
                baseline_violations.extend(result.violations)
        violations: List[Violation] = []
        for schedule in schedules:
            result = run_schedule(_armed(schedule, fault))
            violations.extend(result.violations)
        outcomes.append(
            FaultOutcome(
                fault=fault,
                schedules_run=len(schedules),
                violations=violations,
                oracles_triggered=sorted(
                    {violation.oracle for violation in violations}
                ),
            )
        )
    return MutationReport(
        baseline_violations=baseline_violations,
        outcomes=outcomes,
        schedules_per_fault=schedules_per_fault,
        wall_seconds=time.perf_counter() - started,
    )


def run_mutation_smoke(
    *,
    faults: Sequence[str] = tuple(FAULTS),
    seed: int = 0,
    artifact_dir: Optional[str] = None,
) -> MutationReport:
    """Run the smoke test: baseline must be clean, every fault caught.

    Artifacts (when *artifact_dir* is given) are written only for
    baseline violations — a violation under an armed fault is the
    expected outcome, not a finding.
    """
    for fault in faults:
        if fault not in FAULTS:
            raise ValueError(
                f"unknown fault {fault!r}; choose from {sorted(FAULTS)}"
            )
    schedules = smoke_schedules(seed)
    started = time.perf_counter()
    baseline_violations: List[Violation] = []
    for schedule in schedules:
        result = run_schedule(schedule, artifact_dir=artifact_dir)
        baseline_violations.extend(result.violations)
    outcomes: List[FaultOutcome] = []
    for fault in faults:
        violations: List[Violation] = []
        for schedule in schedules:
            result = run_schedule(_armed(schedule, fault))
            violations.extend(result.violations)
        outcomes.append(
            FaultOutcome(
                fault=fault,
                schedules_run=len(schedules),
                violations=violations,
                oracles_triggered=sorted(
                    {violation.oracle for violation in violations}
                ),
            )
        )
    return MutationReport(
        baseline_violations=baseline_violations,
        outcomes=outcomes,
        schedules_per_fault=len(schedules),
        wall_seconds=time.perf_counter() - started,
    )
