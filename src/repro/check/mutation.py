"""Mutation smoke test: prove the oracles catch real protocol bugs.

An oracle library that has never failed proves nothing — it might be
vacuously green.  This module arms one of three deliberately-wrong
branches in the participant wait phase (guarded behind
``ProtocolConfig.wait_phase_fault``, never enabled in any real
configuration) and runs the schedule explorer over schedules that force
polyvalue installation.  The harness passes only if **every** fault is
caught by at least one oracle **and** the unmutated protocol passes the
same schedules clean.

The three faults each break a different paper claim, so together they
exercise most of the oracle catalogue:

* ``unilateral-commit`` — the participant commits its staged writes at
  wait timeout instead of installing polyvalues (the classic unsafe
  resolution of the in-doubt window; section 2).  Caught by
  serial-equivalence (a possibly-aborted transaction's effects
  survive) and decision bookkeeping oracles.
* ``overlapping-conditions`` — the installed polyvalue pairs
  ``<new, T>`` with ``<old, TRUE>`` instead of ``<old, ~T>``, so two
  conditions are simultaneously true (violates section 3's
  "one and only one").  Caught by condition-sets / single-outcome.
* ``keep-locks`` — polyvalues are installed correctly but the item
  locks are never released, defeating the availability claim the
  polyvalue mechanism exists to provide.  Caught by no-blocking and
  convergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check.explorer import (
    Schedule,
    Violation,
    enumerate_small_scope,
    run_schedule,
)

#: fault name -> what the armed branch does wrong.
FAULTS: Dict[str, str] = {
    "unilateral-commit": (
        "wait timeout commits staged writes outright instead of "
        "installing polyvalues"
    ),
    "overlapping-conditions": (
        "installed polyvalues pair <new, T> with <old, TRUE>, so the "
        "condition set is not disjoint"
    ),
    "keep-locks": (
        "polyvalues are installed but the write locks are never "
        "released (availability lost)"
    ),
}


@dataclass
class FaultOutcome:
    """What the explorer saw with one fault armed."""

    fault: str
    schedules_run: int
    violations: List[Violation]
    oracles_triggered: List[str] = field(default_factory=list)

    @property
    def caught(self) -> bool:
        return bool(self.violations)


@dataclass
class MutationReport:
    """Result of the full smoke test: clean baseline + every fault caught."""

    baseline_violations: List[Violation]
    outcomes: List[FaultOutcome]
    schedules_per_fault: int = 0
    wall_seconds: float = 0.0

    @property
    def baseline_ok(self) -> bool:
        return not self.baseline_violations

    @property
    def ok(self) -> bool:
        return self.baseline_ok and all(o.caught for o in self.outcomes)

    def summary_lines(self) -> List[str]:
        lines = [
            f"mutation smoke: {len(self.outcomes)} fault(s) x "
            f"{self.schedules_per_fault} schedule(s) in "
            f"{self.wall_seconds:.2f}s wall",
        ]
        if self.baseline_ok:
            lines.append("  baseline (no fault): all oracles passed")
        else:
            lines.append(
                f"  baseline (no fault): {len(self.baseline_violations)} "
                f"UNEXPECTED violation(s):"
            )
            for violation in self.baseline_violations:
                lines.append(f"    {violation}")
        for outcome in self.outcomes:
            if outcome.caught:
                lines.append(
                    f"  {outcome.fault}: CAUGHT by "
                    f"{', '.join(outcome.oracles_triggered)} "
                    f"({len(outcome.violations)} violation(s))"
                )
            else:
                lines.append(
                    f"  {outcome.fault}: NOT CAUGHT — oracle gap!"
                )
        return lines


def _armed(schedule: Schedule, fault: Optional[str]) -> Schedule:
    return Schedule(
        scenario=schedule.scenario,
        seed=schedule.seed,
        actions=schedule.actions,
        horizon=schedule.horizon,
        fault=fault,
        label=f"{schedule.label}|fault={fault}" if fault else schedule.label,
    )


def smoke_schedules(seed: int = 0) -> List[Schedule]:
    """Schedules that force polyvalue installation (long coordinator
    outages straddling the wait phase), where the faulty branch runs."""
    return enumerate_small_scope(
        ("pair", "transfers"),
        seed=seed,
        crash_instants=(0.03, 0.045),
        durations=(2.5,),
    )


def run_mutation_smoke(
    *,
    faults: Sequence[str] = tuple(FAULTS),
    seed: int = 0,
    artifact_dir: Optional[str] = None,
) -> MutationReport:
    """Run the smoke test: baseline must be clean, every fault caught.

    Artifacts (when *artifact_dir* is given) are written only for
    baseline violations — a violation under an armed fault is the
    expected outcome, not a finding.
    """
    for fault in faults:
        if fault not in FAULTS:
            raise ValueError(
                f"unknown fault {fault!r}; choose from {sorted(FAULTS)}"
            )
    schedules = smoke_schedules(seed)
    started = time.perf_counter()
    baseline_violations: List[Violation] = []
    for schedule in schedules:
        result = run_schedule(schedule, artifact_dir=artifact_dir)
        baseline_violations.extend(result.violations)
    outcomes: List[FaultOutcome] = []
    for fault in faults:
        violations: List[Violation] = []
        for schedule in schedules:
            result = run_schedule(_armed(schedule, fault))
            violations.extend(result.violations)
        outcomes.append(
            FaultOutcome(
                fault=fault,
                schedules_run=len(schedules),
                violations=violations,
                oracles_triggered=sorted(
                    {violation.oracle for violation in violations}
                ),
            )
        )
    return MutationReport(
        baseline_violations=baseline_violations,
        outcomes=outcomes,
        schedules_per_fault=len(schedules),
        wall_seconds=time.perf_counter() - started,
    )
