"""Global invariant oracles for the polyvalue protocol.

Each oracle inspects a whole :class:`~repro.txn.system.DistributedSystem`
and renders a :class:`Verdict`.  Two evaluation points exist:

* **quiescent** — no protocol work in flight (messages, protocol
  timers); failures may still be outstanding.  The section 3
  *structural* invariants must hold here: well-formed condition sets,
  single-outcome resolution, outcome-table coverage of every polyvalue,
  no locks on polyvalued items, only Figure-1 state transitions.
* **converged** — additionally, every failure has recovered and the
  maintenance loops have run to completion.  The *end-state* guarantees
  apply: zero polyvalues, empty bookkeeping, every transaction decided,
  and a final state equal to some serial execution of the committed
  transactions (conflict-serializability / no lost update, via
  :func:`repro.workloads.runner.serial_replay`).

Oracles never mutate the system.  They are deliberately exhaustive and
slow-ish (truth-table enumeration per polyvalue) — they run in tests and
in the schedule explorer, not on any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.conditions import all_assignments
from repro.core.errors import ConditionError, PolyvalueError
from repro.core.polyvalue import Value, is_polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.runner import serial_replay

ItemId = str


@dataclass(frozen=True)
class Verdict:
    """One oracle's judgement of one system state."""

    oracle: str
    ok: bool
    details: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.ok else "VIOLATION"
        suffix = f": {self.details}" if self.details else ""
        return f"[{mark}] {self.oracle}{suffix}"


@dataclass
class CheckContext:
    """Everything the oracles need to judge a system.

    ``initial_values`` defaults to the system's own retained copy; pass
    it explicitly only for hand-built systems that predate the field.
    """

    system: DistributedSystem
    initial_values: Optional[Mapping[ItemId, Value]] = None

    def initial(self) -> Dict[ItemId, Value]:
        if self.initial_values is not None:
            return dict(self.initial_values)
        return dict(self.system.initial_values)


Oracle = Callable[[CheckContext], Verdict]


def _verdict(name: str, problems: List[str]) -> Verdict:
    if problems:
        return Verdict(oracle=name, ok=False, details="; ".join(problems))
    return Verdict(oracle=name, ok=True)


# ----------------------------------------------------------------------
# Quiescent-point oracles (structural invariants, section 3)
# ----------------------------------------------------------------------


def condition_sets_oracle(ctx: CheckContext) -> Verdict:
    """Every polyvalue's condition set is complete and disjoint.

    Section 3: "one and only one of the conditions must be true under
    any assignment of outcomes to the transactions".  Also flags nested
    polyvalues, unmerged equal values and unsatisfiable conditions —
    the three simplification rules of section 3.1.
    """
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        for item in site.store.polyvalued_items():
            value = site.store.read(item)
            for problem in value.well_formedness_problems():
                problems.append(f"{site_id}/{item}: {problem}")
    return _verdict("condition-sets", problems)


def single_outcome_oracle(ctx: CheckContext) -> Verdict:
    """Every polyvalue resolves to exactly one simple value per outcome.

    For each polyvalued item, enumerate every assignment of outcomes to
    the transactions it depends on: substitution must produce a plain
    (non-poly) value — "when the outcome of every transaction is known,
    a single value pair will be left in each polyvalue" (section 3.3).
    """
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        for item in site.store.polyvalued_items():
            value = site.store.read(item)
            doubts = sorted(value.depends_on())
            if not doubts:
                problems.append(
                    f"{site_id}/{item}: polyvalue depends on no "
                    f"transaction (should have collapsed)"
                )
                continue
            try:
                for assignment in all_assignments(doubts):
                    reduced = value.reduce(assignment)
                    if is_polyvalue(reduced):
                        problems.append(
                            f"{site_id}/{item}: still uncertain under "
                            f"full assignment {assignment}"
                        )
                        break
            except (PolyvalueError, ConditionError) as error:
                problems.append(f"{site_id}/{item}: {error}")
    return _verdict("single-outcome", problems)


def outcome_tracking_oracle(ctx: CheckContext) -> Verdict:
    """The section 3.3 tables cover every polyvalue dependency.

    A site holding a polyvalue that depends on transaction T must have
    a table entry mapping T to that item — otherwise learning T's
    outcome would never reduce the polyvalue and the forwarding chain
    silently loses the update.  The reverse direction (an entry lists
    an item that is not actually a dependent polyvalue) is bookkeeping
    leakage and flagged too.
    """
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        table = site.runtime.outcomes
        dependent: Dict[str, set] = {}
        for item in site.store.polyvalued_items():
            for txn in site.store.read(item).depends_on():
                dependent.setdefault(txn, set()).add(item)
        for txn, items in dependent.items():
            missing = items - set(table.dependent_items(txn))
            for item in sorted(missing):
                problems.append(
                    f"{site_id}/{item}: depends on {txn} but the outcome "
                    f"table does not track it (unresolvable polyvalue)"
                )
        for txn in table.pending_transactions():
            stale = set(table.dependent_items(txn)) - dependent.get(txn, set())
            for item in sorted(stale):
                problems.append(
                    f"{site_id}/{item}: outcome table tracks a dependency "
                    f"on {txn} but the item holds no such polyvalue "
                    f"(bookkeeping leak)"
                )
    return _verdict("outcome-tracking", problems)


def no_blocking_oracle(ctx: CheckContext) -> Verdict:
    """Polyvalue installation released the locks (the availability claim).

    The whole point of the paper: at a quiescent point no polyvalued
    item may still be locked.  Under the POLYVALUE policy quiescence
    implies no locks at all on polyvalued items; the BLOCKING baseline
    legitimately violates this, which is exactly the contrast the
    paper draws — so this oracle only applies to the polyvalue policy.

    One deliberate exception: a configured ``polyvalue_budget``
    (ProtocolConfig's §6 overload valve) switches wait-timeouts to
    blocking once the site is saturated, and those transactions hold
    their locks *by design* — a lock whose holder the participant
    reports as blocked is therefore not a violation.
    """
    from repro.txn.runtime import CommitPolicy

    if ctx.system.config.policy is not CommitPolicy.POLYVALUE:
        return Verdict(
            oracle="no-blocking", ok=True, details="skipped: non-polyvalue policy"
        )
    budgeted = ctx.system.config.polyvalue_budget is not None
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        locks = site.runtime.locks
        locked = locks.locked_items()
        blocked = site.participant.blocked_transactions() if budgeted else set()
        for item in site.store.polyvalued_items():
            if item in locked:
                if blocked and locks.holders(item) <= blocked:
                    continue  # overload valve: blocking chosen by config
                problems.append(
                    f"{site_id}/{item}: holds a polyvalue but is locked "
                    f"(availability violated)"
                )
    return _verdict("no-blocking", problems)


def figure1_oracle(ctx: CheckContext) -> Verdict:
    """Every observed participant transition is an edge of Figure 1."""
    transitions = ctx.system.transitions
    invalid = transitions.observed_edges() - transitions.FIGURE_1_EDGES
    problems = [
        f"illegal transition {source.value} --{trigger}--> {target.value}"
        for source, trigger, target in sorted(
            invalid, key=lambda e: (e[0].value, e[1])
        )
    ]
    return _verdict("figure1-edges", problems)


def decision_consistency_oracle(ctx: CheckContext) -> Verdict:
    """No transaction was both committed and aborted anywhere.

    Every handle reaches at most one decided status (the handle raises
    on re-decision), and no two handles share a transaction id.
    """
    problems: List[str] = []
    seen: Dict[str, TxnStatus] = {}
    for handle in ctx.system.handles:
        if handle.txn.startswith(("?", "unsent@")):
            continue  # never entered the protocol
        previous = seen.get(handle.txn)
        if previous is not None and previous is not handle.status:
            problems.append(
                f"{handle.txn}: decided both {previous.value} and "
                f"{handle.status.value}"
            )
        seen[handle.txn] = handle.status
    return _verdict("decision-consistency", problems)


# ----------------------------------------------------------------------
# Convergence oracles (end-state guarantees, sections 3.3-3.4)
# ----------------------------------------------------------------------


def convergence_oracle(ctx: CheckContext) -> Verdict:
    """All uncertainty resolved and all bookkeeping garbage-collected.

    After every failure recovers: zero polyvalues at every site, empty
    outcome tables ("the table entry for T [is forgotten]"), empty
    coordinator outcome logs (all acknowledged), no pending handles,
    and no locks held anywhere.
    """
    system = ctx.system
    problems: List[str] = []
    down = system.down_sites()
    if down:
        problems.append(f"sites still down: {', '.join(down)}")
    leftover = system.polyvalued_items()
    if leftover:
        problems.append(f"polyvalues remain on: {', '.join(leftover)}")
    bookkeeping = system.outcome_bookkeeping_size()
    if bookkeeping:
        problems.append(f"{bookkeeping} outcome-table entries not collected")
    for site_id, site in system.sites.items():
        pending_log = site.runtime.outcome_log.pending()
        if pending_log:
            problems.append(
                f"{site_id}: outcome log retains {sorted(pending_log)}"
            )
        locked = site.runtime.locks.locked_items()
        if locked:
            problems.append(f"{site_id}: locks held on {sorted(locked)}")
    pending = [handle.txn for handle in system.pending_handles()]
    if pending:
        problems.append(f"undecided transactions: {', '.join(pending)}")
    return _verdict("convergence", problems)


def serial_equivalence_oracle(ctx: CheckContext) -> Verdict:
    """The final state equals a serial execution of the committed set.

    The classic atomicity criterion, applied once converged: replaying
    exactly the committed transactions, serially, in decision order,
    against the initial state must reproduce the database byte for
    byte.  Catches lost updates (an effect vanished), phantom updates
    (an aborted transaction's effect survived — e.g. a unilateral
    commit), and non-serializable interleavings.
    """
    system = ctx.system
    expected = serial_replay(system.handles, ctx.initial())
    actual = system.database_state()
    problems: List[str] = []
    for item in sorted(expected):
        if item not in actual:
            problems.append(f"{item}: missing from the final state")
        elif actual[item] != expected[item]:
            problems.append(
                f"{item}: final value {actual[item]!r} != serial "
                f"replay {expected[item]!r}"
            )
    for item in sorted(set(actual) - set(expected)):
        problems.append(f"{item}: not present in the serial replay")
    return _verdict("serial-equivalence", problems)


#: Oracles valid at any quiescent point (failures may be outstanding).
QUIESCENT_ORACLES: Tuple[Oracle, ...] = (
    condition_sets_oracle,
    single_outcome_oracle,
    outcome_tracking_oracle,
    no_blocking_oracle,
    figure1_oracle,
    decision_consistency_oracle,
)

#: Additional oracles valid only once every failure has recovered and
#: the system has settled.
CONVERGENCE_ORACLES: Tuple[Oracle, ...] = (
    convergence_oracle,
    serial_equivalence_oracle,
)

ALL_ORACLES: Tuple[Oracle, ...] = QUIESCENT_ORACLES + CONVERGENCE_ORACLES


def check_quiescent(ctx: CheckContext) -> List[Verdict]:
    """Evaluate every quiescent-point oracle."""
    return [oracle(ctx) for oracle in QUIESCENT_ORACLES]


def check_converged(ctx: CheckContext) -> List[Verdict]:
    """Evaluate the full oracle catalogue (quiescent + convergence)."""
    return [oracle(ctx) for oracle in ALL_ORACLES]


def failed(verdicts: Sequence[Verdict]) -> List[Verdict]:
    """The violations among *verdicts*."""
    return [verdict for verdict in verdicts if not verdict.ok]
