"""Global invariant oracles for the polyvalue protocol.

Each oracle inspects a whole :class:`~repro.txn.system.DistributedSystem`
and renders a :class:`Verdict`.  Two evaluation points exist:

* **quiescent** — no protocol work in flight (messages, protocol
  timers); failures may still be outstanding.  The section 3
  *structural* invariants must hold here: well-formed condition sets,
  single-outcome resolution, outcome-table coverage of every polyvalue,
  no locks on polyvalued items, only Figure-1 state transitions.
* **converged** — additionally, every failure has recovered and the
  maintenance loops have run to completion.  The *end-state* guarantees
  apply: zero polyvalues, empty bookkeeping, every transaction decided,
  and a final state equal to some serial execution of the committed
  transactions (conflict-serializability / no lost update, via
  :func:`repro.workloads.runner.serial_replay`).

Oracles never mutate the system.  They are deliberately exhaustive and
slow-ish (truth-table enumeration per polyvalue) — they run in tests and
in the schedule explorer, not on any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.conditions import all_assignments
from repro.core.errors import ConditionError, PolyvalueError
from repro.core.polyvalue import Value, is_polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.runner import serial_replay

ItemId = str


@dataclass(frozen=True)
class Verdict:
    """One oracle's judgement of one system state."""

    oracle: str
    ok: bool
    details: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.ok else "VIOLATION"
        suffix = f": {self.details}" if self.details else ""
        return f"[{mark}] {self.oracle}{suffix}"


@dataclass
class CheckContext:
    """Everything the oracles need to judge a system.

    ``initial_values`` defaults to the system's own retained copy; pass
    it explicitly only for hand-built systems that predate the field.
    """

    system: DistributedSystem
    initial_values: Optional[Mapping[ItemId, Value]] = None

    def initial(self) -> Dict[ItemId, Value]:
        if self.initial_values is not None:
            return dict(self.initial_values)
        return dict(self.system.initial_values)


Oracle = Callable[[CheckContext], Verdict]


def _verdict(name: str, problems: List[str]) -> Verdict:
    if problems:
        return Verdict(oracle=name, ok=False, details="; ".join(problems))
    return Verdict(oracle=name, ok=True)


# ----------------------------------------------------------------------
# Quiescent-point oracles (structural invariants, section 3)
# ----------------------------------------------------------------------


def condition_sets_oracle(ctx: CheckContext) -> Verdict:
    """Every polyvalue's condition set is complete and disjoint.

    Section 3: "one and only one of the conditions must be true under
    any assignment of outcomes to the transactions".  Also flags nested
    polyvalues, unmerged equal values and unsatisfiable conditions —
    the three simplification rules of section 3.1.
    """
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        for item in site.store.polyvalued_items():
            value = site.store.read(item)
            for problem in value.well_formedness_problems():
                problems.append(f"{site_id}/{item}: {problem}")
    return _verdict("condition-sets", problems)


def single_outcome_oracle(ctx: CheckContext) -> Verdict:
    """Every polyvalue resolves to exactly one simple value per outcome.

    For each polyvalued item, enumerate every assignment of outcomes to
    the transactions it depends on: substitution must produce a plain
    (non-poly) value — "when the outcome of every transaction is known,
    a single value pair will be left in each polyvalue" (section 3.3).
    """
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        for item in site.store.polyvalued_items():
            value = site.store.read(item)
            doubts = sorted(value.depends_on())
            if not doubts:
                problems.append(
                    f"{site_id}/{item}: polyvalue depends on no "
                    f"transaction (should have collapsed)"
                )
                continue
            try:
                for assignment in all_assignments(doubts):
                    reduced = value.reduce(assignment)
                    if is_polyvalue(reduced):
                        problems.append(
                            f"{site_id}/{item}: still uncertain under "
                            f"full assignment {assignment}"
                        )
                        break
            except (PolyvalueError, ConditionError) as error:
                problems.append(f"{site_id}/{item}: {error}")
    return _verdict("single-outcome", problems)


def outcome_tracking_oracle(ctx: CheckContext) -> Verdict:
    """The section 3.3 tables cover every polyvalue dependency.

    A site holding a polyvalue that depends on transaction T must have
    a table entry mapping T to that item — otherwise learning T's
    outcome would never reduce the polyvalue and the forwarding chain
    silently loses the update.  The reverse direction (an entry lists
    an item that is not actually a dependent polyvalue) is bookkeeping
    leakage and flagged too.
    """
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        table = site.runtime.outcomes
        dependent: Dict[str, set] = {}
        for item in site.store.polyvalued_items():
            for txn in site.store.read(item).depends_on():
                dependent.setdefault(txn, set()).add(item)
        for txn, items in dependent.items():
            missing = items - set(table.dependent_items(txn))
            for item in sorted(missing):
                problems.append(
                    f"{site_id}/{item}: depends on {txn} but the outcome "
                    f"table does not track it (unresolvable polyvalue)"
                )
        for txn in table.pending_transactions():
            stale = set(table.dependent_items(txn)) - dependent.get(txn, set())
            for item in sorted(stale):
                problems.append(
                    f"{site_id}/{item}: outcome table tracks a dependency "
                    f"on {txn} but the item holds no such polyvalue "
                    f"(bookkeeping leak)"
                )
    return _verdict("outcome-tracking", problems)


def no_blocking_oracle(ctx: CheckContext) -> Verdict:
    """Availability at quiescence, dispatched on the protocol kind.

    The claim this oracle guards is protocol-specific, so it inspects
    ``ProtocolConfig.protocol_kind`` rather than hard-coding the
    polyvalue semantics:

    * **polyvalue** (and the polyvalue subset of **pathsensitive**) —
      the paper's claim: at a quiescent point no polyvalued item may
      still be locked (installation released the locks);
    * **blocking** / **relaxed** — the blocking baseline *legitimately*
      holds locks across the window and relaxed never installs
      polyvalues; neither is a violation, exactly the contrast the
      paper draws — skipped;
    * **paxos** — Paxos Commit never creates polyvalues at all; any
      polyvalue in a paxos system is a protocol bug, which is the check
      applied instead of the lock scan.

    One deliberate exception on the polyvalue path: a configured
    ``polyvalue_budget`` (ProtocolConfig's §6 overload valve) switches
    wait-timeouts to blocking once the site is saturated, and those
    transactions hold their locks *by design* — a lock whose holder the
    participant reports as blocked is therefore not a violation.
    """
    kind = ctx.system.config.protocol_kind
    if kind in ("blocking", "relaxed"):
        return Verdict(
            oracle="no-blocking",
            ok=True,
            details=f"skipped: {kind} legitimately blocks",
        )
    if kind == "paxos":
        polyvalued = ctx.system.polyvalued_items()
        if polyvalued:
            return Verdict(
                oracle="no-blocking",
                ok=False,
                details=(
                    "paxos commit must never create polyvalues, found on: "
                    + ", ".join(polyvalued)
                ),
            )
        return Verdict(oracle="no-blocking", ok=True)
    budgeted = ctx.system.config.polyvalue_budget is not None
    problems: List[str] = []
    for site_id, site in ctx.system.sites.items():
        locks = site.runtime.locks
        locked = locks.locked_items()
        blocked = site.participant.blocked_transactions() if budgeted else set()
        for item in site.store.polyvalued_items():
            if item in locked:
                if blocked and locks.holders(item) <= blocked:
                    continue  # overload valve: blocking chosen by config
                problems.append(
                    f"{site_id}/{item}: holds a polyvalue but is locked "
                    f"(availability violated)"
                )
    return _verdict("no-blocking", problems)


def figure1_oracle(ctx: CheckContext) -> Verdict:
    """Every observed participant transition is an edge of Figure 1."""
    transitions = ctx.system.transitions
    invalid = transitions.observed_edges() - transitions.FIGURE_1_EDGES
    problems = [
        f"illegal transition {source.value} --{trigger}--> {target.value}"
        for source, trigger, target in sorted(
            invalid, key=lambda e: (e[0].value, e[1])
        )
    ]
    return _verdict("figure1-edges", problems)


def decision_consistency_oracle(ctx: CheckContext) -> Verdict:
    """No transaction was both committed and aborted anywhere.

    Every handle reaches at most one decided status (the handle raises
    on re-decision), and no two handles share a transaction id.  Under
    Paxos Commit the decision additionally flows through the shared
    :class:`~repro.txn.paxos.DecisionBoard`, which records any
    contradictory consensus outcome (the bug class 2F+1 durable
    acceptors exist to prevent) instead of applying it — those conflict
    records are violations here.
    """
    problems: List[str] = []
    seen: Dict[str, TxnStatus] = {}
    for handle in ctx.system.handles:
        if handle.txn.startswith(("?", "unsent@")):
            continue  # never entered the protocol
        previous = seen.get(handle.txn)
        if previous is not None and previous is not handle.status:
            problems.append(
                f"{handle.txn}: decided both {previous.value} and "
                f"{handle.status.value}"
            )
        seen[handle.txn] = handle.status
    board = ctx.system.decision_board
    if board is not None:
        for txn, first, second, site in board.conflicts:
            problems.append(
                f"{txn}: consensus decided "
                f"{'commit' if first else 'abort'} then "
                f"{'commit' if second else 'abort'} (second at {site})"
            )
    return _verdict("decision-consistency", problems)


# ----------------------------------------------------------------------
# Convergence oracles (end-state guarantees, sections 3.3-3.4)
# ----------------------------------------------------------------------


def convergence_oracle(ctx: CheckContext) -> Verdict:
    """All uncertainty resolved and all bookkeeping garbage-collected.

    After every failure recovers: zero polyvalues at every site, empty
    outcome tables ("the table entry for T [is forgotten]"), empty
    coordinator outcome logs (all acknowledged), no pending handles,
    and no locks held anywhere.
    """
    system = ctx.system
    problems: List[str] = []
    down = system.down_sites()
    if down:
        problems.append(f"sites still down: {', '.join(down)}")
    leftover = system.polyvalued_items()
    if leftover:
        problems.append(f"polyvalues remain on: {', '.join(leftover)}")
    bookkeeping = system.outcome_bookkeeping_size()
    if bookkeeping:
        problems.append(f"{bookkeeping} outcome-table entries not collected")
    for site_id, site in system.sites.items():
        pending_log = site.runtime.outcome_log.pending()
        if pending_log:
            problems.append(
                f"{site_id}: outcome log retains {sorted(pending_log)}"
            )
        locked = site.runtime.locks.locked_items()
        if locked:
            problems.append(f"{site_id}: locks held on {sorted(locked)}")
    pending = [handle.txn for handle in system.pending_handles()]
    if pending:
        problems.append(f"undecided transactions: {', '.join(pending)}")
    for site_id, site in system.sites.items():
        residue = site.protocol_residue()
        if residue:
            problems.append(
                f"{site_id}: {residue} protocol-residue entries not drained"
            )
    return _verdict("convergence", problems)


def serial_equivalence_oracle(ctx: CheckContext) -> Verdict:
    """The final state equals a serial execution of the committed set.

    The classic atomicity criterion, applied once converged: replaying
    exactly the committed transactions, serially, in decision order,
    against the initial state must reproduce the database byte for
    byte.  Catches lost updates (an effect vanished), phantom updates
    (an aborted transaction's effect survived — e.g. a unilateral
    commit), and non-serializable interleavings.

    Path-sensitive commit deliberately trades strict serializability
    for immediate fast-path commit (a coordinated reader can observe a
    half-landed transfer), so under that protocol the criterion is the
    effect-conservation contract of :func:`path_effects_oracle`
    instead, and this oracle steps aside.
    """
    system = ctx.system
    if system.config.protocol_kind == "pathsensitive":
        return Verdict(
            oracle="serial-equivalence",
            ok=True,
            details="skipped: pathsensitive is audited by effect conservation",
        )
    expected = serial_replay(system.handles, ctx.initial())
    actual = system.database_state()
    problems: List[str] = []
    for item in sorted(expected):
        if item not in actual:
            problems.append(f"{item}: missing from the final state")
        elif actual[item] != expected[item]:
            problems.append(
                f"{item}: final value {actual[item]!r} != serial "
                f"replay {expected[item]!r}"
            )
    for item in sorted(set(actual) - set(expected)):
        problems.append(f"{item}: not present in the serial replay")
    return _verdict("serial-equivalence", problems)


def path_effects_oracle(ctx: CheckContext) -> Verdict:
    """Path-sensitive commit's correctness contract (effect conservation).

    What replaces serial equivalence for the fast path, checked once
    converged:

    * **classification audit** — every transaction that skipped
      coordination is re-probed; if the pre-analysis cannot reproduce
      the order-invariance claim (same deltas under every probe
      snapshot), the routing was a protocol bug (the
      ``misclassify-one`` mutant);
    * **exactly-once effects** — every declared delta of a committed
      fast-path transaction appears in exactly one site's durable apply
      log, with the declared value; no apply log holds an effect for an
      aborted, undeclared, or coordinated transaction (the
      ``drop-remote-apply`` mutant loses an effect; a retransmission
      bug would double one);
    * **value conservation** — items touched *only* by fast-path
      transactions end at initial-plus-sum-of-committed-deltas.
    """
    system = ctx.system
    registry = system.path_registry
    if registry is None:
        return Verdict(
            oracle="path-effects", ok=True, details="skipped: not pathsensitive"
        )
    from repro.txn.pathsensitive import decompose

    problems: List[str] = []
    status = {handle.txn: handle.status for handle in system.handles}
    applied: Dict[Tuple[str, ItemId], List[Tuple[str, Value]]] = {}
    for site_id, site in system.sites.items():
        for (txn, item), delta in site.applied.items():
            applied.setdefault((txn, item), []).append((site_id, delta))
    decomposable = registry.by_kind("decomposable")
    for txn, decision in sorted(decomposable.items()):
        audit = decompose(decision.transaction)
        if audit is None or audit.deltas != decision.deltas:
            problems.append(
                f"{txn}: took the fast path but re-analysis finds it "
                f"order-sensitive (misclassified)"
            )
        if status.get(txn) is not TxnStatus.COMMITTED:
            continue
        for item, delta in sorted(decision.deltas.items()):
            entries = applied.get((txn, item), [])
            if not entries:
                problems.append(
                    f"{txn}/{item}: declared delta {delta!r} was never "
                    f"applied (effect lost)"
                )
            elif len(entries) > 1:
                sites = ", ".join(sorted(site for site, _ in entries))
                problems.append(
                    f"{txn}/{item}: effect applied {len(entries)} times "
                    f"(at {sites})"
                )
            elif entries[0][1] != delta:
                problems.append(
                    f"{txn}/{item}: applied {entries[0][1]!r} but declared "
                    f"{delta!r}"
                )
    for (txn, item), entries in sorted(applied.items()):
        decision = registry.decided(txn)
        if decision is None or decision.kind != "decomposable":
            problems.append(
                f"{txn}/{item}: apply log holds an effect for a "
                f"non-fast-path transaction"
            )
        elif status.get(txn) is not TxnStatus.COMMITTED:
            problems.append(
                f"{txn}/{item}: effect of an uncommitted transaction was "
                f"applied (phantom update)"
            )
        elif item not in decision.deltas:
            problems.append(f"{txn}/{item}: undeclared effect applied")
    touched_elsewhere: set = set()
    for decision in registry.routed.values():
        if decision.kind != "decomposable":
            touched_elsewhere.update(decision.transaction.items)
    initial = ctx.initial()
    expected_delta: Dict[ItemId, Value] = {}
    for txn, decision in decomposable.items():
        if status.get(txn) is TxnStatus.COMMITTED:
            for item, delta in decision.deltas.items():
                expected_delta[item] = expected_delta.get(item, 0) + delta
    actual = system.database_state()
    for item in sorted(expected_delta):
        if item in touched_elsewhere:
            continue  # a coordinated/local write makes the sum non-closed
        want = initial[item] + expected_delta[item]
        if actual.get(item) != want:
            problems.append(
                f"{item}: final value {actual.get(item)!r} != initial "
                f"{initial[item]!r} + committed deltas {expected_delta[item]!r}"
            )
    return _verdict("path-effects", problems)


#: Oracles valid at any quiescent point (failures may be outstanding).
QUIESCENT_ORACLES: Tuple[Oracle, ...] = (
    condition_sets_oracle,
    single_outcome_oracle,
    outcome_tracking_oracle,
    no_blocking_oracle,
    figure1_oracle,
    decision_consistency_oracle,
)

#: Additional oracles valid only once every failure has recovered and
#: the system has settled.
CONVERGENCE_ORACLES: Tuple[Oracle, ...] = (
    convergence_oracle,
    serial_equivalence_oracle,
    path_effects_oracle,
)

ALL_ORACLES: Tuple[Oracle, ...] = QUIESCENT_ORACLES + CONVERGENCE_ORACLES


def check_quiescent(ctx: CheckContext) -> List[Verdict]:
    """Evaluate every quiescent-point oracle."""
    return [oracle(ctx) for oracle in QUIESCENT_ORACLES]


def check_converged(ctx: CheckContext) -> List[Verdict]:
    """Evaluate the full oracle catalogue (quiescent + convergence)."""
    return [oracle(ctx) for oracle in ALL_ORACLES]


def failed(verdicts: Sequence[Verdict]) -> List[Verdict]:
    """The violations among *verdicts*."""
    return [verdict for verdict in verdicts if not verdict.ok]
