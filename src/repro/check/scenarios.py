"""Seeded workload scenarios for the schedule explorer.

A scenario builds a small :class:`~repro.txn.system.DistributedSystem`
(2-3 sites — the small-scope hypothesis: protocol bugs show up in tiny
configurations) and pre-schedules a deterministic stream of transaction
submissions.  Submissions are simulation events, so they interleave
with whatever failure schedule the explorer applies; given the same
scenario name and seed, the traffic is identical on every run — the
failure schedule is the only degree of freedom, which is what makes
``(seed, schedule)`` artifacts replay exactly.

Scenario bodies exercise the interesting datapaths: multi-site
transfers (staging across sites), dependent copies (polyvalue
forwarding), value-independent predicates (section 3.2 collapse), and
plain increments (single-site fast path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import SimulationError
from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction

ItemId = str


@dataclass(frozen=True)
class Scenario:
    """A named, seeded system-plus-traffic builder."""

    name: str
    sites: int
    description: str
    build: Callable[..., DistributedSystem]


def _items(count: int) -> Dict[ItemId, int]:
    return {f"item-{index}": 100 for index in range(count)}


def _transfer(source: ItemId, target: ItemId, amount: int) -> Transaction:
    def body(ctx):
        ctx.write(source, ctx.read(source) - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(
        body=body, items=(source, target), label=f"move:{source}->{target}"
    )


def _increment(item: ItemId, amount: int = 1) -> Transaction:
    def body(ctx):
        ctx.write(item, ctx.read(item) + amount)

    return Transaction(body=body, items=(item,), label=f"inc:{item}")


def _copy(source: ItemId, target: ItemId) -> Transaction:
    def body(ctx):
        ctx.write(target, ctx.read(source))

    return Transaction(
        body=body, items=(source, target), label=f"copy:{source}->{target}"
    )


def _threshold(source: ItemId, target: ItemId, floor: int) -> Transaction:
    def body(ctx):
        ctx.write(target, ctx.read(source) >= floor)

    return Transaction(
        body=body, items=(source, target), label=f"ge{floor}:{source}"
    )


def _schedule_submissions(
    system: DistributedSystem,
    submissions: List[Tuple[float, Transaction]],
) -> None:
    for at, transaction in submissions:
        system.sim.schedule_at(
            at,
            lambda t=transaction: system.submit(t),
            label=f"submit:{transaction.label}",
        )


def _build_pair(
    seed: int,
    config: Optional[ProtocolConfig],
    network: Optional[Mapping] = None,
) -> DistributedSystem:
    """Two sites, one cross-site transfer then a dependent increment.

    The minimal configuration in which the in-doubt window exists at
    all: crash the coordinator mid-protocol and the remote participant
    must install polyvalues.
    """
    system = DistributedSystem.build(
        sites=2, items=_items(4), seed=seed, config=config, **(network or {})
    )
    _schedule_submissions(
        system,
        [
            (0.001, _transfer("item-0", "item-1", 30)),
            (0.9, _increment("item-1", 1)),
            (1.8, _transfer("item-1", "item-0", 5)),
        ],
    )
    return system


def _build_transfers(
    seed: int,
    config: Optional[ProtocolConfig],
    network: Optional[Mapping] = None,
) -> DistributedSystem:
    """Three sites, a braid of transfers touching every site pair."""
    system = DistributedSystem.build(
        sites=3, items=_items(6), seed=seed, config=config, **(network or {})
    )
    _schedule_submissions(
        system,
        [
            (0.001, _transfer("item-0", "item-1", 30)),
            (0.7, _transfer("item-1", "item-2", 10)),
            (1.4, _transfer("item-2", "item-0", 5)),
            (2.1, _increment("item-3", 7)),
            (2.8, _transfer("item-4", "item-5", 20)),
            (3.5, _increment("item-1", 2)),
        ],
    )
    return system


def _build_mixed(
    seed: int,
    config: Optional[ProtocolConfig],
    network: Optional[Mapping] = None,
) -> DistributedSystem:
    """Three sites; transfers plus forwarding and modal-collapse traffic.

    The copies propagate any uncertainty to a third site (section 3.3
    forwarding chains); the threshold write is value-independent, so it
    must stay simple even over polyvalued inputs (section 3.2).
    """
    system = DistributedSystem.build(
        sites=3, items=_items(6), seed=seed, config=config, **(network or {})
    )
    _schedule_submissions(
        system,
        [
            (0.001, _transfer("item-0", "item-1", 30)),
            (0.6, _copy("item-1", "item-4")),
            (1.2, _threshold("item-1", "item-5", 50)),
            (1.8, _transfer("item-1", "item-2", 10)),
            (2.4, _copy("item-2", "item-3")),
            (3.0, _increment("item-0", 3)),
        ],
    )
    return system


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="pair",
            sites=2,
            description="2 sites, one cross-site transfer + follow-ups",
            build=_build_pair,
        ),
        Scenario(
            name="transfers",
            sites=3,
            description="3 sites, transfer braid over every site pair",
            build=_build_transfers,
        ),
        Scenario(
            name="mixed",
            sites=3,
            description="3 sites, transfers + forwarding copies + modal reads",
            build=_build_mixed,
        ),
    )
}


def build_scenario(
    name: str,
    seed: int,
    *,
    config: Optional[ProtocolConfig] = None,
    network: Optional[Mapping] = None,
) -> DistributedSystem:
    """Instantiate scenario *name* with *seed*.

    *config* is the protocol configuration; *network* is an optional
    mapping of :meth:`DistributedSystem.build` network keywords
    (``loss_probability``, ``corruption_probability``,
    ``duplicate_probability``, ``jitter``, ``base_latency``) — the
    chaos campaign uses it to run the same seeded traffic over an
    unreliable network.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise SimulationError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return scenario.build(seed, config, network)
