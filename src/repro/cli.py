"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's quantitative content without writing
code:

* ``table1`` — the Table 1 model predictions;
* ``table2`` — the Table 2 Monte-Carlo comparison (configurable length);
* ``model`` — steady state, decay rate and settling time for arbitrary
  parameters;
* ``simulate`` — one Monte-Carlo run with arbitrary parameters;
* ``sweep`` — vary one parameter, model vs. (optional) simulation;
* ``demo`` — the quickstart failure/polyvalue/recovery walkthrough;
* ``report`` — run the instrumented failure scenario and print its
  metrics (``--format table|prometheus|json``);
* ``trace`` — the same scenario as per-transaction span trees (the
  in-doubt window measured end to end);
* ``events`` — the same scenario's raw event stream as JSON lines;
* ``check`` — the correctness harness: invariant oracles over
  seed-enumerated failure schedules, optional mutation smoke test,
  deterministic replay of violation artifacts;
* ``chaos`` — the resilience campaign: the same oracles over gray
  failures (site degradation, link spikes, one-way partitions) plus
  ambient loss/corruption/duplication, with the adaptive-timeout
  resilience layer in the loop (``docs/faults.md``);
* ``frontier`` — the commit-protocol bake-off: polyvalue, blocking
  2PC, Paxos Commit and path-sensitive commit over one seed-derived
  fault matrix, reporting the availability / latency / message-cost
  frontier (``docs/protocols.md``);
* ``bench`` — the hot-path performance suite behind ``BENCH_perf.json``
  (``docs/performance.md``);
* ``history`` — query the persistent campaign store: list runs, trend
  one metric across runs/PRs with deltas, or dump one run's full
  evidence (trials, metrics, verdicts, histograms);
* ``serve-dash`` — the zero-dependency live dashboard: stdlib HTTP +
  SSE streaming the observability bus of a running scenario;
* ``serve`` — a *live* cluster: the same state machines on wall-clock
  asyncio sockets, driven over a stdlib HTTP/JSON API (submit
  transaction scripts, read items, query outcomes, crash/restart
  sites; ``docs/runtime.md``);
* ``client`` — the scripted driver for ``serve`` (health, transfer,
  crash/restart, and an end-to-end crash-recovery demo).

All randomness is seeded: ``--seed`` is the campaign seed and, for the
multi-trial commands (``check``, ``chaos``, ``bench``), ``--seeds`` is
how many trials to derive from it (one walk seed per trial via
``repro.parallel.seeds.trial_seed``), so every invocation is
reproducible.  The campaign commands (``check``, ``chaos``, ``table2``,
``sweep``, ``bench``) take ``--jobs N`` to shard trials over N worker
processes; results are bit-identical for every N, and ``--jobs 1`` is
the exact serial in-process path.  Each of them also takes ``--store``
(or honours ``REPRO_STORE``) to record the run — seeds, trial rows,
oracle verdicts, metrics, in-doubt histograms — into the SQLite
campaign store that ``repro history`` queries.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence, Tuple

from repro.analysis.model import (
    ModelParams,
    UnstableRegimeError,
    decay_rate,
    steady_state_polyvalues,
    table1_rows,
    table2_rows,
    time_to_settle,
)
from repro.analysis.montecarlo import simulate, simulate_many
from repro.analysis.sweep import SWEEPABLE, format_sweep_table, sweep
from repro.txn.config import PROTOCOL_NAMES

#: Protocols `repro serve` can run live (pathsensitive is sim-only;
#: mirrors repro.live.cluster.LIVE_PROTOCOLS without importing asyncio
#: machinery at CLI startup).
LIVE_PROTOCOL_NAMES = ("polyvalue", "blocking", "relaxed", "paxos")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="campaign-engine worker processes (default: "
                        "all cores; 1 = the serial in-process path; "
                        "results are identical for every value)")


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="record this run into the campaign store "
                        "(bare --store or $REPRO_STORE uses "
                        ".repro/campaigns.sqlite; query with "
                        "'repro history')")


def _open_recorder(
    args: argparse.Namespace,
    command: str,
    *,
    label: str = "",
    config: Optional[dict] = None,
    campaign_seed: Optional[int] = None,
    jobs: Optional[int] = None,
    with_bus: bool = True,
) -> Tuple[Optional[object], Optional[object]]:
    """(recorder, bus) when campaign recording is on, else (None, None).

    Recording is opt-in: the ``--store`` flag or a ``REPRO_STORE``
    environment variable turns it on; the recorder appends the run row
    immediately and streams ``campaign.*`` trial events from *bus*.
    """
    if args.store is None and not os.environ.get("REPRO_STORE"):
        return None, None
    from repro.obs.events import EventBus
    from repro.obs.store import (
        CampaignRecorder,
        CampaignStore,
        default_store_path,
    )

    store = CampaignStore(default_store_path(args.store or None))
    bus = EventBus() if with_bus else None
    recorder = CampaignRecorder(
        store,
        command=command,
        label=label,
        campaign_seed=campaign_seed,
        jobs=jobs,
        config=config,
        bus=bus,
    )
    return recorder, bus


def _add_model_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--updates", "-u", type=float, default=10,
                        help="U: updates per second (default 10)")
    parser.add_argument("--failure-probability", "-f", type=float,
                        default=0.0001, help="F: per-update failure "
                        "probability (default 1e-4)")
    parser.add_argument("--items", "-i", type=float, default=1_000_000,
                        help="I: database items (default 1e6)")
    parser.add_argument("--recovery-rate", "-r", type=float, default=0.001,
                        help="R: fraction of failures recovered per second "
                        "(default 1e-3)")
    parser.add_argument("--dependency-mean", "-d", type=float, default=1,
                        help="D: mean items a new value depends on "
                        "(default 1)")
    parser.add_argument("--update-independence", "-y", type=float, default=0,
                        help="Y: probability the new value ignores the old "
                        "(default 0)")


def _params_from(args: argparse.Namespace) -> ModelParams:
    return ModelParams(
        updates_per_second=args.updates,
        failure_probability=args.failure_probability,
        items=args.items,
        recovery_rate=args.recovery_rate,
        dependency_mean=args.dependency_mean,
        update_independence=args.update_independence,
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    print("Table 1: predicted steady-state polyvalue count")
    print(f"{'U':>6} {'F':>8} {'I':>10} {'R':>7} {'Y':>3} {'D':>3} "
          f"{'model P':>9} {'paper P':>8}  note")
    for row in table1_rows():
        p = row.params
        paper = f"{row.paper_value:.2f}" if row.paper_value is not None else "-"
        print(f"{p.U:>6g} {p.F:>8g} {p.I:>10g} {p.R:>7g} {p.Y:>3g} "
              f"{p.D:>3g} {row.model_value:>9.2f} {paper:>8}  {row.note}")
    return 0


def _finish_recorder(recorder, ok: bool) -> None:
    """Stamp and close an optional campaign recorder (no-op when off)."""
    if recorder is not None:
        recorder.finish(ok=ok)
        recorder.store.close()


def _add_campaign_metrics(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign-metrics", metavar="PATH", default=None,
                        help="after the run, write the campaign.* progress "
                        "metrics in Prometheus text exposition format to "
                        "PATH ('-' prints the human report table instead)")


def _add_campaign_flags(
    parser: argparse.ArgumentParser,
    *,
    jobs: bool = True,
    store: bool = True,
    metrics: bool = True,
    protocol: bool = False,
    protocol_multiple: bool = False,
    protocol_default: Optional[str] = None,
    protocol_choices: Sequence[str] = PROTOCOL_NAMES,
    protocol_help: str = "commit protocol to run",
) -> None:
    """The flag block every campaign/cluster driver shares.

    One definition of ``--jobs`` / ``--store`` / ``--campaign-metrics``
    / ``--protocol`` so the drivers (table2, sweep, check, chaos,
    bench, frontier, serve-dash, serve) present identical spellings,
    defaults and help text; each driver toggles only which flags apply.
    """
    if jobs:
        _add_jobs(parser)
    if store:
        _add_store(parser)
    if metrics:
        _add_campaign_metrics(parser)
    if protocol:
        if protocol_multiple:
            parser.add_argument("--protocol", action="append",
                                choices=protocol_choices,
                                help=protocol_help)
        else:
            parser.add_argument("--protocol", choices=protocol_choices,
                                default=protocol_default,
                                help=protocol_help)


def _attach_campaign_metrics(args, bus):
    """(metrics, bus) with a CampaignMetrics subscribed when requested.

    Creates the driver bus if campaign recording didn't already, so
    ``--campaign-metrics`` works with or without ``--store``.
    """
    if not getattr(args, "campaign_metrics", None):
        return None, bus
    from repro.obs.events import EventBus
    from repro.obs.export import CampaignMetrics

    if bus is None:
        bus = EventBus()
    return CampaignMetrics(bus), bus


def _flush_campaign_metrics(args, metrics) -> None:
    """Render the accumulated campaign metrics where the user asked."""
    if metrics is None:
        return
    from repro.obs.export import prometheus_text, render_report

    if args.campaign_metrics == "-":
        print(render_report(metrics))
    else:
        with open(args.campaign_metrics, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(metrics.registry))
        print(f"campaign metrics written to {args.campaign_metrics}")


def _cmd_table2(args: argparse.Namespace) -> int:
    print("Table 2: Monte-Carlo simulation vs model "
          f"(duration={args.duration:g}s, seed={args.seed})")
    print(f"{'U':>4} {'F':>7} {'R':>6} {'I':>7} {'Y':>3} {'D':>3} "
          f"{'sim P':>8} {'model P':>8} {'paper sim':>10} {'paper pred':>11}")
    rows = list(table2_rows())
    recorder, bus = _open_recorder(
        args, "table2", label="table2",
        config={"duration": args.duration, "seed": args.seed},
        campaign_seed=args.seed, jobs=args.jobs,
    )
    cmetrics, bus = _attach_campaign_metrics(args, bus)
    ok = False
    try:
        results = simulate_many(
            [row.params for row in rows],
            duration=args.duration,
            seed=args.seed,
            jobs=args.jobs,
            bus=bus,
        )
        for row, result in zip(rows, results):
            p = row.params
            print(f"{p.U:>4g} {p.F:>7g} {p.R:>6g} {p.I:>7g} {p.Y:>3g} "
                  f"{p.D:>3g} {result.mean_polyvalues:>8.2f} "
                  f"{row.model_value:>8.2f} {row.paper_actual:>10.2f} "
                  f"{row.paper_predicted:>11.2f}")
        if recorder is not None:
            from repro.obs.store import record_table2

            record_table2(recorder.store, recorder.run_id, rows, results)
        ok = True
    finally:
        _finish_recorder(recorder, ok=ok)
        _flush_campaign_metrics(args, cmetrics)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    params = _params_from(args)
    try:
        steady = steady_state_polyvalues(params)
    except UnstableRegimeError as error:
        print(f"UNSTABLE regime: {error}")
        return 1
    rate = decay_rate(params)
    print(f"steady-state polyvalues  P   = {steady:.4f}")
    print(f"fraction of database     P/I = {steady / params.items:.3e}")
    print(f"decay rate               λ   = {rate:.6g} /s "
          f"(time constant {1 / rate:.4g} s)")
    print(f"settling time (1% of a burst) = "
          f"{time_to_settle(params, steady + 1000):.4g} s")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = _params_from(args)
    result = simulate(params, duration=args.duration, seed=args.seed)
    print(f"duration          {result.duration:g} simulated seconds")
    print(f"transactions      {result.transactions}")
    print(f"failures          {result.failures}")
    print(f"recoveries        {result.recoveries}")
    print(f"polytransactions  {result.polytransactions}")
    print(f"mean polyvalues   {result.mean_polyvalues:.3f}")
    try:
        print(f"model prediction  {result.model_prediction:.3f}")
    except UnstableRegimeError:
        print("model prediction  (unstable regime)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        values = [float(v) for v in args.values.split(",")]
    except ValueError:
        print(f"error: --values must be comma-separated numbers, got "
              f"{args.values!r}", file=sys.stderr)
        return 2
    base = _params_from(args)
    recorder, bus = _open_recorder(
        args, "sweep", label=f"sweep:{args.parameter}",
        config={
            "parameter": args.parameter,
            "values": values,
            "simulate": bool(args.simulate),
            "duration": args.duration if args.simulate else None,
            "seed": args.seed,
        },
        campaign_seed=args.seed, jobs=args.jobs,
    )
    cmetrics, bus = _attach_campaign_metrics(args, bus)
    ok = False
    try:
        points = sweep(
            base,
            args.parameter,
            values,
            run_simulation=args.simulate,
            duration=args.duration if args.simulate else None,
            seed=args.seed,
            jobs=args.jobs,
            bus=bus,
        )
        print(format_sweep_table(points))
        if recorder is not None:
            from repro.obs.store import record_sweep

            record_sweep(recorder.store, recorder.run_id, points)
        ok = True
    finally:
        _finish_recorder(recorder, ok=ok)
        _flush_campaign_metrics(args, cmetrics)
    return 0


def _observed_scenario(
    seed: int,
    settle: float = 5.0,
    *,
    spans: bool = False,
    events: bool = False,
):
    """The demo's failure scenario with observability attached.

    A little healthy traffic, then a transfer whose coordinator crashes
    mid-protocol: the participant's wait phase times out, it installs
    polyvalues (the in-doubt window opens), the coordinator recovers,
    and the §3.3 outcome machinery closes the window.  Returns
    ``(system, span_tracer_or_None, event_log_or_None)``.
    """
    from repro.obs.events import EventLog
    from repro.obs.spans import SpanTracer
    from repro.txn.system import DistributedSystem
    from repro.txn.transaction import Transaction

    system = DistributedSystem.build(
        sites=3,
        items={"alice": 100, "bob": 100, "carol": 100},
        seed=seed,
        jitter=0.0,
    )
    span_tracer = SpanTracer(system.bus) if spans else None
    event_log = EventLog(system.bus) if events else None

    def bump(ctx):
        ctx.write("carol", ctx.read("carol") + 1)

    def transfer(ctx):
        a = ctx.read("alice")
        ctx.write("alice", a - 25)
        ctx.write("bob", ctx.read("bob") + 25)

    for _ in range(3):
        system.submit(Transaction(body=bump, items=("carol",)))
        system.run_for(0.2)
    system.submit(Transaction(body=transfer, items=("alice", "bob")))
    system.run_for(0.035)
    system.crash_site("site-0")
    system.run_for(1.0)
    system.recover_site("site-0")
    system.run_for(settle)
    return system, span_tracer, event_log


def _cmd_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.export import prometheus_text, render_report

    system, _, _ = _observed_scenario(args.seed, args.duration)
    metrics = system.metrics
    if args.format == "prometheus":
        sys.stdout.write(prometheus_text(metrics.registry))
    elif args.format == "json":
        print(_json.dumps(metrics.summary(), sort_keys=True))
    else:
        print(render_report(metrics))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    _, tracer, _ = _observed_scenario(args.seed, spans=True)
    print(tracer.render(args.txn))
    windows = tracer.in_doubt_windows()
    if windows and args.txn is None:
        print()
        print(f"{len(windows)} in-doubt window(s):")
        for span in windows:
            print("  " + span.describe())
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from repro.obs.export import events_to_jsonl

    _, _, log = _observed_scenario(args.seed, args.duration, events=True)
    events = log.for_txn(args.txn) if args.txn else log.events
    print(events_to_jsonl(events))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.txn.system import DistributedSystem
    from repro.txn.transaction import Transaction

    system = DistributedSystem.build(
        sites=3,
        items={"alice": 100, "bob": 100, "carol": 100},
        seed=args.seed,
        jitter=0.0,
    )

    def transfer(ctx):
        a = ctx.read("alice")
        ctx.write("alice", a - 25)
        ctx.write("bob", ctx.read("bob") + 25)

    print("initial:", system.database_state())
    system.submit(Transaction(body=transfer, items=("alice", "bob")))
    system.run_for(0.035)
    system.crash_site("site-0")
    system.run_for(1.0)
    print("in-doubt window hit; bob =", system.read_item("bob"))
    system.recover_site("site-0")
    system.run_for(5.0)
    print("after recovery:", system.database_state())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import explore, replay, run_mutation_smoke
    from repro.check.scenarios import SCENARIOS

    if args.replay:
        result = replay(args.replay, artifact_dir=args.artifact_dir)
        print(f"replayed {args.replay}:")
        print(f"  {result.events_processed} events, "
              f"{result.quiescent_checkpoints} quiescent checkpoints")
        if result.ok:
            print("  all oracles passed (the recorded violation is fixed)")
            return 0
        for violation in result.violations:
            print(f"  {violation}")
        return 1

    exit_code = 0
    scenarios = (
        tuple(args.scenario) if args.scenario else tuple(SCENARIOS)
    )
    recorder, bus = _open_recorder(
        args, "check", label="explore",
        config={
            "scenarios": list(scenarios),
            "seeds": args.seeds,
            "steps": args.steps,
            "enumeration": not args.no_enumeration,
            "seed": args.seed,
        },
        campaign_seed=args.seed, jobs=args.jobs,
    )
    cmetrics, bus = _attach_campaign_metrics(args, bus)
    try:
        if not args.mutation_only:
            report = explore(
                scenarios=scenarios,
                campaign_seed=args.seed,
                trials=args.seeds,
                steps=args.steps,
                include_enumeration=not args.no_enumeration,
                artifact_dir=args.artifact_dir,
                jobs=args.jobs,
                bus=bus,
                protocol=args.protocol,
            )
            for line in report.summary_lines():
                print(line)
            if not report.ok:
                exit_code = 1
            if recorder is not None:
                from repro.obs.store import record_exploration_report

                record_exploration_report(
                    recorder.store, recorder.run_id, report
                )
        if args.mutation or args.mutation_only:
            from repro.check.mutation import run_protocol_mutation_smoke

            for runner in (run_mutation_smoke, run_protocol_mutation_smoke):
                smoke = runner(seed=args.seed, artifact_dir=args.artifact_dir)
                for line in smoke.summary_lines():
                    print(line)
                if not smoke.ok:
                    exit_code = 1
    finally:
        _finish_recorder(recorder, ok=exit_code == 0)
        _flush_campaign_metrics(args, cmetrics)
    return exit_code


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosProfile, replay_chaos, run_campaign

    if args.replay:
        result = replay_chaos(args.replay)
        print(f"replayed {args.replay}:")
        print(f"  {result.events_processed} events, "
              f"{result.quiescent_checkpoints} quiescent checkpoints")
        if result.ok:
            print("  all oracles passed (the recorded violation is fixed)")
            return 0
        for violation in result.violations:
            print(f"  {violation}")
        return 1

    profile = ChaosProfile(
        loss_probability=args.loss,
        corruption_probability=args.corruption,
        duplicate_probability=args.duplicates,
        degrade_factor=args.degrade_factor,
        spike_factor=args.spike_factor,
        adaptive=not args.fixed_timeouts,
        polyvalue_budget=args.polyvalue_budget,
        protocol=args.protocol,
    )
    recorder, bus = _open_recorder(
        args, "chaos", label="chaos",
        config={
            "profile": profile.to_dict(),
            "scenarios": list(args.scenario) if args.scenario else None,
            "seeds": args.seeds,
            "steps": args.steps,
            "smoke": bool(args.smoke),
            "seed": args.seed,
        },
        campaign_seed=args.seed, jobs=args.jobs,
    )
    cmetrics, bus = _attach_campaign_metrics(args, bus)
    ok = False
    try:
        report = run_campaign(
            profile=profile,
            scenarios=tuple(args.scenario) if args.scenario else None,
            campaign_seed=args.seed,
            trials=args.seeds,
            steps=args.steps,
            smoke=args.smoke,
            artifact_dir=args.artifact_dir,
            jobs=args.jobs,
            bus=bus,
        )
        for line in report.summary_lines():
            print(line)
        if recorder is not None:
            from repro.obs.store import record_exploration_report

            record_exploration_report(recorder.store, recorder.run_id, report)
        ok = report.ok
    finally:
        _finish_recorder(recorder, ok=ok)
        _flush_campaign_metrics(args, cmetrics)
    return 0 if ok else 1


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.frontier import FRONTIER_PROTOCOLS, run_frontier

    protocols = tuple(args.protocol) if args.protocol else FRONTIER_PROTOCOLS
    recorder, bus = _open_recorder(
        args, "frontier", label="smoke" if args.smoke else "full",
        config={
            "protocols": list(protocols),
            "scenarios": list(args.scenario) if args.scenario else None,
            "trials": args.seeds,
            "smoke": bool(args.smoke),
            "seed": args.seed,
        },
        campaign_seed=args.seed, jobs=args.jobs,
    )
    cmetrics, bus = _attach_campaign_metrics(args, bus)
    ok = False
    try:
        report = run_frontier(
            campaign_seed=args.seed,
            trials=args.seeds,
            scenarios=tuple(args.scenario) if args.scenario else None,
            protocols=protocols,
            smoke=args.smoke,
            jobs=args.jobs,
            bus=bus,
        )
        for line in report.summary_lines():
            print(line)
        if args.output:
            from repro.parallel.artifacts import write_json

            write_json(report.to_bench(), args.output)
            print(f"wrote {args.output}")
        ok = report.ok
    finally:
        _finish_recorder(recorder, ok=ok)
        _flush_campaign_metrics(args, cmetrics)
    return 0 if ok else 1


def _looks_like_store(path: str) -> bool:
    """True when a ``--check-against`` target is a campaign store
    (the literal word ``store``, a SQLite file, or a ``.sqlite`` path)
    rather than a committed ``BENCH_perf.json``."""
    if path == "store":
        return True
    try:
        with open(path, "rb") as handle:
            return handle.read(16).startswith(b"SQLite format 3")
    except OSError:
        return path.endswith(".sqlite")


def _bench_baseline(args: argparse.Namespace, recorder):
    """Resolve the ``--check-against`` baseline payload, or None.

    A JSON path loads the committed file (the original contract); a
    store path compares against the newest *finished* bench run in the
    stored history — excluding the run being recorded right now.
    """
    import json as _json

    if not _looks_like_store(args.check_against):
        with open(args.check_against, encoding="utf-8") as handle:
            return _json.load(handle)
    from repro.obs.store import (
        CampaignStore,
        bench_baseline_from_run,
        default_store_path,
    )

    path = (
        default_store_path(args.store or None)
        if args.check_against == "store"
        else args.check_against
    )
    if recorder is not None and recorder.store.path == path:
        baseline_run = recorder.store.latest_run(
            "bench", before=recorder.run_id
        )
        if baseline_run is None:
            return None
        return bench_baseline_from_run(recorder.store, baseline_run)
    with CampaignStore(path) as store:
        baseline_run = store.latest_run("bench")
        if baseline_run is None:
            return None
        return bench_baseline_from_run(store, baseline_run)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        check_regression,
        render_report as render_bench_report,
        run_benchmarks,
        write_report,
    )

    recorder, _ = _open_recorder(
        args, "bench", label="smoke" if args.smoke else "full",
        config={
            "mode": "smoke" if args.smoke else "full",
            "seed": args.seed,
            "explorer_seeds": args.seeds,
        },
        campaign_seed=args.seed, jobs=args.jobs, with_bus=False,
    )
    exit_code = 0
    try:
        report = run_benchmarks(
            smoke=args.smoke,
            explorer_seeds=args.seeds,
            seed=args.seed,
            jobs=args.jobs,
            frontier_protocols=(
                tuple(args.protocol) if args.protocol else None
            ),
        )
        print(render_bench_report(report))
        if recorder is not None:
            from repro.obs.store import record_bench_report

            record_bench_report(recorder.store, recorder.run_id, report)
        if args.output:
            write_report(report, args.output)
            print(f"wrote {args.output}")
        if args.check_against:
            baseline = _bench_baseline(args, recorder)
            if baseline is None:
                print(
                    f"no bench history to compare against in "
                    f"{args.check_against}",
                    file=sys.stderr,
                )
                exit_code = 1
            else:
                failures = check_regression(
                    report, baseline, max_regression=args.max_regression
                )
                if failures:
                    for failure in failures:
                        print(f"REGRESSION: {failure}", file=sys.stderr)
                    exit_code = 1
                else:
                    against = args.check_against
                    if "run_id" in baseline:
                        against += f" (run {baseline['run_id']})"
                    print(
                        f"no regression vs {against} "
                        f"(tolerance {args.max_regression:.0%})"
                    )
    finally:
        _finish_recorder(recorder, ok=exit_code == 0)
    return exit_code


def _parse_since(text: str) -> float:
    """``--since`` forms: ISO date (2026-08-01), a relative age (7d,
    12h, 30m), or raw POSIX seconds."""
    import time as _time
    from datetime import datetime

    suffixes = {"d": 86400.0, "h": 3600.0, "m": 60.0}
    if text and text[-1] in suffixes and text[:-1]:
        try:
            return _time.time() - float(text[:-1]) * suffixes[text[-1]]
        except ValueError:
            pass
    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--since must be an ISO date, an age like 7d/12h/30m, or "
            f"POSIX seconds; got {text!r}"
        )


def _stamp(posix: Optional[float]) -> str:
    from datetime import datetime

    if posix is None:
        return "-"
    return datetime.fromtimestamp(posix).strftime("%Y-%m-%d %H:%M:%S")


def _history_runs(store, args) -> int:
    import json as _json

    runs = store.runs(
        command=args.command, since=args.since, limit=args.limit
    )
    if args.format == "json":
        print(_json.dumps([run.to_dict() for run in runs], sort_keys=True))
        return 0
    if not runs:
        print("no matching runs")
        return 0
    print(f"{'id':>4} {'command':<8} {'label':<12} "
          f"{'started':<19} {'trials':>6} {'fail':>4} {'ok':>4} "
          f"{'wall':>8} fingerprint")
    for run in runs:
        ok = "-" if run.ok is None else ("yes" if run.ok else "NO")
        wall = "-" if run.wall_seconds is None else f"{run.wall_seconds:.2f}s"
        print(f"{run.id:>4} {run.command:<8} {run.label[:12]:<12} "
              f"{_stamp(run.started_at):<19} {run.trials:>6} "
              f"{run.failures:>4} {ok:>4} {wall:>8} {run.fingerprint}")
    return 0


def _history_metric(store, args) -> int:
    import json as _json

    rows = store.metric_history(
        args.metric, command=args.command, since=args.since,
        limit=args.limit,
    )
    if args.format == "json":
        print(_json.dumps(
            [
                {
                    "run_id": run.id,
                    "command": run.command,
                    "started_at": run.started_at,
                    "value": value,
                }
                for run, value in rows
            ],
            sort_keys=True,
        ))
        return 0
    if not rows:
        known = ", ".join(store.metric_names()) or "(store is empty)"
        print(f"no history for metric {args.metric!r}; known: {known}")
        return 1
    print(f"metric {args.metric}")
    print(f"{'id':>4} {'command':<8} {'started':<19} "
          f"{'value':>14} {'delta':>12}")
    previous = None
    for run, value in rows:
        if previous in (None, 0):
            delta = "-"
        else:
            delta = f"{(value - previous) / abs(previous):+.1%}"
        print(f"{run.id:>4} {run.command:<8} {_stamp(run.started_at):<19} "
              f"{value:>14g} {delta:>12}")
        previous = value
    return 0


def _history_run_detail(store, args) -> int:
    import json as _json

    run = store.run(args.run)
    trials = store.trials(run.id)
    metrics = store.metrics(run.id)
    verdicts = store.verdicts(run.id)
    hists = {
        name: store.histogram(run.id, name)
        for name in store.histogram_names(run.id)
    }
    if args.format == "json":
        print(_json.dumps(
            {
                "run": run.to_dict(),
                "trials": [
                    {
                        "index": t.index,
                        "seed": t.seed,
                        "scenario": t.scenario,
                        "label": t.label,
                        "ok": t.ok,
                        "detail": t.detail,
                    }
                    for t in trials
                ],
                "metrics": metrics,
                "verdicts": [
                    {
                        "trial_index": v.trial_index,
                        "phase": v.phase,
                        "oracle": v.oracle,
                        "ok": v.ok,
                        "details": v.details,
                    }
                    for v in verdicts
                ],
                "histograms": hists,
            },
            sort_keys=True,
        ))
        return 0
    ok = "-" if run.ok is None else ("ok" if run.ok else "FAILED")
    wall = "-" if run.wall_seconds is None else f"{run.wall_seconds:.2f}s"
    print(f"run {run.id}: {run.command} [{run.label}] {ok}")
    print(f"  started  {_stamp(run.started_at)}   finished "
          f"{_stamp(run.finished_at)}   wall {wall}")
    print(f"  seed {run.campaign_seed}  jobs {run.jobs}  "
          f"fingerprint {run.fingerprint}")
    print(f"  trials {run.trials}  failures {run.failures}")
    if metrics:
        print("  metrics:")
        for name in sorted(metrics):
            print(f"    {name:<32} {metrics[name]:g}")
    failing = [v for v in verdicts if not v.ok]
    if verdicts:
        passed = len(verdicts) - len(failing)
        print(f"  verdicts: {passed} ok, {len(failing)} failed")
        for verdict in failing:
            where = (
                "" if verdict.trial_index is None
                else f" trial {verdict.trial_index}"
            )
            print(f"    FAIL {verdict.oracle}{where} "
                  f"[{verdict.phase}]: {verdict.details}")
    for name, pairs in sorted(hists.items()):
        print(f"  histogram {name}:")
        for bound, count in pairs:
            label = "+Inf" if bound == float("inf") else f"{bound:g}"
            print(f"    le {label:<8} {count}")
    failed_trials = [t for t in trials if t.ok is False]
    if failed_trials:
        print(f"  failed trials ({len(failed_trials)}):")
        for trial in failed_trials:
            reason = trial.detail.get("error", "")
            print(f"    #{trial.index} {trial.label or trial.scenario}"
                  f"{': ' + reason if reason else ''}")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from repro.obs.store import CampaignStore, default_store_path

    path = default_store_path(args.store or None)
    if not os.path.exists(path):
        print(f"no campaign store at {path} (record one with "
              f"--store on check/chaos/bench/table2/sweep)",
              file=sys.stderr)
        return 1
    with CampaignStore(path) as store:
        if args.run is not None:
            return _history_run_detail(store, args)
        if args.metric:
            return _history_metric(store, args)
        return _history_runs(store, args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.live.httpapi import run_serve

    run_serve(
        sites=args.sites,
        protocol=args.protocol,
        seed=args.seed,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
    )
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.live.client import main as client_main

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    return client_main(rest)


def _cmd_serve_dash(args: argparse.Namespace) -> int:
    from repro.obs.live import serve_dash

    serve_dash(
        host=args.host,
        port=args.port,
        scenario=args.scenario,
        seed=args.seed,
        trials=args.trials,
        jobs=args.jobs,
        duration=args.duration,
        verbose=args.verbose,
        on_start=lambda server: print(
            f"dashboard on {server.url} "
            f"(scenario={args.scenario}, Ctrl-C to stop)"
        ),
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Montgomery's Polyvalues (SOSP 1979)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="print Table 1 (model)")
    table1.set_defaults(handler=_cmd_table1)

    table2 = commands.add_parser("table2", help="run Table 2 (Monte-Carlo)")
    table2.add_argument("--duration", type=float, default=2000.0)
    table2.add_argument("--seed", type=int, default=0)
    _add_campaign_flags(table2)
    table2.set_defaults(handler=_cmd_table2)

    model = commands.add_parser("model", help="evaluate the analytic model")
    _add_model_params(model)
    model.set_defaults(handler=_cmd_model)

    sim = commands.add_parser("simulate", help="one Monte-Carlo run")
    _add_model_params(sim)
    sim.add_argument("--duration", type=float, default=None)
    sim.add_argument("--seed", type=int, default=0)
    sim.set_defaults(handler=_cmd_simulate)

    sweep_cmd = commands.add_parser("sweep", help="sweep one parameter")
    _add_model_params(sweep_cmd)
    sweep_cmd.add_argument("--parameter", "-p", required=True,
                           choices=SWEEPABLE)
    sweep_cmd.add_argument("--values", "-v", required=True,
                           help="comma-separated values")
    sweep_cmd.add_argument("--simulate", action="store_true",
                           help="also run the Monte-Carlo sim per point")
    sweep_cmd.add_argument("--duration", type=float, default=None)
    sweep_cmd.add_argument("--seed", type=int, default=0)
    _add_campaign_flags(sweep_cmd)
    sweep_cmd.set_defaults(handler=_cmd_sweep)

    demo = commands.add_parser("demo", help="failure/polyvalue walkthrough")
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(handler=_cmd_demo)

    report = commands.add_parser(
        "report", help="metrics of the instrumented failure scenario"
    )
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--duration", type=float, default=5.0,
                        help="settle time after recovery (default 5)")
    report.add_argument("--format", choices=("table", "prometheus", "json"),
                        default="table")
    report.set_defaults(handler=_cmd_report)

    trace = commands.add_parser(
        "trace", help="per-transaction span trees of the scenario"
    )
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--txn", default=None,
                       help="only this transaction's tree")
    trace.set_defaults(handler=_cmd_trace)

    events = commands.add_parser(
        "events", help="the scenario's event stream as JSON lines"
    )
    events.add_argument("--seed", type=int, default=7)
    events.add_argument("--duration", type=float, default=5.0)
    events.add_argument("--txn", default=None,
                        help="only this transaction's events")
    events.set_defaults(handler=_cmd_events)

    check = commands.add_parser(
        "check",
        help="run the correctness harness (oracles + schedule explorer)",
    )
    check.add_argument("--seed", type=int, default=0,
                       help="campaign seed the walk seeds derive from "
                       "(default 0)")
    check.add_argument("--seeds", type=int, default=10,
                       help="number of random-walk trials (default 10)")
    check.add_argument("--steps", type=int, default=12,
                       help="failure actions per random walk (default 12)")
    check.add_argument("--scenario", action="append",
                       help="restrict to this scenario (repeatable)")
    check.add_argument("--no-enumeration", action="store_true",
                       help="skip the systematic small-scope schedules")
    check.add_argument("--mutation", action="store_true",
                       help="also run the mutation smoke test")
    check.add_argument("--mutation-only", action="store_true",
                       help="run only the mutation smoke test")
    check.add_argument("--artifact-dir", default=None,
                       help="write replayable (seed, schedule) artifacts "
                       "for violations here")
    check.add_argument("--replay", default=None, metavar="ARTIFACT",
                       help="re-execute a violation artifact instead of "
                       "exploring")
    _add_campaign_flags(check, protocol=True,
                        protocol_help="explore this commit protocol instead "
                        "of the default polyvalue system")
    check.set_defaults(handler=_cmd_check)

    chaos = commands.add_parser(
        "chaos",
        help="run the resilience campaign (gray failures + lossy network)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed the walk seeds derive from "
                       "(default 0)")
    chaos.add_argument("--seeds", type=int, default=10,
                       help="number of chaos-walk trials (default 10)")
    chaos.add_argument("--steps", type=int, default=14,
                       help="failure actions per chaos walk (default 14)")
    chaos.add_argument("--scenario", action="append",
                       help="restrict to this scenario (repeatable)")
    chaos.add_argument("--smoke", action="store_true",
                       help="shrunken scenario/steps budget for CI")
    chaos.add_argument("--loss", type=float, default=0.02,
                       help="ambient per-message loss probability "
                       "(default 0.02)")
    chaos.add_argument("--corruption", type=float, default=0.01,
                       help="ambient corruption probability (default 0.01)")
    chaos.add_argument("--duplicates", type=float, default=0.02,
                       help="ambient duplication probability (default 0.02)")
    chaos.add_argument("--degrade-factor", type=float, default=5.0,
                       help="site gray-degradation latency multiplier "
                       "(default 5)")
    chaos.add_argument("--spike-factor", type=float, default=10.0,
                       help="directed link-spike latency multiplier "
                       "(default 10)")
    chaos.add_argument("--fixed-timeouts", action="store_true",
                       help="pin the fixed-timeout baseline instead of "
                       "the adaptive policy")
    chaos.add_argument("--polyvalue-budget", type=int, default=None,
                       help="per-site polyvalue budget (overload valve; "
                       "default off)")
    chaos.add_argument("--artifact-dir", default=None,
                       help="write replayable (schedule, profile) "
                       "artifacts for violations here")
    chaos.add_argument("--replay", default=None, metavar="ARTIFACT",
                       help="re-execute a chaos violation artifact "
                       "instead of exploring")
    _add_campaign_flags(chaos, protocol=True, protocol_default="polyvalue",
                        protocol_help="commit protocol the campaign "
                        "stresses (default polyvalue; see "
                        "docs/protocols.md)")
    chaos.set_defaults(handler=_cmd_chaos)

    bench = commands.add_parser(
        "bench",
        help="hot-path performance benchmarks (writes BENCH_perf.json)",
    )
    bench.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
    bench.add_argument("--seeds", type=int, default=None,
                       help="explorer trial count (default: 25 full, 5 smoke)")
    bench.add_argument("--smoke", action="store_true",
                       help="shrunken budgets for CI")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="write the JSON payload here")
    bench.add_argument("--check-against", default=None, metavar="BASELINE",
                       help="fail if a machine-relative guard regressed "
                       "vs this baseline: a committed BENCH_perf.json, "
                       "a campaign-store .sqlite (newest stored bench "
                       "run), or the word 'store' (the default store)")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed relative guard regression (default 0.25)")
    _add_campaign_flags(bench, metrics=False, protocol=True,
                        protocol_multiple=True,
                        protocol_help="restrict the frontier bake-off to "
                        "these protocols (repeatable; default: all four "
                        "peers)")
    bench.set_defaults(handler=_cmd_bench)

    frontier = commands.add_parser(
        "frontier",
        help="the commit-protocol bake-off: four protocols, one fault "
        "matrix (availability / latency / message cost)",
    )
    frontier.add_argument("--seed", type=int, default=0,
                          help="campaign seed the fault matrix derives "
                          "from (default 0)")
    frontier.add_argument("--seeds", type=int, default=4,
                          help="fail-stop walks per scenario (default 4)")
    frontier.add_argument("--smoke", action="store_true",
                          help="shrunken scenario/walk budget for CI")
    frontier.add_argument("--scenario", action="append",
                          help="restrict to this scenario (repeatable)")
    frontier.add_argument("--output", default=None, metavar="PATH",
                          help="write the results/guards JSON payload here")
    _add_campaign_flags(frontier, protocol=True, protocol_multiple=True,
                        protocol_help="restrict to this protocol "
                        "(repeatable; default: polyvalue, blocking, "
                        "paxos, pathsensitive)")
    frontier.set_defaults(handler=_cmd_frontier)

    history = commands.add_parser(
        "history",
        help="query the campaign store (runs, trends, run detail)",
    )
    history.add_argument("--store", default=None, metavar="PATH",
                         help="store path (default "
                         ".repro/campaigns.sqlite or $REPRO_STORE)")
    history.add_argument("--command", default=None,
                         choices=("check", "chaos", "bench", "table2",
                                  "sweep", "frontier"),
                         help="only runs of this command")
    history.add_argument("--metric", default=None, metavar="NAME",
                         help="trend one stored metric across runs, "
                         "with consecutive deltas")
    history.add_argument("--since", type=_parse_since, default=None,
                         help="only runs since: ISO date, age (7d, 12h, "
                         "30m) or POSIX seconds")
    history.add_argument("--limit", type=int, default=None, metavar="N",
                         help="keep only the newest N entries")
    history.add_argument("--run", type=int, default=None, metavar="ID",
                         help="full detail of one run (trials, metrics, "
                         "verdicts, histograms)")
    history.add_argument("--format", choices=("table", "json"),
                         default="table")
    history.set_defaults(handler=_cmd_history)

    dash = commands.add_parser(
        "serve-dash",
        help="live dashboard: stdlib HTTP + SSE over the event bus",
    )
    dash.add_argument("--host", default="127.0.0.1")
    dash.add_argument("--port", type=int, default=8537,
                      help="TCP port (0 = ephemeral; default 8537)")
    dash.add_argument("--scenario", choices=("demo", "chaos"),
                      default="demo",
                      help="what drives the stream: the looping "
                      "coordinator-crash walkthrough or looping smoke "
                      "chaos campaigns")
    dash.add_argument("--seed", type=int, default=7)
    dash.add_argument("--trials", type=int, default=2,
                      help="trials per chaos campaign iteration")
    _add_campaign_flags(dash, store=False, metrics=False)
    dash.add_argument("--duration", type=float, default=None,
                      help="stop after this many wall seconds "
                      "(default: run until Ctrl-C)")
    dash.add_argument("--verbose", action="store_true",
                      help="log every HTTP request")
    dash.set_defaults(handler=_cmd_serve_dash)

    serve = commands.add_parser(
        "serve",
        help="stand up a live polyvalue cluster (real sockets, real "
        "clocks) behind an HTTP/JSON API",
    )
    serve.add_argument("--sites", type=int, default=3,
                       help="number of database sites (default 3)")
    serve.add_argument("--seed", type=int, default=0,
                       help="RNG seed for the cluster (default 0)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8790,
                       help="HTTP API port (0 = ephemeral; default 8790)")
    serve.add_argument("--data-dir", default=None, metavar="DIR",
                       help="persist per-site durable state here (enables "
                       "restart-from-disk; default: in-memory only)")
    _add_campaign_flags(serve, jobs=False, store=False, metrics=False,
                        protocol=True, protocol_default="polyvalue",
                        protocol_choices=LIVE_PROTOCOL_NAMES,
                        protocol_help="commit protocol the cluster runs "
                        "(default polyvalue; pathsensitive is sim-only)")
    serve.set_defaults(handler=_cmd_serve)

    client = commands.add_parser(
        "client",
        help="drive a running 'repro serve' cluster (health, transfer, "
        "crash/restart, demo)",
    )
    client.add_argument("rest", nargs=argparse.REMAINDER,
                        help="client arguments; run 'repro client -- "
                        "--help' for the full list")
    client.set_defaults(handler=_cmd_client)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "client":
        # The client owns its whole argument list (its options would
        # otherwise be swallowed by this parser before REMAINDER kicks
        # in), so hand over before argparse sees them.
        from repro.live.client import main as client_main

        return client_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except UnstableRegimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. head).
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
