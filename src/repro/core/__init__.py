"""Core of the reproduction: the polyvalue mechanism itself.

This package is deliberately free of any simulation, networking or
storage concerns — it is the pure data-structure and algorithm layer
described in section 3 of the paper:

* :mod:`repro.core.conditions` — predicates over transaction identifiers.
* :mod:`repro.core.polyvalue` — the ``<value, condition>`` pair sets.
* :mod:`repro.core.polytransaction` — alternative-transaction execution.
* :mod:`repro.core.outcome` — per-site outcome tables and the
  coordinator's outcome log.
* :mod:`repro.core.errors` — the library-wide exception hierarchy.

.. deprecated::
    Importing the supported surface (``Condition``, ``Polyvalue``,
    ``combine``, …) from this package emits :class:`DeprecationWarning`;
    import it from :mod:`repro.api` (or the :mod:`repro` top level)
    instead.  The exception hierarchy and the specialist helpers stay
    importable from here without a warning, as do all submodules.
"""

import importlib
import warnings

from repro.core.errors import (
    ConditionError,
    IncompleteConditionsError,
    LockError,
    NetworkError,
    OverlappingConditionsError,
    PolyvalueError,
    ProtocolError,
    ReproError,
    SimulationError,
    SiteDownError,
    TransactionAborted,
    TransactionError,
    TransactionInDoubt,
    UncertainValueError,
    UnknownItemError,
)
from repro.core.minimize import literal_count, product_count
from repro.core.outcome import OutcomeLogEntry
from repro.core.polytransaction import Alternative, TooManyAlternativesError
from repro.core.serialize import (
    SerializationError,
    decode_condition,
    encode_condition,
)

#: Names the :mod:`repro.api` facade replaces, served lazily by
#: :func:`__getattr__` below with a :class:`DeprecationWarning`.
_DEPRECATED = {
    "Condition": ("repro.core.conditions", "Condition"),
    "FALSE": ("repro.core.conditions", "FALSE"),
    "Literal": ("repro.core.conditions", "Literal"),
    "TRUE": ("repro.core.conditions", "TRUE"),
    "TxnId": ("repro.core.conditions", "TxnId"),
    "conditions_are_complete": ("repro.core.conditions", "conditions_are_complete"),
    "conditions_are_complete_and_disjoint": (
        "repro.core.conditions",
        "conditions_are_complete_and_disjoint",
    ),
    "conditions_are_disjoint": ("repro.core.conditions", "conditions_are_disjoint"),
    "minimize": ("repro.core.minimize", "minimize"),
    "parse_condition": ("repro.core.parser", "parse_condition"),
    "OutcomeLog": ("repro.core.outcome", "OutcomeLog"),
    "OutcomeTable": ("repro.core.outcome", "OutcomeTable"),
    "Resolution": ("repro.core.outcome", "Resolution"),
    "PolyContext": ("repro.core.polytransaction", "PolyContext"),
    "PolyTransactionResult": ("repro.core.polytransaction", "PolyTransactionResult"),
    "execute": ("repro.core.polytransaction", "execute"),
    "Polyvalue": ("repro.core.polyvalue", "Polyvalue"),
    "as_pairs": ("repro.core.polyvalue", "as_pairs"),
    "certain": ("repro.core.polyvalue", "certain"),
    "combine": ("repro.core.polyvalue", "combine"),
    "definitely": ("repro.core.polyvalue", "definitely"),
    "depends_on": ("repro.core.polyvalue", "depends_on"),
    "is_polyvalue": ("repro.core.polyvalue", "is_polyvalue"),
    "possible_values": ("repro.core.polyvalue", "possible_values"),
    "possibly": ("repro.core.polyvalue", "possibly"),
    "reduce_value": ("repro.core.polyvalue", "reduce_value"),
    "simplify": ("repro.core.polyvalue", "simplify"),
    "decode_state": ("repro.core.serialize", "decode_state"),
    "decode_value": ("repro.core.serialize", "decode_value"),
    "encode_state": ("repro.core.serialize", "encode_state"),
    "encode_value": ("repro.core.serialize", "encode_value"),
}


def __getattr__(name):
    # PEP 562 shim: resolve deprecated names lazily, and do not cache
    # them on the package, so every deep import keeps warning.
    try:
        module_name, attr = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"importing {name!r} from 'repro.core' is deprecated; import it "
        f"from 'repro.api' (stable facade) or {module_name!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "Alternative",
    "Condition",
    "ConditionError",
    "FALSE",
    "IncompleteConditionsError",
    "Literal",
    "LockError",
    "NetworkError",
    "OutcomeLog",
    "OutcomeLogEntry",
    "OutcomeTable",
    "OverlappingConditionsError",
    "PolyContext",
    "PolyTransactionResult",
    "Polyvalue",
    "PolyvalueError",
    "ProtocolError",
    "ReproError",
    "Resolution",
    "SerializationError",
    "SimulationError",
    "SiteDownError",
    "TRUE",
    "TooManyAlternativesError",
    "TransactionAborted",
    "TransactionError",
    "TransactionInDoubt",
    "TxnId",
    "UncertainValueError",
    "UnknownItemError",
    "as_pairs",
    "certain",
    "combine",
    "conditions_are_complete",
    "conditions_are_complete_and_disjoint",
    "conditions_are_disjoint",
    "decode_condition",
    "decode_state",
    "decode_value",
    "definitely",
    "depends_on",
    "encode_condition",
    "encode_state",
    "encode_value",
    "execute",
    "is_polyvalue",
    "literal_count",
    "minimize",
    "parse_condition",
    "possible_values",
    "possibly",
    "product_count",
    "reduce_value",
    "simplify",
]
