"""Core of the reproduction: the polyvalue mechanism itself.

This package is deliberately free of any simulation, networking or
storage concerns — it is the pure data-structure and algorithm layer
described in section 3 of the paper:

* :mod:`repro.core.conditions` — predicates over transaction identifiers.
* :mod:`repro.core.polyvalue` — the ``<value, condition>`` pair sets.
* :mod:`repro.core.polytransaction` — alternative-transaction execution.
* :mod:`repro.core.outcome` — per-site outcome tables and the
  coordinator's outcome log.
* :mod:`repro.core.errors` — the library-wide exception hierarchy.
"""

from repro.core.conditions import (
    FALSE,
    TRUE,
    Condition,
    Literal,
    TxnId,
    conditions_are_complete,
    conditions_are_complete_and_disjoint,
    conditions_are_disjoint,
)
from repro.core.errors import (
    ConditionError,
    IncompleteConditionsError,
    LockError,
    NetworkError,
    OverlappingConditionsError,
    PolyvalueError,
    ProtocolError,
    ReproError,
    SimulationError,
    SiteDownError,
    TransactionAborted,
    TransactionError,
    TransactionInDoubt,
    UncertainValueError,
    UnknownItemError,
)
from repro.core.minimize import literal_count, minimize, product_count
from repro.core.parser import parse_condition
from repro.core.outcome import OutcomeLog, OutcomeLogEntry, OutcomeTable, Resolution
from repro.core.polytransaction import (
    Alternative,
    PolyContext,
    PolyTransactionResult,
    TooManyAlternativesError,
    execute,
)
from repro.core.polyvalue import (
    Polyvalue,
    as_pairs,
    certain,
    combine,
    definitely,
    depends_on,
    is_polyvalue,
    possible_values,
    possibly,
    reduce_value,
    simplify,
)
from repro.core.serialize import (
    SerializationError,
    decode_condition,
    decode_state,
    decode_value,
    encode_condition,
    encode_state,
    encode_value,
)

__all__ = [
    "Alternative",
    "Condition",
    "ConditionError",
    "FALSE",
    "IncompleteConditionsError",
    "Literal",
    "LockError",
    "NetworkError",
    "OutcomeLog",
    "OutcomeLogEntry",
    "OutcomeTable",
    "OverlappingConditionsError",
    "PolyContext",
    "PolyTransactionResult",
    "Polyvalue",
    "PolyvalueError",
    "ProtocolError",
    "ReproError",
    "Resolution",
    "SerializationError",
    "SimulationError",
    "SiteDownError",
    "TRUE",
    "TooManyAlternativesError",
    "TransactionAborted",
    "TransactionError",
    "TransactionInDoubt",
    "TxnId",
    "UncertainValueError",
    "UnknownItemError",
    "as_pairs",
    "certain",
    "combine",
    "conditions_are_complete",
    "conditions_are_complete_and_disjoint",
    "conditions_are_disjoint",
    "decode_condition",
    "decode_state",
    "decode_value",
    "definitely",
    "depends_on",
    "encode_condition",
    "encode_state",
    "encode_value",
    "execute",
    "is_polyvalue",
    "literal_count",
    "minimize",
    "parse_condition",
    "possible_values",
    "possibly",
    "product_count",
    "reduce_value",
    "simplify",
]
