"""Boolean condition algebra over transaction identifiers.

Section 3 of the paper defines a polyvalue as a set of ``<value,
condition>`` pairs where each *condition* is a predicate whose variables
stand for transactions ("transaction identifiers").  The paper requires
conditions to be manipulated in *sum-of-products* form (section 3.1,
simplification rule 3), and it requires the set of conditions within one
polyvalue to be *complete* (one predicate is true under any assignment of
outcomes) and *disjoint* (only one is).

This module implements that algebra:

* :class:`Literal` — a transaction identifier or its negation
  ("T committed" / "T aborted").
* a *product* — a conjunction of literals, represented as a
  ``frozenset`` of :class:`Literal`.
* :class:`Condition` — a disjunction of products (sum-of-products),
  represented as a ``frozenset`` of products.

Conditions are immutable and hashable; all operations return new
conditions.  Simplification (contradiction removal, absorption and
single-variable resolution) is applied automatically by the constructors,
so conditions are kept in a compact canonical-ish form.  Exact
equivalence, completeness and disjointness are decided by truth-table
enumeration over the (always small in practice) set of mentioned
transactions.

Performance
-----------
Conditions are *hash-consed*: the constructor interns every simplified
product set, so two structurally equal conditions are the same object,
hashes are precomputed, and ``variables()``/``is_true()``/``is_false()``
are O(1) field reads.  The algebra operators (``&``, ``|``, ``~``),
:meth:`Condition.substitute` and the simplifier itself are memoized in
bounded LRU caches keyed on interned identities — the protocol re-derives
the same handful of conditions constantly, so the hit rate in practice is
very high.  The caches are observationally transparent (property-tested
in ``tests/test_conditions_properties.py``); size them with
:func:`configure_caches`, inspect them with :func:`cache_info`, and drop
them with :func:`clear_caches`.  See ``docs/performance.md``.

Example
-------
>>> t1, t2 = Condition.of("T1"), Condition.of("T2")
>>> c = t1 & ~t2
>>> c.evaluate({"T1": True, "T2": False})
True
>>> c.substitute({"T1": True})
Condition(~T2)
>>> (t1 | ~t1).is_true()
True
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass
from functools import lru_cache
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.errors import ConditionError

#: Transaction identifiers are plain strings (e.g. ``"T17"``).
TxnId = str

#: The largest number of distinct transaction identifiers for which the
#: truth-table decision procedures will run.  Beyond this the table has
#: more than 2**20 rows and the caller is almost certainly misusing the
#: mechanism (the paper's whole point is that very few transactions are
#: in doubt at once).
MAX_TRUTH_TABLE_VARIABLES = 20

#: Default bound for each memoized-operation LRU cache (simplify, the
#: binary operators, negation, substitution, literal/product interning).
#: Interned :class:`Condition` objects themselves live in a weak-value
#: table, so the strong LRU entries are what actually pins memory.
DEFAULT_CACHE_SIZE = 16384


@dataclass(frozen=True, order=True)
class Literal:
    """A transaction identifier or its negation.

    ``Literal("T1", True)`` is true iff transaction ``T1`` completed
    (committed); ``Literal("T1", False)`` is true iff it aborted.
    """

    txn: TxnId
    positive: bool = True

    def negate(self) -> "Literal":
        """Return the complementary literal."""
        return Literal(self.txn, not self.positive)

    def satisfied_by(self, assignment: Mapping[TxnId, bool]) -> bool:
        """Evaluate under a complete outcome *assignment*.

        Raises :class:`~repro.core.errors.ConditionError` if the
        assignment does not mention this literal's transaction.
        """
        if self.txn not in assignment:
            raise ConditionError(
                f"assignment does not give an outcome for transaction {self.txn!r}"
            )
        return assignment[self.txn] == self.positive

    def __str__(self) -> str:
        return self.txn if self.positive else "~" + self.txn

    def __repr__(self) -> str:
        return f"Literal({str(self)})"


Product = FrozenSet[Literal]


def intern_literal(txn: TxnId, positive: bool = True) -> Literal:
    """A shared :class:`Literal` instance for ``(txn, positive)``.

    Plain ``Literal(...)`` construction remains valid everywhere
    (equality is structural); routing hot-path construction through the
    intern table avoids re-allocating the same handful of literals the
    protocol mentions over and over.
    """
    return _literal_cached(txn, bool(positive))


def _product_is_contradictory(product: Product) -> bool:
    """True if the product contains both ``T`` and ``~T`` for some T."""
    seen: Dict[TxnId, bool] = {}
    for literal in product:
        previous = seen.get(literal.txn)
        if previous is not None and previous != literal.positive:
            return True
        seen[literal.txn] = literal.positive
    return False


def _absorb(products: Set[Product]) -> Set[Product]:
    """Remove products subsumed by a more general (smaller) product.

    In sum-of-products form, ``p + p·q = p``: any product that is a
    strict superset of another contributes nothing to the disjunction.
    """
    kept: Set[Product] = set()
    for product in sorted(products, key=len):
        if not any(other <= product for other in kept):
            kept.add(product)
    return kept


def _resolve_once(products: Set[Product]) -> Optional[Set[Product]]:
    """Apply one step of single-variable resolution, if possible.

    Merges two products that differ only in one complemented literal:
    ``p·T + p·~T = p``.  Returns the new product set, or ``None`` when
    no merge applies.  Combined with absorption and iterated to a fixed
    point this collapses ``{T} + {~T}`` to *true*, which is exactly what
    failure recovery needs when substituting outcomes (section 3.3).
    """
    product_list = sorted(products, key=lambda p: (len(p), sorted(map(str, p))))
    for i, first in enumerate(product_list):
        for second in product_list[i + 1 :]:
            if len(first) != len(second):
                continue
            difference = first ^ second
            if len(difference) != 2:
                continue
            lit_a, lit_b = difference
            if lit_a.txn == lit_b.txn and lit_a.positive != lit_b.positive:
                merged = first & second
                reduced = set(products)
                reduced.discard(first)
                reduced.discard(second)
                reduced.add(merged)
                return reduced
    return None


def _simplify_products(products: FrozenSet[Product]) -> FrozenSet[Product]:
    """Canonicalise a sum of products.

    Drops contradictory products (rule 3 of section 3.1), then applies
    absorption and single-variable resolution to a fixed point.  The
    result is not a guaranteed-minimal form (that would be Quine-
    McCluskey), but it is small, deterministic and — crucially for the
    mechanism — reduces to the canonical ``TRUE``/``FALSE`` forms when
    the sum is a tautology over one variable or is unsatisfiable.

    Callers go through the memoized ``_simplify_cached`` wrapper; the
    returned products are interned so equal products across conditions
    share one frozenset (and its cached hash).
    """
    current: Set[Product] = {p for p in products if not _product_is_contradictory(p)}
    while True:
        current = _absorb(current)
        resolved = _resolve_once(current)
        if resolved is None:
            return frozenset(_intern_product(p) for p in current)
        current = resolved


class Condition:
    """An immutable predicate over transaction outcomes, in sum-of-products form.

    A condition is a disjunction of *products*; each product is a
    conjunction of :class:`Literal`.  The canonical *true* condition is
    the disjunction containing the empty product; the canonical *false*
    condition is the empty disjunction.

    Conditions support ``&`` (and), ``|`` (or), ``~`` (not), equality
    (structural, after simplification), :meth:`equivalent` (semantic),
    and hashing, so they can be used as dict keys and set members.

    Instances are hash-consed: the constructor simplifies, then interns,
    so structurally equal conditions are one shared, immutable object
    with a precomputed hash and variable set.
    """

    __slots__ = ("_products", "_hash", "_variables", "_truth", "_str", "__weakref__")

    def __new__(cls, products: Iterable[Iterable[Literal]] = ()) -> "Condition":
        key = frozenset(
            product if type(product) is frozenset else frozenset(product)
            for product in products
        )
        return _intern(_simplify_cached(key))

    def __init__(self, products: Iterable[Iterable[Literal]] = ()) -> None:
        # All state is attached by ``_intern`` in ``__new__``; this
        # only exists so the ``Condition(products)`` call signature
        # remains the ordinary constructor.
        pass

    def __reduce__(self):
        # Pickle/copy must round-trip through the interning constructor
        # so deserialisation can never corrupt a shared instance.
        return (
            Condition,
            (tuple(tuple(sorted(product)) for product in self._products),),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def true() -> "Condition":
        """The condition that always holds."""
        return Condition([frozenset()])

    @staticmethod
    def false() -> "Condition":
        """The condition that never holds."""
        return Condition([])

    @staticmethod
    def of(txn: TxnId) -> "Condition":
        """The condition "transaction *txn* completed"."""
        return Condition([[intern_literal(txn, True)]])

    @staticmethod
    def not_of(txn: TxnId) -> "Condition":
        """The condition "transaction *txn* aborted"."""
        return Condition([[intern_literal(txn, False)]])

    @staticmethod
    def literal(txn: TxnId, positive: bool) -> "Condition":
        """The single-literal condition for *txn* with the given polarity."""
        return Condition([[intern_literal(txn, positive)]])

    @staticmethod
    def all_of(*txns: TxnId) -> "Condition":
        """The conjunction "every one of *txns* completed"."""
        return Condition([[intern_literal(t, True) for t in txns]])

    @staticmethod
    def any_of(*txns: TxnId) -> "Condition":
        """The disjunction "at least one of *txns* completed"."""
        return Condition([[intern_literal(t, True)] for t in txns])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def products(self) -> FrozenSet[Product]:
        """The simplified set of products (conjunctions) of this condition."""
        return self._products

    def variables(self) -> FrozenSet[TxnId]:
        """The set of transaction identifiers this condition mentions."""
        return self._variables

    def is_true(self) -> bool:
        """True iff this condition is the canonical *true* form.

        Because the constructor simplifies, any single-variable tautology
        (``T | ~T``) reaches this form; for a semantic check on arbitrary
        conditions use :meth:`is_tautology`.
        """
        return self._truth is True

    def is_false(self) -> bool:
        """True iff this condition is the canonical *false* form (empty sum)."""
        return self._truth is False

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def __and__(self, other: "Condition") -> "Condition":
        if not isinstance(other, Condition):
            return NotImplemented
        # Identity shortcuts agree with what simplification would
        # produce, because both operands are already canonical.
        if self._truth is True:
            return other
        if other._truth is True:
            return self
        if self._truth is False or other._truth is False:
            return FALSE
        return _and_cached(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        if not isinstance(other, Condition):
            return NotImplemented
        if self._truth is False:
            return other
        if other._truth is False:
            return self
        if self._truth is True or other._truth is True:
            return TRUE
        return _or_cached(self, other)

    def __invert__(self) -> "Condition":
        return _invert_cached(self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Condition):
            return NotImplemented
        return self._products == other._products

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, assignment: Mapping[TxnId, bool]) -> bool:
        """Evaluate under a (at least covering) outcome assignment.

        *assignment* maps each transaction identifier to ``True``
        (completed) or ``False`` (aborted).  Every variable of the
        condition must be present.
        """
        return any(
            all(literal.satisfied_by(assignment) for literal in product)
            for product in self._products
        )

    def substitute(self, outcomes: Mapping[TxnId, bool]) -> "Condition":
        """Replace known transaction outcomes with constants and simplify.

        This is the reduction step of failure recovery (section 3.3):
        "the value of the transaction identifier for such a transaction
        can be replaced by true or false in the predicates".  Literals
        satisfied by *outcomes* are dropped from their products; products
        containing a falsified literal are dropped entirely.

        Memoized on the outcomes *restricted to this condition's own
        variables* — outcomes for transactions the condition never
        mentions cannot affect the result, so they never pollute the
        cache key (and interning can never leak across TxnId spaces).
        """
        relevant = [txn for txn in self._variables if txn in outcomes]
        if not relevant:
            return self
        key = tuple(sorted((txn, bool(outcomes[txn])) for txn in relevant))
        return _substitute_cached(self, key)

    def is_satisfiable(self) -> bool:
        """True iff some outcome assignment makes this condition hold.

        In sum-of-products form with contradictions already removed by
        the constructor, satisfiability is simply non-emptiness.
        """
        return self._truth is not False

    def is_tautology(self) -> bool:
        """True iff every outcome assignment makes this condition hold.

        Decided by truth-table enumeration over :meth:`variables`.
        """
        variables = sorted(self.variables())
        _check_variable_count(variables)
        return all(
            self.evaluate(assignment)
            for assignment in _assignments(variables)
        )

    def equivalent(self, other: "Condition") -> bool:
        """Semantic equivalence (agree on every outcome assignment)."""
        variables = sorted(self.variables() | other.variables())
        _check_variable_count(variables)
        return all(
            self.evaluate(a) == other.evaluate(a) for a in _assignments(variables)
        )

    def implies(self, other: "Condition") -> bool:
        """True iff every assignment satisfying ``self`` satisfies *other*."""
        variables = sorted(self.variables() | other.variables())
        _check_variable_count(variables)
        return all(
            other.evaluate(a)
            for a in _assignments(variables)
            if self.evaluate(a)
        )

    def disjoint_with(self, other: "Condition") -> bool:
        """True iff no assignment satisfies both conditions."""
        return (self & other).is_false()

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        rendered = self._str
        if rendered is not None:
            return rendered
        if self._truth is True:
            rendered = "TRUE"
        elif self._truth is False:
            rendered = "FALSE"
        else:
            rendered_products = []
            for product in sorted(
                self._products, key=lambda p: sorted(str(l) for l in p)
            ):
                literals = sorted(str(literal) for literal in product)
                rendered_products.append(" & ".join(literals))
            rendered = " | ".join(
                f"({p})" if len(self._products) > 1 and " & " in p else p
                for p in sorted(rendered_products)
            )
        self._str = rendered
        return rendered

    def __repr__(self) -> str:
        return f"Condition({str(self)})"


def _check_variable_count(variables: Sequence[TxnId]) -> None:
    if len(variables) > MAX_TRUTH_TABLE_VARIABLES:
        raise ConditionError(
            f"refusing to enumerate a truth table over {len(variables)} "
            f"transactions (limit {MAX_TRUTH_TABLE_VARIABLES}); this many "
            "simultaneously in-doubt transactions indicates misuse"
        )


def all_assignments(variables: Sequence[TxnId]) -> Iterator[Dict[TxnId, bool]]:
    """Yield every outcome assignment over *variables*.

    The invariant oracles (:mod:`repro.check.oracles`) enumerate these
    to check that a polyvalue resolves to exactly one simple value under
    any combination of in-doubt outcomes; the size guard applies.
    """
    _check_variable_count(list(variables))
    for values in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


def _assignments(variables: Sequence[TxnId]) -> Iterator[Dict[TxnId, bool]]:
    """Yield every outcome assignment over *variables* (no size guard)."""
    for values in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


# ----------------------------------------------------------------------
# Interning and memoization infrastructure
# ----------------------------------------------------------------------
#
# Interned conditions live in a weak-value table keyed by their
# simplified product set, so a condition exists at most once but is
# reclaimed as soon as nothing (including the strong LRU caches below)
# references it.  The operation caches are keyed on interned identities:
# Condition.__hash__ is a precomputed field and __eq__ short-circuits on
# identity, so cache lookups never re-hash product sets.

_INTERNED: "weakref.WeakValueDictionary[FrozenSet[Product], Condition]" = (
    weakref.WeakValueDictionary()
)

#: The canonical product set of the *true* condition (the empty product).
_TRUE_PRODUCTS: FrozenSet[Product] = frozenset([frozenset()])


def _intern(products: FrozenSet[Product]) -> Condition:
    """The unique :class:`Condition` for an already-simplified product set."""
    existing = _INTERNED.get(products)
    if existing is not None:
        return existing
    condition = object.__new__(Condition)
    condition._products = products
    condition._hash = hash(products)
    condition._variables = frozenset(
        literal.txn for product in products for literal in product
    )
    if products == _TRUE_PRODUCTS:
        condition._truth = True
    elif not products:
        condition._truth = False
    else:
        condition._truth = None
    condition._str = None
    _INTERNED[products] = condition
    return condition


def _identity_product(product: Product) -> Product:
    # lru_cache keyed on frozenset equality returns the first instance
    # seen for each distinct product, which is exactly interning.
    return product


def _and_uncached(a: Condition, b: Condition) -> Condition:
    return Condition(p | q for p in a._products for q in b._products)


def _or_uncached(a: Condition, b: Condition) -> Condition:
    return Condition(itertools.chain(a._products, b._products))


def _invert_uncached(a: Condition) -> Condition:
    # De Morgan: negate a sum of products by taking, for every way of
    # choosing one literal from each product, the product of the
    # complements.  The constructor simplifies the (possibly large)
    # intermediate form; condition sizes in this system are tiny.
    if a._truth is False:
        return TRUE
    negated = TRUE
    for product in a._products:
        complements = Condition([[literal.negate()] for literal in product])
        negated = negated & complements
    return negated


def _substitute_uncached(
    condition: Condition, outcome_items: Tuple[Tuple[TxnId, bool], ...]
) -> Condition:
    outcomes = dict(outcome_items)
    new_products = []
    for product in condition._products:
        kept: list = []
        dead = False
        for literal in product:
            outcome = outcomes.get(literal.txn)
            if outcome is None:
                kept.append(literal)
            elif outcome != literal.positive:
                dead = True
                break
        if not dead:
            new_products.append(kept)
    return Condition(new_products)


def _build_caches(maxsize: Optional[int]) -> None:
    global _literal_cached, _intern_product, _simplify_cached
    global _and_cached, _or_cached, _invert_cached, _substitute_cached
    _literal_cached = lru_cache(maxsize=maxsize)(Literal)
    _intern_product = lru_cache(maxsize=maxsize)(_identity_product)
    _simplify_cached = lru_cache(maxsize=maxsize)(_simplify_products)
    _and_cached = lru_cache(maxsize=maxsize)(_and_uncached)
    _or_cached = lru_cache(maxsize=maxsize)(_or_uncached)
    _invert_cached = lru_cache(maxsize=maxsize)(_invert_uncached)
    _substitute_cached = lru_cache(maxsize=maxsize)(_substitute_uncached)


def _caches() -> Dict[str, Any]:
    return {
        "literal": _literal_cached,
        "product": _intern_product,
        "simplify": _simplify_cached,
        "and": _and_cached,
        "or": _or_cached,
        "invert": _invert_cached,
        "substitute": _substitute_cached,
    }


def configure_caches(maxsize: Optional[int] = DEFAULT_CACHE_SIZE) -> None:
    """(Re)build the memoization caches with the given per-cache bound.

    ``maxsize=0`` disables memoization entirely (every operation
    recomputes — useful for A/B benchmarking the caches themselves);
    ``maxsize=None`` makes the caches unbounded.  Rebuilding discards
    all currently memoized entries.  Interned :class:`Condition`
    instances are unaffected: they live in a weak table and remain
    shared regardless of cache configuration.
    """
    _build_caches(maxsize)


def clear_caches() -> None:
    """Drop every memoized entry, keeping the configured cache bounds."""
    for cache in _caches().values():
        cache.cache_clear()


def cache_info() -> Dict[str, Any]:
    """Per-cache :func:`functools.lru_cache` statistics, by cache name.

    Keys: ``literal``, ``product``, ``simplify``, ``and``, ``or``,
    ``invert``, ``substitute``; values are ``CacheInfo`` tuples with
    ``hits``/``misses``/``maxsize``/``currsize`` fields.
    """
    return {name: cache.cache_info() for name, cache in _caches().items()}


_build_caches(DEFAULT_CACHE_SIZE)


#: Module-level singletons for the two constant conditions.  Conditions
#: are immutable, so sharing these is safe and avoids re-simplification.
TRUE: Condition = Condition.true()
FALSE: Condition = Condition.false()


def conditions_are_complete(conditions: Sequence[Condition]) -> bool:
    """True iff, under every assignment, at least one condition holds.

    This is half of the paper's well-formedness requirement for the
    conditions of a polyvalue ("the conditions on the pairs in each
    polyvalue must be complete and disjoint").
    """
    variables = sorted(frozenset().union(*(c.variables() for c in conditions)) if conditions else frozenset())
    _check_variable_count(variables)
    return all(
        any(condition.evaluate(a) for condition in conditions)
        for a in _assignments(variables)
    )


def conditions_are_disjoint(conditions: Sequence[Condition]) -> bool:
    """True iff, under every assignment, at most one condition holds."""
    variables = sorted(frozenset().union(*(c.variables() for c in conditions)) if conditions else frozenset())
    _check_variable_count(variables)
    for assignment in _assignments(variables):
        if sum(1 for c in conditions if c.evaluate(assignment)) > 1:
            return False
    return True


def conditions_are_complete_and_disjoint(conditions: Sequence[Condition]) -> bool:
    """The paper's full well-formedness check: exactly one condition holds
    under any assignment of outcomes to transaction identifiers."""
    variables = sorted(frozenset().union(*(c.variables() for c in conditions)) if conditions else frozenset())
    _check_variable_count(variables)
    return all(
        sum(1 for c in conditions if c.evaluate(a)) == 1
        for a in _assignments(variables)
    )
