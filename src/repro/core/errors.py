"""Exception hierarchy for the polyvalue reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConditionError(ReproError):
    """A malformed condition or an illegal condition-algebra operation."""


class PolyvalueError(ReproError):
    """A malformed polyvalue (e.g. conditions not complete/disjoint)."""


class IncompleteConditionsError(PolyvalueError):
    """The conditions of a polyvalue do not cover every outcome assignment."""


class OverlappingConditionsError(PolyvalueError):
    """Two conditions of a polyvalue are simultaneously satisfiable."""


class UncertainValueError(PolyvalueError):
    """An exact value was required but the item still holds a polyvalue.

    Raised when a caller demands a certain (simple) value — e.g. an
    external output that must be a definite yes/no — and the underlying
    polyvalue has more than one possible value.  Section 3.4 of the paper
    describes the two options at that point: wait, or present the
    uncertain output; this exception is how the library signals that the
    caller must choose.
    """


class TransactionError(ReproError):
    """Base class for transaction-processing errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (by the coordinator or by a conflict)."""


class TransactionInDoubt(TransactionError):
    """The transaction outcome is unknown; polyvalues were installed."""


class UnknownItemError(TransactionError):
    """A transaction referenced an item that no site stores."""


class LockError(TransactionError):
    """A lock could not be acquired (conflict or deadlock-avoidance abort)."""


class ProtocolError(ReproError):
    """An impossible message/state combination in the commit protocol.

    These indicate bugs (or deliberately injected byzantine behaviour),
    never normal operation, so they are kept distinct from
    :class:`TransactionError`.
    """


class SimulationError(ReproError):
    """An error in the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """An error in the simulated message-passing network."""


class SiteDownError(NetworkError):
    """An operation was attempted on a crashed site."""
