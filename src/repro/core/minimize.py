"""Exact two-level minimisation of conditions (Quine–McCluskey).

The constructor of :class:`~repro.core.conditions.Condition` applies
cheap local rewrites (contradiction removal, absorption, resolution)
that keep conditions small in the common case.  Long chains of
polytransaction propagation can still accumulate redundant products;
:func:`minimize` computes a guaranteed-minimal sum-of-products form:

1. enumerate the condition's minterms over its variables;
2. Quine–McCluskey prime-implicant generation (iteratively merge
   implicants differing in one defined bit);
3. essential-prime selection, then greedy set cover for the rest.

Exactness costs ``O(3^n)`` in the variable count ``n``; like every
semantic operation in :mod:`repro.core.conditions` it refuses to run
past :data:`~repro.core.conditions.MAX_TRUTH_TABLE_VARIABLES`
variables — far beyond any realistic number of simultaneously in-doubt
transactions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.conditions import (
    MAX_TRUTH_TABLE_VARIABLES,
    Condition,
    Literal,
    TxnId,
)
from repro.core.errors import ConditionError

#: An implicant: (values, mask).  Bit i of *mask* set means variable i
#: is defined in the implicant, with polarity given by bit i of
#: *values*; a clear mask bit is a "don't care" (merged-away) variable.
_Implicant = Tuple[int, int]


def _minterms(condition: Condition, variables: Sequence[TxnId]) -> List[int]:
    terms = []
    for index in range(1 << len(variables)):
        assignment = {
            variable: bool(index >> position & 1)
            for position, variable in enumerate(variables)
        }
        if condition.evaluate(assignment):
            terms.append(index)
    return terms


def _prime_implicants(minterms: Sequence[int], width: int) -> Set[_Implicant]:
    """Iteratively merge implicants differing in exactly one defined bit."""
    full_mask = (1 << width) - 1
    current: Set[_Implicant] = {(term, full_mask) for term in minterms}
    primes: Set[_Implicant] = set()
    while current:
        merged_away: Set[_Implicant] = set()
        produced: Set[_Implicant] = set()
        ordered = sorted(current)
        for i, (values_a, mask_a) in enumerate(ordered):
            for values_b, mask_b in ordered[i + 1 :]:
                if mask_a != mask_b:
                    continue
                difference = values_a ^ values_b
                # Exactly one defined bit differs -> mergeable.
                if difference and not difference & (difference - 1):
                    produced.add((values_a & ~difference, mask_a & ~difference))
                    merged_away.add((values_a, mask_a))
                    merged_away.add((values_b, mask_b))
        primes |= current - merged_away
        current = produced
    return primes


def _covers(implicant: _Implicant, minterm: int) -> bool:
    values, mask = implicant
    return (minterm & mask) == (values & mask)


def _select_cover(
    primes: Set[_Implicant], minterms: Sequence[int]
) -> List[_Implicant]:
    """Essential primes first, then greedy cover of the remainder."""
    uncovered: Set[int] = set(minterms)
    coverage: Dict[_Implicant, Set[int]] = {
        prime: {term for term in minterms if _covers(prime, term)}
        for prime in primes
    }
    chosen: List[_Implicant] = []
    # Essential primes: a minterm covered by exactly one prime.
    for term in sorted(minterms):
        covering = [prime for prime in sorted(primes) if term in coverage[prime]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            uncovered -= coverage[covering[0]]
    # Greedy for the rest (deterministic tie-break by sorted order).
    while uncovered:
        best = max(
            sorted(primes),
            key=lambda prime: (len(coverage[prime] & uncovered), -prime[1]),
        )
        gained = coverage[best] & uncovered
        if not gained:
            raise ConditionError("internal error: cover cannot progress")
        chosen.append(best)
        uncovered -= gained
    return chosen


def _to_condition(
    implicants: Sequence[_Implicant], variables: Sequence[TxnId]
) -> Condition:
    products = []
    for values, mask in implicants:
        literals = [
            Literal(variable, bool(values >> position & 1))
            for position, variable in enumerate(variables)
            if mask >> position & 1
        ]
        products.append(literals)
    return Condition(products)


def minimize(condition: Condition) -> Condition:
    """An equivalent condition with a minimal number of products.

    >>> from repro.core.conditions import Condition
    >>> t1, t2, t3 = (Condition.of(t) for t in ("T1", "T2", "T3"))
    >>> bloated = (t1 & t2) | (t1 & ~t2 & t3) | (t1 & t3)
    >>> print(minimize(bloated))
    (T1 & T2) | (T1 & T3)
    """
    variables = sorted(condition.variables())
    if len(variables) > MAX_TRUTH_TABLE_VARIABLES:
        raise ConditionError(
            f"refusing to minimise over {len(variables)} variables "
            f"(limit {MAX_TRUTH_TABLE_VARIABLES})"
        )
    if not variables:
        return Condition.true() if condition.is_true() else Condition.false()
    minterms = _minterms(condition, variables)
    if not minterms:
        return Condition.false()
    if len(minterms) == 1 << len(variables):
        return Condition.true()
    primes = _prime_implicants(minterms, len(variables))
    cover = _select_cover(primes, minterms)
    return _to_condition(cover, variables)


def product_count(condition: Condition) -> int:
    """The number of products in the condition's current form."""
    return len(condition.products)


def literal_count(condition: Condition) -> int:
    """The total number of literals across all products."""
    return sum(len(product) for product in condition.products)
