"""Outcome tables: tracking and propagating in-doubt transaction outcomes.

Section 3.3 of the paper distributes the responsibility for resolving
polyvalues: "Each site maintains a table recording, for each transaction
T whose outcome is unknown[,] a list of the polyvalues held by the site
that depend on T, and a list of other sites to which polyvalues
dependent on T have been sent.  When a site learns the outcome of a
transaction T, it can reduce the polyvalues that it holds ... [and] must
inform all of the sites listed in its table entry for T.  Once this is
done, that site can forget the outcome of T and the table entry for T."

:class:`OutcomeTable` is that per-site table.  It is deliberately
independent of the network and storage layers: the database site layer
(:mod:`repro.db.site`) records dependencies as polyvalues are installed
and forwarded, and consumes the :class:`Resolution` produced by
:meth:`OutcomeTable.resolve` to reduce its store and send notification
messages.  Keeping the bookkeeping pure makes the garbage-collection
property ("data structures used in the mechanism are also quickly
removed") directly testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set

from repro.core.conditions import TxnId

#: Site identifiers are plain strings (e.g. ``"site-3"``).
SiteId = str
ItemId = str


@dataclass(frozen=True)
class Resolution:
    """What a site must do upon learning the outcome of one transaction.

    Produced by :meth:`OutcomeTable.resolve`; the caller reduces the
    listed items' polyvalues with the now-known outcome and sends an
    outcome notification to each listed site.  By the time the caller
    holds a :class:`Resolution`, the table entry is already forgotten.
    """

    txn: TxnId
    committed: bool
    items_to_reduce: FrozenSet[ItemId]
    sites_to_notify: FrozenSet[SiteId]


@dataclass
class _Entry:
    """The table row for one in-doubt transaction."""

    dependent_items: Set[ItemId] = field(default_factory=set)
    forwarded_sites: Set[SiteId] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not self.dependent_items and not self.forwarded_sites


class OutcomeTable:
    """One site's record of which local state depends on which in-doubt txn.

    The table is self-garbage-collecting: entries disappear as soon as
    the outcome is resolved (:meth:`resolve`) or the last dependency is
    dropped (:meth:`remove_dependency` / :meth:`remove_all_dependencies`).
    """

    def __init__(self) -> None:
        self._entries: Dict[TxnId, _Entry] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_dependency(self, txn: TxnId, item: ItemId) -> None:
        """Note that local *item* now holds a polyvalue dependent on *txn*."""
        self._entries.setdefault(txn, _Entry()).dependent_items.add(item)

    def record_dependencies(self, txns: Iterable[TxnId], item: ItemId) -> None:
        """Note that *item* depends on every transaction in *txns*."""
        for txn in txns:
            self.record_dependency(txn, item)

    def record_forward(self, txn: TxnId, site: SiteId) -> None:
        """Note that a polyvalue dependent on *txn* was sent to *site*.

        The forwarding site becomes responsible for relaying the outcome
        of *txn* to *site* when it learns it.
        """
        self._entries.setdefault(txn, _Entry()).forwarded_sites.add(site)

    def remove_dependency(self, txn: TxnId, item: ItemId) -> None:
        """Drop one item dependency (e.g. the item was overwritten with a
        simple value, so its polyvalue no longer exists)."""
        entry = self._entries.get(txn)
        if entry is None:
            return
        entry.dependent_items.discard(item)
        if entry.is_empty():
            del self._entries[txn]

    def remove_all_dependencies(self, item: ItemId) -> None:
        """Drop *item* from every entry (the item became simple)."""
        for txn in list(self._entries):
            self.remove_dependency(txn, item)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def pending_transactions(self) -> FrozenSet[TxnId]:
        """The transactions this site is still waiting to hear about."""
        return frozenset(self._entries)

    def dependent_items(self, txn: TxnId) -> FrozenSet[ItemId]:
        """The local items whose polyvalues depend on *txn*."""
        entry = self._entries.get(txn)
        return frozenset(entry.dependent_items) if entry else frozenset()

    def forwarded_sites(self, txn: TxnId) -> FrozenSet[SiteId]:
        """The sites this site must relay the outcome of *txn* to."""
        entry = self._entries.get(txn)
        return frozenset(entry.forwarded_sites) if entry else frozenset()

    def tracks(self, txn: TxnId) -> bool:
        """True iff the table has an entry for *txn*."""
        return txn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(self, txn: TxnId, committed: bool) -> Resolution:
        """Consume the entry for *txn* now that its outcome is known.

        Returns the work the site must perform; the entry itself is
        deleted immediately ("that site can forget the outcome of T and
        the table entry for T").  Resolving a transaction the table does
        not track returns an empty :class:`Resolution` — duplicate
        notifications are harmless and expected, since several sites may
        relay the same outcome.
        """
        entry = self._entries.pop(txn, None)
        if entry is None:
            return Resolution(
                txn=txn,
                committed=committed,
                items_to_reduce=frozenset(),
                sites_to_notify=frozenset(),
            )
        return Resolution(
            txn=txn,
            committed=committed,
            items_to_reduce=frozenset(entry.dependent_items),
            sites_to_notify=frozenset(entry.forwarded_sites),
        )


class OutcomeLog:
    """A coordinator-side durable record of decided transaction outcomes.

    The 2PC coordinator must be able to answer "what happened to T?"
    for any participant that timed out in its wait phase and later
    recovers communication.  Entries are retained until explicitly
    garbage-collected (:meth:`forget`) once every participant has
    acknowledged the outcome — the paper's requirement that "any data
    structures used to keep track of the transaction outcome should be
    quickly deleted when no longer needed."
    """

    def __init__(self) -> None:
        self._outcomes: Dict[TxnId, bool] = {}
        self._unacknowledged: Dict[TxnId, Set[SiteId]] = {}

    def decide(self, txn: TxnId, committed: bool, participants: Iterable[SiteId]) -> None:
        """Record the decision for *txn* and who still must learn it."""
        self._outcomes[txn] = committed
        self._unacknowledged[txn] = set(participants)

    def outcome_of(self, txn: TxnId) -> bool:
        """The decided outcome of *txn* (KeyError if undecided/forgotten)."""
        return self._outcomes[txn]

    def knows(self, txn: TxnId) -> bool:
        """True iff the log still holds a decision for *txn*."""
        return txn in self._outcomes

    def acknowledge(self, txn: TxnId, site: SiteId) -> None:
        """Record that *site* learned the outcome; GC when all have."""
        waiting = self._unacknowledged.get(txn)
        if waiting is None:
            return
        waiting.discard(site)
        if not waiting:
            self.forget(txn)

    def forget(self, txn: TxnId) -> None:
        """Drop all record of *txn*."""
        self._outcomes.pop(txn, None)
        self._unacknowledged.pop(txn, None)

    def pending(self) -> FrozenSet[TxnId]:
        """Transactions decided but not yet fully acknowledged."""
        return frozenset(self._unacknowledged)

    def entries(self) -> Dict[TxnId, "OutcomeLogEntry"]:
        """A copy of every retained decision (for snapshots/inspection)."""
        return {
            txn: OutcomeLogEntry(
                committed=committed,
                unacknowledged=frozenset(self._unacknowledged.get(txn, ())),
            )
            for txn, committed in self._outcomes.items()
        }

    def __len__(self) -> int:
        return len(self._outcomes)


@dataclass(frozen=True)
class OutcomeLogEntry:
    """One retained coordinator decision."""

    committed: bool
    unacknowledged: FrozenSet[SiteId]
