"""A small parser for condition expressions.

Tests, CLIs and log tooling want to write conditions the way the paper
does — ``"T1 & (T2 | T3)"`` — rather than building literal sets by
hand.  The grammar (standard precedence: ``~`` binds tightest, then
``&``, then ``|``):

    expression := term ('|' term)*
    term       := factor ('&' factor)*
    factor     := '~' factor | '(' expression ')' | NAME | 'TRUE' | 'FALSE'
    NAME       := [A-Za-z_][A-Za-z0-9_@.-]*

``TRUE`` and ``FALSE`` (case-insensitive) are the constants; everything
else is a transaction identifier.  The result is an ordinary
:class:`~repro.core.conditions.Condition`, simplified as usual.

>>> parse_condition("T1 & ~T2 | T3").evaluate(
...     {"T1": True, "T2": False, "T3": False})
True
"""

from __future__ import annotations

import re
from typing import List

from repro.core.conditions import Condition
from repro.core.errors import ConditionError

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<op>[()&|~])|(?P<name>[A-Za-z_][A-Za-z0-9_@.\-]*))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ConditionError(
                f"cannot tokenize condition at {remainder[:20]!r}"
            )
        tokens.append(match.group("op") or match.group("name"))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> str:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return ""

    def _take(self) -> str:
        token = self._peek()
        if not token:
            raise ConditionError(
                f"unexpected end of condition in {self._source!r}"
            )
        self._index += 1
        return token

    def parse(self) -> Condition:
        result = self._expression()
        if self._peek():
            raise ConditionError(
                f"trailing input {self._peek()!r} in {self._source!r}"
            )
        return result

    def _expression(self) -> Condition:
        result = self._term()
        while self._peek() == "|":
            self._take()
            result = result | self._term()
        return result

    def _term(self) -> Condition:
        result = self._factor()
        while self._peek() == "&":
            self._take()
            result = result & self._factor()
        return result

    def _factor(self) -> Condition:
        token = self._take()
        if token == "~":
            return ~self._factor()
        if token == "(":
            inner = self._expression()
            closing = self._take()
            if closing != ")":
                raise ConditionError(
                    f"expected ')' but found {closing!r} in {self._source!r}"
                )
            return inner
        if token in ("&", "|", ")"):
            raise ConditionError(
                f"unexpected {token!r} in {self._source!r}"
            )
        if token.upper() == "TRUE":
            return Condition.true()
        if token.upper() == "FALSE":
            return Condition.false()
        return Condition.of(token)


def parse_condition(text: str) -> Condition:
    """Parse a condition expression like ``"T1 & (T2 | ~T3)"``.

    Round-trips with ``str(condition)`` for any condition.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ConditionError("empty condition expression")
    return _Parser(tokens, text).parse()
