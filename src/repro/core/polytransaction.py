"""Polytransactions: executing transactions over polyvalued inputs.

Section 3.2: "A transaction that accesses an item with a polyvalue
becomes a *polytransaction*.  Each polytransaction T consists of a set of
alternative transactions {T_c}, each of which performs the transaction T
on a different database state.  Each alternative transaction T_c is
tagged with a condition c ... When an alternative transaction T_c
accesses an item with a polyvalue {<v_i, c_i>}, T_c is partitioned into
a set of alternative transactions {T_(c & c_i)}" — each of which sees
the simple value ``v_i`` for that item.

This module implements that partitioning by *branch-and-re-execute*:
the transaction body is a deterministic, side-effect-free function of
its reads, so an alternative can be replayed from scratch with a set of
"pinned" item values.  Execution begins with the single alternative
``T_true``; whenever the body reads a polyvalued item that is not yet
pinned, the current run is abandoned and one new alternative per
``<value, condition>`` pair is enqueued (with the product condition),
pruning alternatives whose condition is logically false — the paper's
first efficiency improvement.  The paper's second improvement
(recognising reads whose exact value does not affect the computation)
is exposed as :meth:`PolyContext.read_raw`, which returns the raw
possibly-poly value without partitioning so the body can use the lifted
operations in :mod:`repro.core.polyvalue` instead.

The result of executing all alternatives is a
:class:`PolyTransactionResult`, which knows how to merge the per-
alternative writes into one polyvalue per item ("where v_i is the value
computed by alternative transaction T_ci, or is the previous value of
the item if transaction T_ci does not compute a new value for the
item") and how to merge the externally visible outputs (section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.conditions import Condition
from repro.core.errors import PolyvalueError, TransactionError
from repro.core.polyvalue import Polyvalue, Value, as_pairs, is_polyvalue

#: Database item identifiers are plain strings.
ItemId = str

#: A transaction body: a deterministic function of its reads.  It may
#: return a mapping of writes, call :meth:`PolyContext.write`, or both
#: (the returned mapping is merged over explicit writes).
TxnBody = Callable[["PolyContext"], Optional[Mapping[ItemId, Value]]]

#: Default cap on the number of alternatives a single polytransaction may
#: fan out to.  2**10 alternatives means ten independent in-doubt
#: transactions feeding one computation — far beyond the operating regime
#: the paper's analysis targets, so exceeding it is treated as an error.
DEFAULT_MAX_ALTERNATIVES = 1024


class TooManyAlternativesError(TransactionError):
    """A polytransaction fanned out past its alternatives budget."""


class _Fork(Exception):
    """Internal control flow: the body read an unpinned polyvalued item."""

    def __init__(self, item: ItemId):
        super().__init__(item)
        self.item = item


@dataclass(frozen=True)
class Alternative:
    """One alternative transaction ``T_c``: its condition and its effects."""

    condition: Condition
    writes: Mapping[ItemId, Value]
    outputs: Mapping[str, Value]
    reads: Tuple[ItemId, ...]


class PolyContext:
    """The read/write interface a transaction body sees.

    One context is constructed per alternative execution; ``pins`` holds
    the simple values chosen for polyvalued items along this alternative's
    branch of the partition tree.
    """

    def __init__(
        self,
        snapshot: Mapping[ItemId, Value],
        pins: Mapping[ItemId, Value],
        condition: Condition,
    ) -> None:
        self._snapshot = snapshot
        self._pins = pins
        self._condition = condition
        self._writes: Dict[ItemId, Value] = {}
        self._outputs: Dict[str, Value] = {}
        self._reads: List[ItemId] = []

    @property
    def condition(self) -> Condition:
        """The condition ``c`` tagging this alternative transaction."""
        return self._condition

    def read(self, item: ItemId) -> Value:
        """Read *item*, partitioning on it if it holds a polyvalue.

        Always returns a simple value: along this alternative the item's
        value is pinned to one of its possibilities.
        """
        self._reads.append(item)
        if item in self._pins:
            return self._pins[item]
        value = self._lookup(item)
        if is_polyvalue(value):
            raise _Fork(item)
        return value

    def read_raw(self, item: ItemId) -> Value:
        """Read *item* without partitioning (may return a polyvalue).

        This is the section 3.2 optimisation for reads whose exact value
        "does not affect the computation performed by the transaction":
        the body can operate on the polyvalue with the lifted helpers
        (:func:`repro.core.polyvalue.combine`, ``definitely`` ...)
        instead of forking alternatives.  If the item was already pinned
        by an earlier partitioning read, the pinned simple value is
        returned for consistency.
        """
        self._reads.append(item)
        if item in self._pins:
            return self._pins[item]
        return self._lookup(item)

    def write(self, item: ItemId, value: Value) -> None:
        """Record a write of *value* to *item* for this alternative."""
        self._writes[item] = value

    def output(self, name: str, value: Value) -> None:
        """Record an externally visible output (section 3.4)."""
        self._outputs[name] = value

    def _lookup(self, item: ItemId) -> Value:
        if item not in self._snapshot:
            raise TransactionError(
                f"transaction read unknown item {item!r}; the snapshot "
                "must contain every item the body may read"
            )
        return self._snapshot[item]


@dataclass
class PolyTransactionResult:
    """The merged effects of every alternative of one polytransaction."""

    alternatives: List[Alternative]

    def is_simple(self) -> bool:
        """True iff the transaction never partitioned (single ``T_true``)."""
        return len(self.alternatives) == 1

    def written_items(self) -> List[ItemId]:
        """Every item written by at least one alternative, in stable order."""
        seen: Dict[ItemId, None] = {}
        for alternative in self.alternatives:
            for item in alternative.writes:
                seen.setdefault(item, None)
        return list(seen)

    def read_items(self) -> List[ItemId]:
        """Every item read by at least one alternative, in stable order."""
        seen: Dict[ItemId, None] = {}
        for alternative in self.alternatives:
            for item in alternative.reads:
                seen.setdefault(item, None)
        return list(seen)

    def merged_writes(
        self, previous: Mapping[ItemId, Value]
    ) -> Dict[ItemId, Value]:
        """Combine per-alternative writes into one value per item.

        For each item written by any alternative, builds the polyvalue
        ``{<v_1, c_1>, ..., <v_n, c_n>}`` where ``v_i`` is the value
        written by alternative ``T_ci`` — or the item's *previous* value
        when ``T_ci`` did not write it (section 3.2).  The result
        collapses to a plain value when all alternatives agree, which is
        how uncertainty fails to propagate through computations that do
        not depend on it.
        """
        merged: Dict[ItemId, Value] = {}
        for item in self.written_items():
            pairs = []
            for alternative in self.alternatives:
                if item in alternative.writes:
                    value = alternative.writes[item]
                elif item in previous:
                    value = previous[item]
                else:
                    raise PolyvalueError(
                        f"alternative {alternative.condition} does not write "
                        f"item {item!r} and no previous value was supplied"
                    )
                pairs.append((value, alternative.condition))
            merged[item] = Polyvalue(pairs).collapse()
        return merged

    def merged_outputs(self) -> Dict[str, Value]:
        """Combine per-alternative external outputs into one value per name.

        An output produced by only some alternatives appears as a
        polyvalue whose other branches carry ``None`` (the output was
        not produced along those branches).
        """
        names: Dict[str, None] = {}
        for alternative in self.alternatives:
            for name in alternative.outputs:
                names.setdefault(name, None)
        merged: Dict[str, Value] = {}
        for name in names:
            pairs = [
                (alternative.outputs.get(name), alternative.condition)
                for alternative in self.alternatives
            ]
            merged[name] = Polyvalue(pairs).collapse()
        return merged


def execute(
    body: TxnBody,
    snapshot: Mapping[ItemId, Value],
    *,
    max_alternatives: int = DEFAULT_MAX_ALTERNATIVES,
) -> PolyTransactionResult:
    """Run *body* against *snapshot*, partitioning on polyvalued reads.

    Parameters
    ----------
    body:
        A deterministic, side-effect-free function of its reads.  It is
        re-executed once per alternative, so any side effects would be
        repeated.
    snapshot:
        The values (simple or poly) of every item the body may read.
    max_alternatives:
        Fan-out budget; exceeding it raises
        :class:`TooManyAlternativesError`.

    Returns
    -------
    PolyTransactionResult
        One :class:`Alternative` per satisfiable leaf of the partition
        tree.  The alternatives' conditions are complete and disjoint by
        construction.
    """
    # Work stack of (condition, pins); each entry is an alternative
    # transaction T_c with the item values pinned along its branch.
    pending: List[Tuple[Condition, Dict[ItemId, Value]]] = [
        (Condition.true(), {})
    ]
    finished: List[Alternative] = []
    spawned = 1
    while pending:
        condition, pins = pending.pop()
        context = PolyContext(snapshot, pins, condition)
        try:
            returned = body(context)
        except _Fork as fork:
            value = snapshot[fork.item]
            assert is_polyvalue(value)
            for branch_value, branch_condition in as_pairs(value):
                joint = condition & branch_condition
                if joint.is_false():
                    # Paper, section 3.2: "Any such alternative
                    # transaction can be discarded, as its results can
                    # never contribute."
                    continue
                spawned += 1
                if spawned > max_alternatives:
                    raise TooManyAlternativesError(
                        f"polytransaction exceeded {max_alternatives} "
                        "alternatives; too many in-doubt transactions feed "
                        "this computation"
                    )
                branch_pins = dict(pins)
                branch_pins[fork.item] = branch_value
                pending.append((joint, branch_pins))
            continue
        writes = dict(context._writes)
        if returned is not None:
            if not isinstance(returned, Mapping):
                raise TransactionError(
                    f"transaction body returned {type(returned).__name__}; "
                    "bodies must return a mapping of writes (or None)"
                )
            writes.update(returned)
        finished.append(
            Alternative(
                condition=condition,
                writes=writes,
                outputs=dict(context._outputs),
                reads=tuple(context._reads),
            )
        )
    if not finished:
        raise TransactionError(
            "polytransaction produced no satisfiable alternative; the "
            "snapshot contained contradictory polyvalues"
        )
    finished.sort(key=lambda alternative: str(alternative.condition))
    return PolyTransactionResult(alternatives=finished)
