"""The polyvalue data structure (section 3 of the paper).

A *polyvalue* is "a set of pairs ``<v, c>``, where ``v`` is a simple
value, and ``c`` is a condition which is a predicate" over transaction
identifiers.  It is the bookkeeping tool that lets a database item carry
several potential current values while the outcome of one or more
transactions is unknown due to failures.

The conditions of a polyvalue must be *complete* and *disjoint*: one and
only one of them is true under any assignment of outcomes to the
in-doubt transactions.  The constructor enforces this (it can be
disabled for already-validated internal construction).

Construction applies the three simplification rules of section 3.1:

1. *Flattening* — a pair whose value is itself a polyvalue
   ``{<v_i, c_i>}`` expands to the pairs ``<v_i, c_i & c>``, eliminating
   nesting (which occurs when polyvalues are updated with polyvalues).
2. *Merging* — two pairs with equal values combine into one pair whose
   condition is the disjunction of the two conditions.
3. *Sum-of-products reduction* — conditions are kept in simplified
   sum-of-products form (done by :class:`~repro.core.conditions.Condition`
   itself) and pairs with logically false conditions are discarded.

The module also provides the lifted-function helpers that
polytransactions are built from: :func:`combine` applies an ordinary
function across polyvalued operands, and :func:`definitely` /
:func:`possibly` answer modal queries ("would *every* alternative grant
this reservation?") that section 5's applications rely on.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
    Union,
)

from repro.core.conditions import (
    Condition,
    TxnId,
    conditions_are_complete,
    conditions_are_disjoint,
)
from repro.core.errors import (
    IncompleteConditionsError,
    OverlappingConditionsError,
    PolyvalueError,
    UncertainValueError,
)

#: A database item's value is either a simple (plain Python) value or a
#: :class:`Polyvalue`.
Value = Any
Pair = Tuple[Value, Condition]


class Polyvalue:
    """An immutable set of ``<value, condition>`` pairs.

    Parameters
    ----------
    pairs:
        An iterable of ``(value, condition)`` tuples.  Values may
        themselves be polyvalues; they are flattened (rule 1).
    validate:
        When true (the default), check that the conditions are complete
        and disjoint and raise
        :class:`~repro.core.errors.IncompleteConditionsError` /
        :class:`~repro.core.errors.OverlappingConditionsError` otherwise.

    Notes
    -----
    A polyvalue that simplifies to a single pair is still a
    :class:`Polyvalue` (its condition is a tautology by completeness);
    use :meth:`collapse` to obtain the plain value in that case, or the
    module-level :func:`simplify` which collapses automatically.
    """

    __slots__ = ("_pairs", "_depends")

    def __init__(self, pairs: Iterable[Pair], *, validate: bool = True) -> None:
        self._depends: Any = None  # lazily computed by depends_on()
        flattened = _flatten(pairs)
        merged = _merge_equal_values(flattened)
        live = [(v, c) for v, c in merged if not c.is_false()]
        if not live:
            raise PolyvalueError(
                "polyvalue has no satisfiable pair; at least one condition "
                "must be satisfiable"
            )
        if validate:
            conditions = [c for _, c in live]
            if not conditions_are_disjoint(conditions):
                raise OverlappingConditionsError(
                    f"polyvalue conditions overlap: {conditions}"
                )
            if not conditions_are_complete(conditions):
                raise IncompleteConditionsError(
                    f"polyvalue conditions are not complete: {conditions}"
                )
        live.sort(key=lambda pair: str(pair[1]))
        self._pairs: Tuple[Pair, ...] = tuple(live)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def in_doubt(txn: TxnId, new_value: Value, old_value: Value) -> Union["Polyvalue", Value]:
        """Build the polyvalue installed when *txn*'s outcome is unknown.

        Section 3.1: "Each such polyvalue is constructed as
        ``{<v, T>, <v', ~T>}``, where ``v`` is the new value computed by
        the transaction, ``v'`` is the previous value, and ``T`` is a
        transaction identifier for the transaction."

        Either value may itself be a polyvalue; simplification applies.
        If new and old simplify to the same value the result is that
        plain value (no uncertainty is introduced).
        """
        if not isinstance(new_value, Polyvalue) and not isinstance(
            old_value, Polyvalue
        ):
            # Fast path for the overwhelmingly common case of two simple
            # values: ``{<v, T>, <v', ~T>}`` is complete and disjoint by
            # construction, so the truth-table validation is skipped.
            if _values_equal(new_value, old_value):
                return new_value
            return Polyvalue(
                [
                    (new_value, Condition.of(txn)),
                    (old_value, Condition.not_of(txn)),
                ],
                validate=False,
            )
        result = Polyvalue(
            [
                (new_value, Condition.of(txn)),
                (old_value, Condition.not_of(txn)),
            ]
        )
        return result.collapse()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> Tuple[Pair, ...]:
        """The simplified ``(value, condition)`` pairs, in stable order."""
        return self._pairs

    def possible_values(self) -> List[Value]:
        """The distinct values this polyvalue may resolve to."""
        return [value for value, _ in self._pairs]

    def depends_on(self) -> FrozenSet[TxnId]:
        """The transaction identifiers whose outcomes this polyvalue awaits.

        This is the "tag" set that each site's outcome table tracks
        (section 3.3).
        """
        depends = self._depends
        if depends is None:
            ids: set = set()
            for _, condition in self._pairs:
                ids |= condition.variables()
            depends = frozenset(ids)
            self._depends = depends
        return depends

    def is_certain(self) -> bool:
        """True iff only one value remains possible."""
        return len(self._pairs) == 1

    def certain_value(self) -> Value:
        """The single possible value.

        Raises
        ------
        UncertainValueError
            If more than one value is still possible.
        """
        if not self.is_certain():
            raise UncertainValueError(
                f"value is uncertain; possibilities: {self.possible_values()!r}"
            )
        return self._pairs[0][0]

    def collapse(self) -> Union["Polyvalue", Value]:
        """Return the plain value when certain, else ``self``."""
        if self.is_certain():
            return self._pairs[0][0]
        return self

    def well_formedness_problems(self) -> List[str]:
        """Every way this polyvalue violates the section 3 requirements.

        An empty list means the polyvalue is well formed.  This is the
        oracle-facing view used by :mod:`repro.check.oracles`: unlike
        the constructor (which raises on the first problem and can be
        bypassed with ``validate=False``), this method reports *all*
        problems, so a protocol bug that installs a malformed polyvalue
        is described rather than masked:

        * a pair's value is itself a polyvalue (rule 1 not applied);
        * two pairs hold equal values (rule 2 not applied);
        * a pair's condition is unsatisfiable (rule 3 not applied);
        * the condition set is not complete, or not disjoint.
        """
        problems: List[str] = []
        for index, (value, condition) in enumerate(self._pairs):
            if isinstance(value, Polyvalue):
                problems.append(f"pair {index} holds a nested polyvalue")
            if condition.is_false():
                problems.append(f"pair {index} has an unsatisfiable condition")
        for index, (value, _) in enumerate(self._pairs):
            for other_index in range(index + 1, len(self._pairs)):
                if _values_equal(value, self._pairs[other_index][0]):
                    problems.append(
                        f"pairs {index} and {other_index} hold equal "
                        f"values ({value!r}) and should be merged"
                    )
        conditions = [condition for _, condition in self._pairs]
        if not conditions_are_disjoint(conditions):
            problems.append(
                f"conditions overlap (two alternatives can hold at once): "
                f"{[str(c) for c in conditions]}"
            )
        if not conditions_are_complete(conditions):
            problems.append(
                f"conditions are incomplete (some outcome selects no "
                f"value): {[str(c) for c in conditions]}"
            )
        return problems

    def value_under(self, assignment: Mapping[TxnId, bool]) -> Value:
        """The value this polyvalue takes under a complete outcome assignment."""
        for value, condition in self._pairs:
            if condition.evaluate(assignment):
                return value
        raise PolyvalueError(
            f"no condition satisfied by {dict(assignment)!r}; polyvalue "
            "conditions were not complete"
        )

    # ------------------------------------------------------------------
    # Reduction (failure recovery, section 3.3)
    # ------------------------------------------------------------------

    def reduce(self, outcomes: Mapping[TxnId, bool]) -> Union["Polyvalue", Value]:
        """Substitute known transaction *outcomes* and simplify.

        "The value of the transaction identifier for such a transaction
        can be replaced by true or false in the predicates in the
        polyvalues ... when the outcome of every transaction is known, a
        single value pair will be left in each polyvalue, eliminating
        all uncertainty."  Returns a plain value when only one pair
        survives.
        """
        if len(self._pairs) > 1 and not any(
            txn in self.depends_on() for txn in outcomes
        ):
            # None of the known outcomes mention a transaction this
            # polyvalue awaits; substitution would be an identity map.
            return self
        reduced = [
            (value, condition.substitute(outcomes))
            for value, condition in self._pairs
        ]
        live = [(v, c) for v, c in reduced if not c.is_false()]
        if not live:
            raise PolyvalueError(
                f"outcomes {dict(outcomes)!r} falsify every condition of "
                f"{self!r}; the polyvalue was malformed"
            )
        return Polyvalue(live).collapse()

    # ------------------------------------------------------------------
    # Lifted application
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Value], Value]) -> Union["Polyvalue", Value]:
        """Apply *fn* to every possible value, keeping the conditions.

        If *fn* maps all possibilities to one value the result collapses
        to that plain value — this is how "any transaction whose outputs
        do not depend on the exact correct value of a polyvalued input
        produces simple values" (section 3.2).
        """
        return Polyvalue(
            [(fn(value), condition) for value, condition in self._pairs]
        ).collapse()

    def minimized(self) -> "Polyvalue":
        """A copy whose conditions are exactly minimised (Quine-McCluskey).

        The constructor's local rewrites keep conditions small in the
        common case; after long polytransaction chains this squeezes
        out any remaining redundancy.  Semantics are unchanged, so
        validation is skipped.
        """
        from repro.core.minimize import minimize

        return Polyvalue(
            [(value, minimize(condition)) for value, condition in self._pairs],
            validate=False,
        )

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyvalue):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        # Hash only the conditions: equal polyvalues have identical
        # (sorted) condition tuples, so the hash/eq contract holds even
        # for values whose repr is unstable (dicts) or that are
        # unhashable.  Collisions between different polyvalues with the
        # same conditions are resolved by __eq__.
        return hash(tuple(condition for _, condition in self._pairs))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self):
        return iter(self._pairs)

    def __str__(self) -> str:
        rendered = ", ".join(
            f"<{value!r}, {condition}>" for value, condition in self._pairs
        )
        return "{" + rendered + "}"

    def __repr__(self) -> str:
        return f"Polyvalue({str(self)})"


# ----------------------------------------------------------------------
# Module-level helpers over "value or polyvalue"
# ----------------------------------------------------------------------


def is_polyvalue(value: Value) -> bool:
    """True iff *value* is a :class:`Polyvalue` (i.e. is uncertain)."""
    return isinstance(value, Polyvalue)


def as_pairs(value: Value) -> Tuple[Pair, ...]:
    """View any value as ``(value, condition)`` pairs.

    A simple value becomes the single pair ``<value, TRUE>``.
    """
    if isinstance(value, Polyvalue):
        return value.pairs
    return ((value, Condition.true()),)


def simplify(value: Value) -> Value:
    """Normalise: collapse a certain polyvalue to its plain value."""
    if isinstance(value, Polyvalue):
        return value.collapse()
    return value


def depends_on(value: Value) -> FrozenSet[TxnId]:
    """The in-doubt transactions *value* depends on (empty for simple values)."""
    if isinstance(value, Polyvalue):
        return value.depends_on()
    return frozenset()


def reduce_value(value: Value, outcomes: Mapping[TxnId, bool]) -> Value:
    """Apply outcome substitution to *value* if it is a polyvalue."""
    if isinstance(value, Polyvalue):
        return value.reduce(outcomes)
    return value


def combine(fn: Callable[..., Value], *operands: Value) -> Value:
    """Lift an ordinary function over possibly-polyvalued operands.

    Forms the cartesian product of the operands' alternatives, AND-ing
    conditions and pruning logically false combinations (the section 3.2
    efficiency rule), applies *fn* to each surviving combination, and
    simplifies.  Returns a plain value whenever the result does not
    actually depend on the uncertainty.

    >>> from repro.core.conditions import Condition
    >>> balance = Polyvalue([(100, Condition.of("T1")), (150, Condition.not_of("T1"))])
    >>> combine(lambda b: b >= 50, balance)
    True
    """
    if not any(isinstance(operand, Polyvalue) for operand in operands):
        # All operands are simple: no conditions to thread through, the
        # lifted application is just the application.
        return simplify(fn(*operands))
    alternatives: List[Tuple[Condition, Tuple[Value, ...]]] = [
        (Condition.true(), ())
    ]
    for operand in operands:
        expanded: List[Tuple[Condition, Tuple[Value, ...]]] = []
        for condition, values in alternatives:
            for value, value_condition in as_pairs(operand):
                joint = condition & value_condition
                if joint.is_false():
                    continue
                expanded.append((joint, values + (value,)))
        alternatives = expanded
    if not alternatives:
        raise PolyvalueError(
            "no consistent combination of operand alternatives; operands "
            "carry contradictory conditions"
        )
    pairs = [(fn(*values), condition) for condition, values in alternatives]
    return Polyvalue(pairs).collapse()


def possible_values(value: Value) -> List[Value]:
    """All values *value* might resolve to (a one-element list if simple)."""
    if isinstance(value, Polyvalue):
        return value.possible_values()
    return [value]


def definitely(predicate: Callable[[Value], bool], value: Value) -> bool:
    """True iff *predicate* holds for **every** possible value.

    This is the modal query behind section 5's reservation example: "a
    new reservation can be granted so long as the largest value in that
    polyvalue is less than the number of available rooms or seats" — i.e.
    ``definitely(lambda sold: sold < capacity, sold_count)``.
    """
    return all(predicate(v) for v in possible_values(value))


def possibly(predicate: Callable[[Value], bool], value: Value) -> bool:
    """True iff *predicate* holds for **at least one** possible value."""
    return any(predicate(v) for v in possible_values(value))


def certain(value: Value) -> Value:
    """Demand a simple value; raise :class:`UncertainValueError` otherwise.

    This implements the "withhold those outputs until the uncertainty is
    resolved" option of section 3.4 at the API level: callers that need a
    definite answer call :func:`certain` and handle the exception by
    waiting for recovery.
    """
    if isinstance(value, Polyvalue):
        return value.certain_value()
    return value


# ----------------------------------------------------------------------
# Flattening / merging internals (section 3.1 rules 1 and 2)
# ----------------------------------------------------------------------


def _flatten(pairs: Iterable[Pair]) -> List[Pair]:
    """Rule 1: expand pairs whose value is itself a polyvalue."""
    flat: List[Pair] = []
    for value, condition in pairs:
        if not isinstance(condition, Condition):
            raise PolyvalueError(
                f"pair condition must be a Condition, got {condition!r}"
            )
        if isinstance(value, Polyvalue):
            for inner_value, inner_condition in value.pairs:
                flat.append((inner_value, inner_condition & condition))
        else:
            flat.append((value, condition))
    return flat


def _values_equal(a: Value, b: Value) -> bool:
    """Equality that never merges across types like ``True == 1``.

    Values in a database can legitimately mix types; bool/int (and
    0.0/0) coincidences must not cause two semantically different
    alternatives to merge.
    """
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    try:
        return bool(a == b)
    except Exception:
        return a is b


def _merge_equal_values(pairs: Sequence[Pair]) -> List[Pair]:
    """Rule 2: combine pairs with equal values by OR-ing their conditions."""
    merged: List[Pair] = []
    for value, condition in pairs:
        for index, (existing_value, existing_condition) in enumerate(merged):
            if _values_equal(existing_value, value):
                merged[index] = (existing_value, existing_condition | condition)
                break
        else:
            merged.append((value, condition))
    return merged
