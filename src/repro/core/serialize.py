"""Serialization of conditions and polyvalues.

A real deployment of the polyvalue mechanism must write polyvalues to
stable storage (they *are* the database state during a failure) and
ship them between sites.  This module provides a stable, versioned,
JSON-compatible encoding:

* conditions encode as their sum-of-products structure;
* polyvalues encode as a list of ``(value, condition)`` pairs;
* plain values pass through untouched, so a whole item store encodes
  with :func:`encode_value` applied per item.

Only JSON-representable simple values (None, bool, int, float, str,
and lists/dicts thereof) round-trip; that covers every value the
simulators and applications use.  Decoding validates structure and
re-runs the usual polyvalue well-formedness checks, so a corrupted
blob cannot produce an inconsistent polyvalue.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.core.conditions import Condition, Literal
from repro.core.errors import PolyvalueError
from repro.core.polyvalue import Polyvalue, Value, is_polyvalue

#: Format tag stored in every encoded polyvalue, for forward evolution.
FORMAT_VERSION = 1

#: The dict key marking an encoded polyvalue.  Chosen to be invalid as
#: a plain string value key in application data by convention.
_POLY_MARKER = "__polyvalue__"
_CONDITION_MARKER = "__condition__"


class SerializationError(PolyvalueError):
    """The blob is not a valid encoding."""


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------


def encode_condition(condition: Condition) -> Dict[str, Any]:
    """Encode a condition as its sum-of-products structure."""
    products: List[List[Dict[str, Any]]] = []
    for product in sorted(
        condition.products, key=lambda p: sorted(str(l) for l in p)
    ):
        products.append(
            [
                {"txn": literal.txn, "positive": literal.positive}
                for literal in sorted(product)
            ]
        )
    return {_CONDITION_MARKER: FORMAT_VERSION, "products": products}


def decode_condition(blob: Mapping[str, Any]) -> Condition:
    """Decode :func:`encode_condition` output (validating structure)."""
    if not isinstance(blob, Mapping) or _CONDITION_MARKER not in blob:
        raise SerializationError(f"not an encoded condition: {blob!r}")
    if blob[_CONDITION_MARKER] != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported condition format version {blob[_CONDITION_MARKER]!r}"
        )
    products_blob = blob.get("products")
    if not isinstance(products_blob, list):
        raise SerializationError("condition blob missing 'products' list")
    products = []
    for product_blob in products_blob:
        if not isinstance(product_blob, list):
            raise SerializationError(f"bad product: {product_blob!r}")
        literals = []
        for literal_blob in product_blob:
            try:
                txn = literal_blob["txn"]
                positive = literal_blob["positive"]
            except (TypeError, KeyError) as error:
                raise SerializationError(
                    f"bad literal: {literal_blob!r}"
                ) from error
            if not isinstance(txn, str) or not isinstance(positive, bool):
                raise SerializationError(f"bad literal: {literal_blob!r}")
            literals.append(Literal(txn, positive))
        products.append(literals)
    return Condition(products)


# ----------------------------------------------------------------------
# Values (simple or polyvalue)
# ----------------------------------------------------------------------

_JSON_SIMPLE = (type(None), bool, int, float, str)


def _check_simple(value: Any) -> None:
    if isinstance(value, _JSON_SIMPLE):
        return
    if isinstance(value, list):
        for element in value:
            _check_simple(element)
        return
    if isinstance(value, dict):
        for key, element in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be strings, got {key!r}"
                )
            if key in (_POLY_MARKER, _CONDITION_MARKER):
                raise SerializationError(
                    f"application data may not use reserved key {key!r}"
                )
            _check_simple(element)
        return
    raise SerializationError(
        f"value of type {type(value).__name__} is not JSON-serializable"
    )


def encode_value(value: Value) -> Any:
    """Encode a simple value or polyvalue for JSON storage/transport."""
    if is_polyvalue(value):
        pairs = []
        for pair_value, condition in value.pairs:
            _check_simple(pair_value)
            pairs.append(
                {"value": pair_value, "condition": encode_condition(condition)}
            )
        return {_POLY_MARKER: FORMAT_VERSION, "pairs": pairs}
    _check_simple(value)
    return value


def decode_value(blob: Any) -> Value:
    """Decode :func:`encode_value` output.

    Polyvalue well-formedness (complete and disjoint conditions) is
    re-validated, so corrupted or hand-crafted blobs fail loudly.
    """
    if isinstance(blob, Mapping) and _POLY_MARKER in blob:
        if blob[_POLY_MARKER] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported polyvalue format version {blob[_POLY_MARKER]!r}"
            )
        pairs_blob = blob.get("pairs")
        if not isinstance(pairs_blob, list) or not pairs_blob:
            raise SerializationError("polyvalue blob missing 'pairs'")
        pairs = []
        for pair_blob in pairs_blob:
            if not isinstance(pair_blob, Mapping) or "value" not in pair_blob:
                raise SerializationError(f"bad pair: {pair_blob!r}")
            condition = decode_condition(pair_blob.get("condition"))
            pairs.append((pair_blob["value"], condition))
        return Polyvalue(pairs).collapse()
    if isinstance(blob, Mapping) and _CONDITION_MARKER in blob:
        raise SerializationError(
            "found a bare condition where a value was expected"
        )
    return blob


# ----------------------------------------------------------------------
# Whole stores
# ----------------------------------------------------------------------


def encode_state(state: Mapping[str, Value]) -> Dict[str, Any]:
    """Encode a full item→value mapping (e.g. a site's store)."""
    return {item: encode_value(value) for item, value in state.items()}


def decode_state(blob: Mapping[str, Any]) -> Dict[str, Value]:
    """Decode :func:`encode_state` output."""
    if not isinstance(blob, Mapping):
        raise SerializationError(f"state blob must be a mapping, got {blob!r}")
    return {item: decode_value(value) for item, value in blob.items()}
