"""Per-site database substrate: storage, locking and data placement."""

from repro.db.catalog import Catalog
from repro.db.locks import LockManager, LockMode
from repro.db.replication import (
    ReplicationScheme,
    all_replicas_consistent,
    read_all_replicas,
    replica_item,
    replicas_mutually_consistent,
    replicated_read,
    replicated_update,
    split_replica,
)
from repro.db.store import ItemStore

__all__ = [
    "Catalog",
    "ItemStore",
    "LockManager",
    "LockMode",
    "ReplicationScheme",
    "all_replicas_consistent",
    "read_all_replicas",
    "replica_item",
    "replicas_mutually_consistent",
    "replicated_read",
    "replicated_update",
    "split_replica",
]
