"""The data-placement catalog: which site stores which item.

The paper's model: "In a distributed database, each item is stored at
one of the sites."  The catalog is the (replicated, static) directory
every site consults to route reads and writes.  Replicated items are
modelled per the paper's remark — "an item that is replicated at several
sites can be viewed as a set of individual items, one for each site" —
i.e. by registering one catalog entry per replica.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence

from repro.core.errors import UnknownItemError
from repro.net.message import SiteId

ItemId = str


class Catalog:
    """An immutable-after-setup mapping of items to their home sites."""

    def __init__(self) -> None:
        self._site_of: Dict[ItemId, SiteId] = {}
        self._items_at: Dict[SiteId, List[ItemId]] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def place(self, item: ItemId, site: SiteId) -> None:
        """Record that *item* lives at *site*."""
        if item in self._site_of:
            raise UnknownItemError(
                f"item {item!r} is already placed at {self._site_of[item]!r}"
            )
        self._site_of[item] = site
        self._items_at.setdefault(site, []).append(item)

    @staticmethod
    def round_robin(items: Sequence[ItemId], sites: Sequence[SiteId]) -> "Catalog":
        """Spread *items* across *sites* in round-robin order."""
        catalog = Catalog()
        for index, item in enumerate(items):
            catalog.place(item, sites[index % len(sites)])
        return catalog

    @staticmethod
    def from_mapping(placement: Mapping[ItemId, SiteId]) -> "Catalog":
        """Build a catalog from an explicit item→site mapping."""
        catalog = Catalog()
        for item, site in placement.items():
            catalog.place(item, site)
        return catalog

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def site_of(self, item: ItemId) -> SiteId:
        """The home site of *item*."""
        try:
            return self._site_of[item]
        except KeyError:
            raise UnknownItemError(f"item {item!r} is not in the catalog") from None

    def items_at(self, site: SiteId) -> List[ItemId]:
        """Every item placed at *site*, in placement order."""
        return list(self._items_at.get(site, ()))

    def sites_for(self, items: Iterable[ItemId]) -> FrozenSet[SiteId]:
        """The set of sites that together hold *items*.

        This is the paper's "each transaction involves directly only
        those sites that hold the data items accessed by the
        transaction".
        """
        return frozenset(self.site_of(item) for item in items)

    def group_by_site(self, items: Iterable[ItemId]) -> Dict[SiteId, List[ItemId]]:
        """Partition *items* by home site (stable order within a site)."""
        grouped: Dict[SiteId, List[ItemId]] = {}
        for item in items:
            grouped.setdefault(self.site_of(item), []).append(item)
        return grouped

    def all_items(self) -> FrozenSet[ItemId]:
        """Every item in the catalog."""
        return frozenset(self._site_of)

    def all_sites(self) -> FrozenSet[SiteId]:
        """Every site with at least one item."""
        return frozenset(self._items_at)

    def __len__(self) -> int:
        return len(self._site_of)

    def __contains__(self, item: ItemId) -> bool:
        return item in self._site_of
