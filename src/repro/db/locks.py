"""A per-site lock manager (two-phase locking with a no-wait policy).

The paper assumes some concurrency-control mechanism serialises
transactions ("concurrent execution does not produce results that could
not be achieved by performing all processing serially") and focuses on
what happens when a *failure* hits the commit window.  We implement the
simplest serialisable scheme compatible with the protocol: strict 2PL
with read/write locks and **no-wait** conflict resolution — a
transaction that cannot get a lock is aborted and may be retried by the
client.  No-wait keeps the simulator deadlock-free without a distributed
deadlock detector, which the paper does not describe.

The essential interaction with polyvalues: when a participant times out
in its wait phase and installs polyvalues, it *releases the locks* the
in-doubt transaction held.  Items become available immediately — that is
precisely the availability the mechanism buys.  The blocking-2PC
baseline differs only in keeping those locks until the outcome is known.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.core.errors import LockError

ItemId = str
TxnId = str


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) access."""

    READ = "read"
    WRITE = "write"


@dataclass
class _ItemLock:
    mode: Optional[LockMode] = None
    holders: Set[TxnId] = field(default_factory=set)


class LockManager:
    """Read/write locks over this site's items, no-wait policy."""

    def __init__(self) -> None:
        self._locks: Dict[ItemId, _ItemLock] = {}
        self._held_by_txn: Dict[TxnId, Set[ItemId]] = {}
        #: Lifetime counter of acquisition attempts refused by conflicts.
        self.conflicts = 0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def try_acquire(self, txn: TxnId, item: ItemId, mode: LockMode) -> bool:
        """Attempt to lock *item* for *txn*; False on conflict (no waiting).

        Re-acquiring a lock already held is a no-op; a sole read holder
        may upgrade to write.
        """
        lock = self._locks.setdefault(item, _ItemLock())
        if not lock.holders:
            lock.mode = mode
            lock.holders.add(txn)
            self._held_by_txn.setdefault(txn, set()).add(item)
            return True
        if txn in lock.holders:
            if mode == LockMode.READ or lock.mode == LockMode.WRITE:
                return True
            if len(lock.holders) == 1:
                lock.mode = LockMode.WRITE  # upgrade: sole reader
                return True
            self.conflicts += 1
            return False
        if mode == LockMode.READ and lock.mode == LockMode.READ:
            lock.holders.add(txn)
            self._held_by_txn.setdefault(txn, set()).add(item)
            return True
        self.conflicts += 1
        return False

    def acquire(self, txn: TxnId, item: ItemId, mode: LockMode) -> None:
        """Like :meth:`try_acquire` but raises :class:`LockError` on conflict."""
        if not self.try_acquire(txn, item, mode):
            holders = self.holders(item)
            raise LockError(
                f"txn {txn!r} cannot {mode.value}-lock item {item!r}; "
                f"held by {sorted(holders)}"
            )

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release(self, txn: TxnId, item: ItemId) -> None:
        """Release *txn*'s lock on *item* (no-op if not held)."""
        lock = self._locks.get(item)
        if lock is None or txn not in lock.holders:
            return
        lock.holders.discard(txn)
        if not lock.holders:
            del self._locks[item]
        held = self._held_by_txn.get(txn)
        if held is not None:
            held.discard(item)
            if not held:
                del self._held_by_txn[txn]

    def release_all(self, txn: TxnId) -> None:
        """Release every lock *txn* holds (commit, abort, or polyvalue
        installation all end with this)."""
        for item in list(self._held_by_txn.get(txn, ())):
            self.release(txn, item)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def holders(self, item: ItemId) -> FrozenSet[TxnId]:
        """The transactions currently holding a lock on *item*."""
        lock = self._locks.get(item)
        return frozenset(lock.holders) if lock else frozenset()

    def mode_of(self, item: ItemId) -> Optional[LockMode]:
        """The current lock mode of *item*, or None if unlocked."""
        lock = self._locks.get(item)
        return lock.mode if lock and lock.holders else None

    def held_by(self, txn: TxnId) -> FrozenSet[ItemId]:
        """The items *txn* currently has locked."""
        return frozenset(self._held_by_txn.get(txn, ()))

    def locked_items(self) -> FrozenSet[ItemId]:
        """Every item with at least one holder."""
        return frozenset(
            item for item, lock in self._locks.items() if lock.holders
        )

    def is_locked(self, item: ItemId) -> bool:
        """True iff *item* has at least one holder."""
        return bool(self._locks.get(item) and self._locks[item].holders)
