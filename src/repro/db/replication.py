"""Replication: one logical item stored at several sites.

Section 3 of the paper: "An item that is replicated at several sites
can be viewed as a set of individual items, one for each site."  This
module is that view, made concrete:

* a *logical* item ``x`` replicated at sites A and B becomes physical
  items ``x::A`` and ``x::B``, each placed at its own site;
* a replicated **update** is an ordinary multi-site atomic transaction
  that writes every replica (write-all) — which is precisely the kind
  of update the polyvalue mechanism protects: a failure in its commit
  window leaves *some replicas polyvalued*, not the system blocked;
* a replicated **read** goes to one chosen replica (read-any), or to
  all replicas when the caller wants to cross-check.

The consistency invariant for a correct history is subtler than
"replicas are equal": while updates are in doubt, replicas of the same
logical item hold polyvalues rather than values.  What must hold is
that **under every assignment of outcomes to the in-doubt
transactions, all replicas resolve to the same value** —
:func:`replicas_mutually_consistent` checks exactly that, via the
condition algebra.  (The check is momentarily conservative while an
outcome notification is in flight between two replica sites: the
already-reduced replica no longer records that the discarded branch is
unreachable.  Evaluate it at stable points — during an outage after
timeouts have settled, or after full recovery — as the tests do.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ReproError, UnknownItemError
from repro.core.polyvalue import Value, combine
from repro.db.catalog import Catalog
from repro.net.message import SiteId

LogicalId = str
ItemId = str

_SEPARATOR = "::"


def replica_item(logical: LogicalId, site: SiteId) -> ItemId:
    """The physical item id of *logical*'s replica at *site*."""
    if _SEPARATOR in logical:
        raise ReproError(
            f"logical item id {logical!r} may not contain {_SEPARATOR!r}"
        )
    return f"{logical}{_SEPARATOR}{site}"


def split_replica(item: ItemId) -> Tuple[LogicalId, SiteId]:
    """Inverse of :func:`replica_item`."""
    logical, separator, site = item.partition(_SEPARATOR)
    if not separator or not site:
        raise ReproError(f"{item!r} is not a replica item id")
    return logical, site


@dataclass(frozen=True)
class ReplicationScheme:
    """Which sites replicate which logical items.

    Build one with :meth:`full` (every item everywhere) or
    :meth:`explicit`, then materialise the physical placement with
    :meth:`catalog` and :meth:`initial_values`.
    """

    placement: Mapping[LogicalId, Tuple[SiteId, ...]]

    def __post_init__(self) -> None:
        for logical, sites in self.placement.items():
            if not sites:
                raise ReproError(f"{logical!r} has no replica sites")
            if len(set(sites)) != len(sites):
                raise ReproError(f"{logical!r} lists a site twice: {sites}")

    @staticmethod
    def full(
        logical_items: Sequence[LogicalId], sites: Sequence[SiteId]
    ) -> "ReplicationScheme":
        """Every logical item replicated at every site."""
        return ReplicationScheme(
            {logical: tuple(sites) for logical in logical_items}
        )

    @staticmethod
    def explicit(
        placement: Mapping[LogicalId, Sequence[SiteId]]
    ) -> "ReplicationScheme":
        """An explicit per-item replica list."""
        return ReplicationScheme(
            {logical: tuple(sites) for logical, sites in placement.items()}
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def sites_of(self, logical: LogicalId) -> Tuple[SiteId, ...]:
        """The replica sites of *logical*."""
        try:
            return self.placement[logical]
        except KeyError:
            raise UnknownItemError(
                f"{logical!r} is not a replicated item"
            ) from None

    def replicas_of(self, logical: LogicalId) -> List[ItemId]:
        """The physical replica items of *logical*."""
        return [replica_item(logical, site) for site in self.sites_of(logical)]

    def logical_items(self) -> List[LogicalId]:
        """All logical items, sorted."""
        return sorted(self.placement)

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def catalog(self) -> Catalog:
        """A physical catalog placing each replica at its home site."""
        catalog = Catalog()
        for logical in self.logical_items():
            for site in self.sites_of(logical):
                catalog.place(replica_item(logical, site), site)
        return catalog

    def initial_values(
        self, values: Mapping[LogicalId, Value]
    ) -> Dict[ItemId, Value]:
        """Replicate a logical initial state into physical items."""
        physical: Dict[ItemId, Value] = {}
        for logical, value in values.items():
            for item in self.replicas_of(logical):
                physical[item] = value
        return physical


# ----------------------------------------------------------------------
# Replicated transactions
# ----------------------------------------------------------------------


def replicated_update(
    scheme: ReplicationScheme,
    logical: LogicalId,
    update: Callable[[Value], Value],
    *,
    label: str = "",
):
    """A write-all update of one replicated item.

    Reads the replica at the first listed site (the primary copy in
    primary-copy terms) and writes the computed value to every replica
    atomically.  If a failure interrupts the commit, each surviving
    replica site independently installs a polyvalue — the replicas stay
    mutually consistent in the conditional sense checked by
    :func:`replicas_mutually_consistent`.
    """
    from repro.txn.transaction import Transaction

    replicas = scheme.replicas_of(logical)

    def body(ctx):
        current = ctx.read(replicas[0])
        new_value = update(current)
        for replica in replicas:
            ctx.write(replica, new_value)

    return Transaction(
        body=body,
        items=tuple(replicas),
        label=label or f"replicated-update:{logical}",
    )


def replicated_read(
    scheme: ReplicationScheme,
    logical: LogicalId,
    *,
    at_site: Optional[SiteId] = None,
    output: str = "value",
):
    """A read-any of one replicated item.

    Reads the replica at *at_site* (default: the first replica site)
    and reports it — possibly as a polyvalue (section 3.4's choice to
    present uncertainty).  Only that one site needs to be reachable:
    replication plus polyvalues keeps reads available through both
    replica-site failures *and* in-doubt windows.
    """
    from repro.txn.transaction import Transaction

    sites = scheme.sites_of(logical)
    site = at_site if at_site is not None else sites[0]
    if site not in sites:
        raise ReproError(f"{logical!r} has no replica at {site!r}")
    replica = replica_item(logical, site)

    def body(ctx):
        ctx.output(output, ctx.read_raw(replica))

    return Transaction(
        body=body, items=(replica,), label=f"replicated-read:{logical}@{site}"
    )


def read_all_replicas(scheme: ReplicationScheme, logical: LogicalId):
    """Read every replica and report agreement.

    Outputs ``values`` (the per-site raw values) and ``agree`` — True
    iff all replicas *definitely* resolve to the same value under every
    outcome (the lifted pairwise-equality check).
    """
    from repro.txn.transaction import Transaction

    replicas = scheme.replicas_of(logical)

    def body(ctx):
        raw = [ctx.read_raw(replica) for replica in replicas]
        agree = combine(
            lambda *resolved: all(v == resolved[0] for v in resolved), *raw
        )
        ctx.output("values", {r: v for r, v in zip(replicas, raw)})
        ctx.output("agree", agree)

    return Transaction(
        body=body, items=tuple(replicas), label=f"read-all:{logical}"
    )


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


def replicas_mutually_consistent(
    state: Mapping[ItemId, Value], scheme: ReplicationScheme, logical: LogicalId
) -> bool:
    """True iff all replicas of *logical* agree under every outcome.

    Replicas holding *different polyvalues* are fine as long as, for
    every assignment of outcomes to the union of their in-doubt
    transactions, they resolve to the same value.  The check is the
    lifted conjunction of pairwise equalities, which must collapse to a
    certain True.
    """
    values = [state[item] for item in scheme.replicas_of(logical)]
    if len(values) == 1:
        return True
    verdict = combine(
        lambda *resolved: all(v == resolved[0] for v in resolved), *values
    )
    return verdict is True


def all_replicas_consistent(
    state: Mapping[ItemId, Value], scheme: ReplicationScheme
) -> bool:
    """:func:`replicas_mutually_consistent` over every logical item."""
    return all(
        replicas_mutually_consistent(state, scheme, logical)
        for logical in scheme.logical_items()
    )
