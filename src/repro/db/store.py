"""Per-site item storage.

Each site of the distributed database stores a disjoint set of items
("each item is stored at one of the sites", section 3).  The store maps
item identifiers to current values, where a value is either a simple
Python value or a :class:`~repro.core.polyvalue.Polyvalue`.

The store knows nothing about transactions or the network; installing
and discarding staged updates is the participant's job
(:mod:`repro.txn.participant`).  It does track polyvalue bookkeeping
counters because "number of items with polyvalues" is the paper's
central metric.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping

from repro.core.errors import UnknownItemError
from repro.core.polyvalue import Value, is_polyvalue

ItemId = str


class ItemStore:
    """The current values of the items one site is responsible for."""

    def __init__(self, initial: Mapping[ItemId, Value] = ()) -> None:
        self._values: Dict[ItemId, Value] = dict(initial)
        #: Lifetime counters, consumed by the metrics layer.
        self.polyvalues_installed = 0
        self.polyvalues_resolved = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(self, item: ItemId) -> Value:
        """The current value of *item* (simple or polyvalue)."""
        try:
            return self._values[item]
        except KeyError:
            raise UnknownItemError(f"item {item!r} is not stored here") from None

    def contains(self, item: ItemId) -> bool:
        """True iff this store holds *item*."""
        return item in self._values

    def snapshot(self, items) -> Dict[ItemId, Value]:
        """The current values of several items at once."""
        return {item: self.read(item) for item in items}

    def items(self) -> FrozenSet[ItemId]:
        """Every item identifier stored here."""
        return frozenset(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._values)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def create(self, item: ItemId, value: Value) -> None:
        """Add a new item (used only during database setup)."""
        if item in self._values:
            raise UnknownItemError(f"item {item!r} already exists")
        self._values[item] = value

    def write(self, item: ItemId, value: Value) -> None:
        """Overwrite *item* with *value*, maintaining polyvalue counters."""
        if item not in self._values:
            raise UnknownItemError(f"item {item!r} is not stored here")
        was_poly = is_polyvalue(self._values[item])
        now_poly = is_polyvalue(value)
        if now_poly and not was_poly:
            self.polyvalues_installed += 1
        elif was_poly and not now_poly:
            self.polyvalues_resolved += 1
        self._values[item] = value

    # ------------------------------------------------------------------
    # Polyvalue accounting
    # ------------------------------------------------------------------

    def polyvalued_items(self) -> List[ItemId]:
        """The items currently holding polyvalues, in stable order."""
        return sorted(
            item for item, value in self._values.items() if is_polyvalue(value)
        )

    def polyvalue_count(self) -> int:
        """How many items currently hold polyvalues (the paper's ``P``)."""
        return sum(1 for value in self._values.values() if is_polyvalue(value))

    def all_values(self) -> Dict[ItemId, Value]:
        """A copy of the full item→value mapping (for assertions/tests)."""
        return dict(self._values)
