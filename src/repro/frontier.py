"""The commit-protocol frontier: four protocols, one fault matrix.

The bake-off's headline artifact.  Every protocol in
:data:`FRONTIER_PROTOCOLS` runs the **identical** seed-derived fault
matrix — the same scenarios, the same traffic, the same crash /
partition walks at the same virtual times — and the campaign reports
the availability/latency/message-cost frontier:

* **commit availability** — committed / (committed + aborted);
* **commit latency** — mean and p99 submission-to-commit seconds;
* **message cost** — network sends per committed transaction.

The protocols occupy deliberately different points on that frontier
(see ``docs/protocols.md``): blocking is cheapest per commit but
stalls under coordinator loss; polyvalues buy availability with
forwarding traffic; Paxos Commit buys non-blocking termination with
2F+1 acceptors' worth of messages; path-sensitive commit skips
coordination entirely for order-invariant transactions.  The campaign
makes those trade-offs *measured* rather than asserted, and feeds
floor guards into ``BENCH_perf.json`` so CI notices when a protocol
falls off its frontier point.

Sanity anchor (Didona & Zwaenepoel, "Size-aware Sharding", and the
general coordination literature): a coordinated commit cannot finish
faster than one round trip, so every coordinated protocol's mean
commit latency must be at least ``2 x`` the healthy one-way link
latency.  A measured mean below that floor means the harness is
mis-measuring (e.g. counting local fast-path commits as coordinated),
not that the protocol got supernaturally fast.

Trials run through the shared campaign engine
(:func:`repro.parallel.pool.run_trials`), so ``--jobs N`` shards them
across cores with bit-identical results at any worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.net.failures import ScheduleScript
from repro.obs.events import EventBus
from repro.parallel.pool import run_trials
from repro.parallel.seeds import trial_seeds
from repro.txn.config import PROTOCOL_NAMES, config_for_protocol
from repro.check.explorer import Schedule, random_walk
from repro.check.scenarios import SCENARIOS, build_scenario

#: The bake-off peers, in presentation order.  (``relaxed`` is excluded
#: by default: it trades correctness, not performance, and the oracle
#: suite exists to show exactly that — see ``repro check``.)
FRONTIER_PROTOCOLS: Tuple[str, ...] = (
    "polyvalue",
    "blocking",
    "paxos",
    "pathsensitive",
)

#: Protocols whose every commit crosses the network at least once
#: (the Didona sanity floor applies to these).
COORDINATED: Tuple[str, ...] = ("polyvalue", "blocking", "paxos")

#: Scenario subsets: full mode runs every scenario, smoke trims to the
#: two cheapest scopes (mirroring the chaos campaign's CI budget).
FULL_SCENARIOS: Tuple[str, ...] = ("pair", "transfers", "mixed")
SMOKE_SCENARIOS: Tuple[str, ...] = ("pair", "transfers")

#: Fail-stop walk length per faulty schedule.
WALK_STEPS_FULL = 10
WALK_STEPS_SMOKE = 6


def fault_matrix(
    *,
    campaign_seed: int = 0,
    trials: int = 4,
    scenarios: Sequence[str] = FULL_SCENARIOS,
    steps: int = WALK_STEPS_FULL,
) -> List[Schedule]:
    """The protocol-independent fault matrix: one failure-free schedule
    per scenario (the clean-path latency anchor) plus *trials* seeded
    fail-stop walks per scenario.

    The matrix mentions no protocol — the campaign crosses it with
    :data:`FRONTIER_PROTOCOLS`, so every protocol faces byte-identical
    adversity and the measured differences are attributable to the
    protocol alone.
    """
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            raise SimulationError(f"unknown scenario {scenario!r}")
    matrix: List[Schedule] = []
    for scenario in scenarios:
        matrix.append(
            Schedule(
                scenario=scenario,
                seed=campaign_seed,
                actions=(),
                label=f"frontier:{scenario}:clean",
            )
        )
        for seed in trial_seeds(campaign_seed, trials):
            walk = random_walk(scenario, seed, steps=steps)
            matrix.append(
                Schedule(
                    scenario=walk.scenario,
                    seed=walk.seed,
                    actions=walk.actions,
                    horizon=walk.horizon,
                    label=f"frontier:{scenario}:{seed}",
                )
            )
    return matrix


def _frontier_trial(task: Tuple[str, Schedule]) -> Dict[str, Any]:
    """One (protocol, schedule) measurement — the engine worker.

    Mirrors the explorer's run shape (apply actions at exact virtual
    times, then repair everything and settle) but collects the metrics
    the frontier is made of instead of judging oracles; correctness
    under these exact schedules is the explorer's and chaos campaign's
    job.
    """
    protocol, schedule = task
    system = build_scenario(
        schedule.scenario,
        schedule.seed,
        config=config_for_protocol(protocol),
    )
    script = ScheduleScript(system.sim, system, system.network, ())
    for action in sorted(schedule.actions, key=lambda entry: entry.at):
        system.run_until(action.at)
        script.apply(action)
    system.run_until(max(system.sim.now, schedule.horizon))
    system.network.heal_all()
    system.network.clear_degradations()
    for site in system.down_sites():
        system.recover_site(site)
    settled = system.settle(max_time=system.sim.now + 120.0, step=0.5)
    metrics = system.metrics
    return {
        "protocol": protocol,
        "label": schedule.label,
        "submitted": metrics.submitted,
        "committed": metrics.committed,
        "aborted": metrics.aborted,
        "latencies": list(metrics.commit_latencies),
        "messages": system.network.stats.sent,
        "settled": settled,
        "base_latency": system.network.base_latency,
    }


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (empty -> 0.0)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class ProtocolFrontier:
    """One protocol's aggregated point on the frontier."""

    protocol: str
    schedules: int = 0
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    messages: int = 0
    latencies: List[float] = field(default_factory=list)
    unsettled: int = 0

    @property
    def availability(self) -> float:
        decided = self.committed + self.aborted
        return self.committed / decided if decided else 0.0

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def p99_latency(self) -> float:
        return _percentile(self.latencies, 0.99)

    @property
    def messages_per_commit(self) -> float:
        return self.messages / max(1, self.committed)


@dataclass
class FrontierReport:
    """Aggregate of one frontier campaign."""

    campaign_seed: int
    protocols: Dict[str, ProtocolFrontier] = field(default_factory=dict)
    schedules_per_protocol: int = 0
    wall_seconds: float = 0.0
    base_latency: float = 0.0
    failed_trials: List[str] = field(default_factory=list)

    @property
    def didona_ok(self) -> bool:
        """Every coordinated protocol's mean commit latency clears the
        one-round-trip floor (see the module docstring)."""
        floor = 2.0 * self.base_latency
        return all(
            stats.mean_latency >= floor
            for name, stats in self.protocols.items()
            if name in COORDINATED and stats.latencies
        )

    @property
    def ok(self) -> bool:
        return (
            not self.failed_trials
            and self.didona_ok
            and all(
                stats.unsettled == 0 for stats in self.protocols.values()
            )
            and all(
                stats.committed > 0 for stats in self.protocols.values()
            )
        )

    def to_bench(self) -> Dict[str, Dict[str, Any]]:
        """The ``BENCH_perf.json`` contribution: results + floor guards.

        Guards are per-protocol commit availability (a regression means
        a protocol started aborting or stalling where it used to
        commit) plus the path-sensitive message advantage — the whole
        point of coordination avoidance is fewer messages per commit
        than the polyvalue protocol on the same matrix.
        """
        results: Dict[str, Any] = {
            "frontier_schedules_per_protocol": self.schedules_per_protocol,
            "frontier_didona_ok": self.didona_ok,
            "frontier_settled": all(
                stats.unsettled == 0 for stats in self.protocols.values()
            ),
        }
        guards: Dict[str, Any] = {}
        for name, stats in self.protocols.items():
            results[f"frontier_{name}_committed"] = stats.committed
            results[f"frontier_{name}_aborted"] = stats.aborted
            results[f"frontier_{name}_mean_latency_ms"] = round(
                stats.mean_latency * 1000.0, 2
            )
            results[f"frontier_{name}_p99_latency_ms"] = round(
                stats.p99_latency * 1000.0, 2
            )
            results[f"frontier_{name}_msgs_per_commit"] = round(
                stats.messages_per_commit, 2
            )
            guards[f"frontier_availability_{name}"] = round(
                stats.availability, 3
            )
        polyvalue = self.protocols.get("polyvalue")
        path = self.protocols.get("pathsensitive")
        if polyvalue and path and path.messages_per_commit > 0:
            guards["frontier_path_message_advantage"] = round(
                polyvalue.messages_per_commit / path.messages_per_commit, 2
            )
        return {"results": results, "guards": guards}

    def summary_lines(self) -> List[str]:
        lines = [
            f"frontier: {len(self.protocols)} protocol(s) x "
            f"{self.schedules_per_protocol} schedule(s) in "
            f"{self.wall_seconds:.2f}s wall "
            f"(base latency {self.base_latency * 1000:.0f} ms one-way)",
            "  protocol       avail   mean ms    p99 ms  msg/commit",
        ]
        for name in FRONTIER_PROTOCOLS:
            stats = self.protocols.get(name)
            if stats is None:
                continue
            lines.append(
                f"  {name:<13}"
                f"{stats.availability:>7.3f}"
                f"{stats.mean_latency * 1000:>10.2f}"
                f"{stats.p99_latency * 1000:>10.2f}"
                f"{stats.messages_per_commit:>12.2f}"
            )
        lines.append(
            "  didona sanity (coordinated mean >= 1 RTT): "
            + ("ok" if self.didona_ok else "VIOLATED")
        )
        if self.failed_trials:
            lines.append(
                f"  {len(self.failed_trials)} FAILED TRIAL(S): "
                + "; ".join(self.failed_trials)
            )
        return lines


def run_frontier(
    *,
    campaign_seed: int = 0,
    trials: int = 4,
    scenarios: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = FRONTIER_PROTOCOLS,
    smoke: bool = False,
    jobs: Optional[int] = 1,
    bus: Optional[EventBus] = None,
) -> FrontierReport:
    """Run the frontier campaign: every protocol over the same matrix.

    ``smoke=True`` trims scenarios and walk length to the CI budget.
    *jobs* selects the campaign engine's worker count (``1`` = serial,
    ``None`` = every core); aggregation is order-independent sums over
    per-trial results merged in task order, so the report is
    bit-identical at any worker count.
    """
    for protocol in protocols:
        if protocol not in PROTOCOL_NAMES:
            raise SimulationError(
                f"unknown protocol {protocol!r}; choose from {PROTOCOL_NAMES}"
            )
    if scenarios is None:
        scenarios = SMOKE_SCENARIOS if smoke else FULL_SCENARIOS
    steps = WALK_STEPS_SMOKE if smoke else WALK_STEPS_FULL
    matrix = fault_matrix(
        campaign_seed=campaign_seed,
        trials=trials,
        scenarios=scenarios,
        steps=steps,
    )
    tasks: List[Tuple[str, Schedule]] = [
        (protocol, schedule)
        for protocol in protocols
        for schedule in matrix
    ]
    report = FrontierReport(
        campaign_seed=campaign_seed,
        schedules_per_protocol=len(matrix),
    )
    started = time.perf_counter()
    outcome = run_trials(
        _frontier_trial, tasks, jobs=jobs, bus=bus, label="frontier"
    )
    for (protocol, schedule), result in zip(tasks, outcome.results):
        if result is None:
            continue
        stats = report.protocols.setdefault(
            protocol, ProtocolFrontier(protocol=protocol)
        )
        stats.schedules += 1
        stats.submitted += result["submitted"]
        stats.committed += result["committed"]
        stats.aborted += result["aborted"]
        stats.messages += result["messages"]
        stats.latencies.extend(result["latencies"])
        if not result["settled"]:
            stats.unsettled += 1
        report.base_latency = result["base_latency"]
    report.failed_trials = [
        f"{tasks[failure.index][0]}:{tasks[failure.index][1].label}: "
        f"{failure.error}"
        for failure in outcome.failures
    ]
    report.wall_seconds = time.perf_counter() - started
    return report
