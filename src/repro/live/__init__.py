"""repro.live — the wall-clock cluster on top of the Runtime seam.

The same :mod:`repro.txn` state machines the simulator drives, stood up
as a real localhost cluster: length-prefixed JSON protocol frames over
TCP (:mod:`repro.live.wire`), an asyncio composition root
(:mod:`repro.live.cluster`), a stdlib HTTP/JSON control surface
(:mod:`repro.live.httpapi`) behind ``python -m repro serve``, a
scripted client (:mod:`repro.live.client`) behind
``python -m repro client``, and a declarative JSON transaction DSL
(:mod:`repro.live.txnscript`) since live clients cannot ship Python
lambdas.  See ``docs/runtime.md``.
"""

from repro.live.cluster import ClusterThread, LiveCluster, LiveClusterError
from repro.live.httpapi import HttpApi, run_serve
from repro.live.txnscript import TransactionScriptError, compile_script
from repro.live.wire import (
    WireError,
    decode_envelope,
    decode_message,
    encode_envelope,
    encode_message,
)

__all__ = [
    "ClusterThread",
    "HttpApi",
    "LiveCluster",
    "LiveClusterError",
    "TransactionScriptError",
    "WireError",
    "compile_script",
    "decode_envelope",
    "decode_message",
    "encode_envelope",
    "encode_message",
    "run_serve",
]
