"""Scripted client for a live cluster — ``python -m repro client``.

A thin :mod:`urllib.request` driver over the HTTP API so a running
``python -m repro serve`` cluster can be exercised without curl
incantations.  Commands::

    health                       liveness + down-site list
    state                        full cluster summary
    item ITEM                    read one item
    txn TXN                      query one transaction's outcome
    transfer FROM TO AMOUNT      submit a transfer script (reads both,
                                 debits FROM, credits TO)
    submit JSON                  submit a raw transaction script
    crash SITE / restart SITE    failure injection
    demo                         end-to-end tour: transfer, crash the
                                 coordinator mid-transaction, restart,
                                 show the outcome resolve

All commands print the server's JSON response.  ``--wait`` blocks a
submit until the transaction is decided.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional


class ClientError(Exception):
    """The server rejected a request or could not be reached."""


def request(
    base: str,
    path: str,
    *,
    method: str = "GET",
    body: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
) -> Dict[str, Any]:
    """One HTTP round-trip; returns the decoded JSON response."""
    data = None
    headers = {"Accept": "application/json"}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        base.rstrip("/") + path, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            message = payload.get("error", str(exc))
        except Exception:  # noqa: BLE001 - best-effort error body
            message = str(exc)
        raise ClientError(f"{exc.code}: {message}") from None
    except urllib.error.URLError as exc:
        raise ClientError(f"cannot reach {base}: {exc.reason}") from None


def transfer_script(source: str, target: str, amount: int) -> Dict[str, Any]:
    """The canonical two-item transfer as a transaction script."""
    return {
        "label": f"transfer:{source}->{target}",
        "items": [source, target],
        "ops": [
            {"write": source, "expr": ["-", ["read", source], amount]},
            {"write": target, "expr": ["+", ["read", target], amount]},
        ],
    }


def wait_for_health(base: str, *, timeout: float = 15.0) -> Dict[str, Any]:
    """Poll ``/health`` until the server answers (serve takes a moment)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return request(base, "/health", timeout=2.0)
        except ClientError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def poll_txn(
    base: str, txn: str, *, timeout: float = 15.0
) -> Dict[str, Any]:
    """Poll ``/txn/<id>`` until the outcome is decided."""
    deadline = time.monotonic() + timeout
    while True:
        described = request(base, f"/txn/{txn}")
        if described.get("status") != "pending":
            return described
        if time.monotonic() >= deadline:
            return described
        time.sleep(0.1)


def _demo(base: str, out) -> int:
    """Commit a transfer, then crash the coordinator mid-transaction,
    restart it, and watch the in-doubt outcome resolve."""
    state = request(base, "/state")
    sites = sorted(state["sites"])
    items: List[str] = []
    for site_id in sites:
        items.extend(state["sites"][site_id]["items"])
    if len(items) < 2:
        raise ClientError("demo needs at least two items")
    source, target = items[0], items[1]
    print(f"[demo] transfer 5: {source} -> {target} (wait)", file=out)
    decided = request(
        base,
        "/txn",
        method="POST",
        body={"script": transfer_script(source, target, 5), "wait": True},
    )
    print(json.dumps(decided, indent=2, sort_keys=True), file=out)
    coordinator = sites[0]
    print(f"[demo] submit transfer, then crash coordinator {coordinator}", file=out)
    pending = request(
        base,
        "/txn",
        method="POST",
        body={"script": transfer_script(items[0], items[-1], 3), "at": coordinator},
    )
    request(base, "/crash", method="POST", body={"site": coordinator})
    time.sleep(0.5)
    request(base, "/restart", method="POST", body={"site": coordinator})
    print(f"[demo] coordinator restarted; polling {pending['txn']}", file=out)
    outcome = poll_txn(base, pending["txn"])
    print(json.dumps(outcome, indent=2, sort_keys=True), file=out)
    if outcome.get("status") == "pending":
        print("[demo] FAILED: outcome did not resolve", file=out)
        return 1
    print(f"[demo] resolved: {outcome['status']}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro client", description="drive a live repro cluster"
    )
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of the serve API (default http://127.0.0.1:PORT)",
    )
    parser.add_argument(
        "--port", type=int, default=8790, help="serve port when --url is unset"
    )
    parser.add_argument(
        "--wait", action="store_true", help="block submits until decided"
    )
    parser.add_argument(
        "--timeout", type=float, default=15.0, help="wait/poll timeout (s)"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("health")
    sub.add_parser("state")
    item = sub.add_parser("item")
    item.add_argument("item")
    txn = sub.add_parser("txn")
    txn.add_argument("txn")
    transfer = sub.add_parser("transfer")
    transfer.add_argument("source")
    transfer.add_argument("target")
    transfer.add_argument("amount", type=int)
    submit = sub.add_parser("submit")
    submit.add_argument("script", help="transaction script as a JSON string")
    for submitting in (transfer, submit):
        submitting.add_argument("--at", default=None, help="coordinator site")
        # SUPPRESS so these only land in the namespace when given here,
        # letting the pre-subcommand spellings keep working too.
        submitting.add_argument(
            "--wait", action="store_true", default=argparse.SUPPRESS
        )
        submitting.add_argument(
            "--timeout", type=float, default=argparse.SUPPRESS
        )
    for name in ("crash", "restart"):
        failure = sub.add_parser(name)
        failure.add_argument("site")
    sub.add_parser("demo")
    args = parser.parse_args(argv)

    base = args.url if args.url else f"http://127.0.0.1:{args.port}"
    try:
        if args.command == "demo":
            wait_for_health(base, timeout=args.timeout)
            return _demo(base, out)
        if args.command == "health":
            result = request(base, "/health")
        elif args.command == "state":
            result = request(base, "/state")
        elif args.command == "item":
            result = request(base, f"/item/{args.item}")
        elif args.command == "txn":
            result = poll_txn(base, args.txn, timeout=args.timeout)
        elif args.command in ("crash", "restart"):
            result = request(
                base, f"/{args.command}", method="POST", body={"site": args.site}
            )
        else:  # transfer / submit
            if args.command == "transfer":
                script = transfer_script(args.source, args.target, args.amount)
            else:
                try:
                    script = json.loads(args.script)
                except json.JSONDecodeError as exc:
                    raise ClientError(f"script is not JSON: {exc}") from None
            body: Dict[str, Any] = {"script": script}
            if args.at:
                body["at"] = args.at
            if args.wait:
                body["wait"] = True
                body["timeout"] = args.timeout
            result = request(base, "/txn", method="POST", body=body)
        print(json.dumps(result, indent=2, sort_keys=True), file=out)
        return 0
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
