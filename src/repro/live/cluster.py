"""LiveCluster — N polyvalue database sites on wall-clock sockets.

The live counterpart of :class:`repro.txn.system.DistributedSystem`:
the same :class:`~repro.txn.site.DatabaseSite` /
:class:`~repro.txn.paxos.PaxosSite` state machines, the same
:class:`~repro.txn.runtime.SiteRuntime` services, composed over an
:class:`~repro.runtime.aio.AsyncioRuntime` instead of the simulator.
Timers are real ``call_later`` timers, messages are JSON frames over
localhost TCP, and each site checkpoints its durable state to a JSON
file after every action — so :meth:`crash`/:meth:`restart` genuinely
exercise restart-from-disk.

Transactions arrive as JSON scripts (:mod:`repro.live.txnscript`)
because live clients cannot ship Python callables.

Path-sensitive commit stays sim-only: its pre-analysis probes execute
the transaction *body* ahead of coordination, which the script DSL
supports, but its local-apply convergence accounting is validated
against the simulator's quiescence notion that has no live equivalent
yet.  ``LIVE_PROTOCOLS`` is the supported set.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.core.errors import ReproError
from repro.core.polyvalue import Value, is_polyvalue
from repro.core.outcome import OutcomeLog, OutcomeTable
from repro.core.serialize import encode_value
from repro.db.catalog import Catalog
from repro.db.locks import LockManager
from repro.db.store import ItemStore
from repro.metrics.collector import MetricsCollector
from repro.net.message import SiteId
from repro.obs.events import EventBus
from repro.runtime.aio import AsyncioRuntime
from repro.txn.config import (
    CommitProtocol,
    ProtocolConfig,
    config_for_protocol,
)
from repro.txn.paxos import DecisionBoard, PaxosSite
from repro.txn.runtime import SiteRuntime, TransitionLog
from repro.txn.site import DatabaseSite
from repro.txn.timeouts import TimeoutPolicy
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnId,
    TxnStatus,
)
from repro.live.txnscript import compile_script

ItemId = str

#: Protocols the live cluster can run (pathsensitive is sim-only).
LIVE_PROTOCOLS = ("polyvalue", "blocking", "relaxed", "paxos")


class LiveClusterError(ReproError):
    """The live cluster was misconfigured or misused."""


def _default_items(sites: int) -> Dict[ItemId, int]:
    """Two account items per site, value 100 — enough for transfers."""
    return {f"acct-{index}": 100 for index in range(sites * 2)}


class LiveCluster:
    """A wall-clock polyvalue cluster on localhost.

    Drive it from inside an asyncio event loop (``await start()`` …
    ``await stop()``), or through :class:`ClusterThread` from
    synchronous code.
    """

    def __init__(
        self,
        *,
        sites: int = 3,
        items: Optional[Mapping[ItemId, Value]] = None,
        protocol: str = "polyvalue",
        config: Optional[ProtocolConfig] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        data_dir: Optional[str] = None,
    ) -> None:
        if sites <= 0:
            raise LiveClusterError(f"need at least one site, got {sites}")
        if protocol not in LIVE_PROTOCOLS:
            raise LiveClusterError(
                f"protocol {protocol!r} is not live-capable; "
                f"expected one of {LIVE_PROTOCOLS}"
            )
        if config is None:
            # Live default: adaptive patience — the fixed constants are
            # sim-calibrated; real sockets get Jacobson RTT estimators.
            config = ProtocolConfig(timeout_policy=TimeoutPolicy(mode="adaptive"))
        self.config = config_for_protocol(protocol, config)
        self.protocol = protocol
        self.initial_values: Dict[ItemId, Value] = dict(
            items if items is not None else _default_items(sites)
        )
        site_ids = [f"site-{index}" for index in range(sites)]
        self.catalog = Catalog.round_robin(sorted(self.initial_values), site_ids)
        self.runtime = AsyncioRuntime(host=host, data_dir=data_dir, seed=seed)
        self.bus = EventBus()
        self.metrics = MetricsCollector()
        self.transitions = TransitionLog(bus=self.bus)
        self.decision_board: Optional[DecisionBoard] = None
        if self.config.protocol is CommitProtocol.PAXOS:
            self.decision_board = DecisionBoard()
        self.sites: Dict[SiteId, DatabaseSite] = {}
        self.handles: List[TransactionHandle] = []
        self._by_txn: Dict[TxnId, TransactionHandle] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Listen on every site's socket and build the state machines.

        If the data directory already holds site checkpoints (a
        previous incarnation of this cluster), each site restores from
        its file before serving — restart-the-whole-cluster recovery.
        """
        await self.runtime.start()
        for site_id in sorted(self.catalog.all_sites()):
            await self.runtime.listen(site_id)
        for site_id in sorted(self.catalog.all_sites()):
            store = ItemStore(
                {
                    item: self.initial_values[item]
                    for item in self.catalog.items_at(site_id)
                }
            )
            runtime = SiteRuntime(
                site_id=site_id,
                rt=self.runtime,
                catalog=self.catalog,
                store=store,
                locks=LockManager(),
                outcomes=OutcomeTable(),
                outcome_log=OutcomeLog(),
                config=self.config,
                metrics=self.metrics,
                transitions=self.transitions,
                bus=self.bus,
            )
            if self.decision_board is not None:
                site = PaxosSite(runtime, self.decision_board)
            else:
                site = DatabaseSite(runtime)
            self.sites[site_id] = site
            snapshot = self.runtime.load_durable(site_id)
            if snapshot is not None:
                site.restore_durable(snapshot)
                site.recover()
            self.runtime.checkpoint(site_id)
        self._started = True

    async def stop(self) -> None:
        """Stop maintenance loops and close every socket."""
        for site in self.sites.values():
            site.shutdown()
        await self.runtime.close()
        self._started = False

    # ------------------------------------------------------------------
    # Client surface

    def submit_script(
        self, script: Mapping[str, Any], *, at: Optional[SiteId] = None
    ) -> TransactionHandle:
        """Submit a JSON transaction script; returns its handle."""
        return self.submit(compile_script(script), at=at)

    def submit(
        self, transaction: Transaction, *, at: Optional[SiteId] = None
    ) -> TransactionHandle:
        """Submit *transaction*, coordinated at *at* (default: the home
        site of its first declared item).  Same contract as
        :meth:`DistributedSystem.submit`, including the immediate abort
        when the coordinator is down."""
        if not self._started:
            raise LiveClusterError("cluster is not started")
        coordinator = (
            at if at is not None else self.catalog.site_of(transaction.items[0])
        )
        if coordinator not in self.sites:
            raise LiveClusterError(f"unknown site {coordinator!r}")
        site = self.sites[coordinator]
        handle = TransactionHandle(
            txn="?",
            transaction=transaction,
            submitted_at=self.runtime.now,
        )
        self.handles.append(handle)
        if not site.is_up:
            handle.txn = f"unsent@{coordinator}"
            handle.was_delayed_by_failure = True
            handle.mark_aborted(
                self.runtime.now, f"coordinator site {coordinator} is down"
            )
            self.metrics.txn_submitted(site=coordinator)
            self.metrics.txn_aborted(site=coordinator)
            return handle
        txn = site.submit(transaction, handle)
        self._by_txn[txn] = handle
        # begin() consumed a durable sequence number and possibly logged
        # state; submit runs outside the runtime's own checkpoint
        # wrappers, so persist explicitly.
        self.runtime.checkpoint(coordinator)
        return handle

    def handle_of(self, txn: TxnId) -> Optional[TransactionHandle]:
        """The handle for *txn* (None if unknown)."""
        return self._by_txn.get(txn)

    async def wait_decided(
        self, handle: TransactionHandle, *, timeout: float = 10.0
    ) -> bool:
        """Poll until *handle* is decided; False on timeout."""
        deadline = self.runtime.now + timeout
        while handle.status is TxnStatus.PENDING:
            if self.runtime.now >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def wait_converged(self, *, timeout: float = 10.0) -> bool:
        """Poll until no polyvalues, residue, or pending handles remain."""
        deadline = self.runtime.now + timeout
        while True:
            if (
                self.total_polyvalues() == 0
                and self.total_protocol_residue() == 0
                and not self.pending_handles()
            ):
                return True
            if self.runtime.now >= deadline:
                return False
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    # Failure injection

    def crash(self, site_id: SiteId) -> None:
        """Fail-stop *site*: volatile state lost, its traffic dropped.

        Undecided transactions it coordinated are presumed aborted —
        the same contract as :meth:`DistributedSystem.crash_site`.
        """
        site = self._site(site_id)
        self.runtime.mark_down(site_id)
        undecided = site.crash()
        for handle in undecided:
            if handle.status is TxnStatus.PENDING:
                handle.was_delayed_by_failure = True
                handle.mark_aborted(
                    self.runtime.now, "coordinator crashed; presumed abort"
                )
                self.metrics.txn_aborted(site=site_id)

    def restart(self, site_id: SiteId) -> None:
        """Restart *site* from its durable checkpoint file.

        On a durable runtime the in-memory durable structures are
        overwritten from disk first — the restart path truly goes
        through the file.  Without a data dir this degrades to the
        simulator's recovery semantics (durable attributes survive in
        memory).
        """
        site = self._site(site_id)
        snapshot = self.runtime.load_durable(site_id)
        if snapshot is not None:
            site.restore_durable(snapshot)
        self.runtime.mark_up(site_id)
        site.recover()
        self.runtime.checkpoint(site_id)

    def _site(self, site_id: SiteId) -> DatabaseSite:
        try:
            return self.sites[site_id]
        except KeyError:
            raise LiveClusterError(f"unknown site {site_id!r}") from None

    # ------------------------------------------------------------------
    # Observations (mirrors the DistributedSystem surface)

    def read_item(self, item: ItemId) -> Value:
        return self.sites[self.catalog.site_of(item)].store.read(item)

    def database_state(self) -> Dict[ItemId, Value]:
        state: Dict[ItemId, Value] = {}
        for site in self.sites.values():
            state.update(site.store.all_values())
        return state

    def total_polyvalues(self) -> int:
        return sum(site.polyvalue_count() for site in self.sites.values())

    def total_protocol_residue(self) -> int:
        return sum(site.protocol_residue() for site in self.sites.values())

    def pending_handles(self) -> List[TransactionHandle]:
        return [
            handle
            for handle in self.handles
            if handle.status is TxnStatus.PENDING
        ]

    def down_sites(self) -> List[SiteId]:
        return sorted(
            site_id
            for site_id, site in self.sites.items()
            if not site.is_up
        )

    def describe(self) -> Dict[str, Any]:
        """A JSON-safe status summary (the HTTP ``/state`` payload)."""
        return {
            "protocol": self.protocol,
            "sites": {
                site_id: {
                    "up": site.is_up,
                    "port": self.runtime.port_of(site_id),
                    "items": sorted(site.store.items()),
                    "polyvalues": site.polyvalue_count(),
                    "residue": site.protocol_residue(),
                }
                for site_id, site in sorted(self.sites.items())
            },
            "polyvalues": self.total_polyvalues(),
            "pending": [handle.txn for handle in self.pending_handles()],
            "transport": self.runtime.stats.as_dict(),
        }

    def describe_item(self, item: ItemId) -> Dict[str, Any]:
        """One item's value, JSON-encoded (polyvalues in wire form)."""
        value = self.read_item(item)
        return {
            "item": item,
            "site": self.catalog.site_of(item),
            "value": encode_value(value),
            "polyvalue": is_polyvalue(value),
        }

    def describe_txn(self, txn: TxnId) -> Optional[Dict[str, Any]]:
        """One transaction's client-visible outcome (None if unknown)."""
        handle = self._by_txn.get(txn)
        if handle is None:
            return None
        return {
            "txn": handle.txn,
            "status": handle.status.value,
            "label": handle.transaction.label,
            "reason": handle.abort_reason,
            "submitted_at": handle.submitted_at,
            "decided_at": handle.decided_at,
        }


class ClusterThread:
    """A LiveCluster (plus optional HTTP API) on a background thread.

    For synchronous callers — tests and the differential harness — that
    want a live cluster without owning an event loop::

        with ClusterThread(sites=3) as ct:
            handle = ct.call(ct.cluster.submit_script, script)
            ct.run(ct.cluster.wait_decided(handle))

    ``call`` runs a plain function on the loop thread; ``run`` awaits a
    coroutine there.  Everything that touches the cluster must go
    through one of the two — the cluster is not thread-safe.
    """

    def __init__(
        self,
        *,
        http: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        **cluster_kwargs: Any,
    ) -> None:
        self._http = http
        self._host = host
        self._port_request = port
        self._cluster_kwargs = cluster_kwargs
        self.cluster: Optional[LiveCluster] = None
        self.port: Optional[int] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._thread_main, daemon=True)

    def start(self) -> "ClusterThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise LiveClusterError("cluster thread failed to start in time")
        if self._error is not None:
            raise LiveClusterError(f"cluster thread died: {self._error!r}")
        return self

    def stop(self) -> None:
        if self.loop is not None and self._stop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def call(self, fn, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` on the loop thread, return result."""

        async def _invoke() -> Any:
            return fn(*args, **kwargs)

        return self.run(_invoke())

    def run(self, coro) -> Any:
        """Await *coro* on the loop thread, return its result."""
        if self.loop is None:
            raise LiveClusterError("cluster thread is not running")
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout=60.0
        )

    def __enter__(self) -> "ClusterThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        self.cluster = LiveCluster(**self._cluster_kwargs)
        await self.cluster.start()
        api = None
        if self._http:
            from repro.live.httpapi import HttpApi

            api = HttpApi(self.cluster, host=self._host, port=self._port_request)
            self.port = await api.start()
        self._ready.set()
        await self._stop.wait()
        if api is not None:
            await api.close()
        await self.cluster.stop()
