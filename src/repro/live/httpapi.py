"""A stdlib HTTP/JSON control surface for :class:`LiveCluster`.

``python -m repro serve`` stands up a cluster and binds this API; any
HTTP client (curl, the bundled ``python -m repro client``) can then
submit transactions, read items, query outcomes, and crash/restart
sites.  The server is a hand-rolled asyncio HTTP/1.1 responder — no
``http.server`` thread pool, so every request runs on the same event
loop as the cluster itself and observes/mutates it without locks.

Routes (all responses are JSON)::

    GET  /health            liveness probe: {"ok": true, ...}
    GET  /state             full cluster summary (sites, ports, pending)
    GET  /item/<id>         one item's value (polyvalues in wire form)
    GET  /txn/<id>          one transaction's outcome
    POST /txn               submit a transaction script
                            body: {"script": {...}, "at"?: site,
                                   "wait"?: bool, "timeout"?: seconds}
    POST /crash             {"site": "site-0"} — fail-stop a site
    POST /restart           {"site": "site-0"} — restart from checkpoint

Malformed input is 400, unknown items/transactions/routes are 404;
error bodies are ``{"error": "..."}``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import ReproError, UnknownItemError
from repro.live.txnscript import TransactionScriptError

_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpFail(Exception):
    """Internal: abort request handling with a status + message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class HttpApi:
    """Serve the cluster control API on *host*:*port* (0 = ephemeral)."""

    def __init__(self, cluster: Any, *, host: str = "127.0.0.1", port: int = 0):
        self.cluster = cluster
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind and listen; returns the actual port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload = await self._route(method, path, body)
            except _HttpFail as fail:
                status, payload = fail.status, {"error": fail.message}
            except ReproError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(blob)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + blob)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[Dict[str, Any]]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpFail(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _HttpFail(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpFail(400, "bad Content-Length") from None
        if content_length > _MAX_BODY_BYTES:
            raise _HttpFail(413, "body too large")
        body: Optional[Dict[str, Any]] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpFail(400, f"body is not JSON: {exc}") from None
            if not isinstance(body, dict):
                raise _HttpFail(400, "body must be a JSON object")
        return method, path, body

    # ------------------------------------------------------------------
    # Routes

    async def _route(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if path == "/health":
                return 200, {
                    "ok": True,
                    "protocol": self.cluster.protocol,
                    "sites": len(self.cluster.sites),
                    "down": self.cluster.down_sites(),
                }
            if path == "/state":
                return 200, self.cluster.describe()
            if path.startswith("/item/"):
                item = path[len("/item/") :]
                try:
                    return 200, self.cluster.describe_item(item)
                except UnknownItemError as exc:
                    raise _HttpFail(404, str(exc)) from None
            if path.startswith("/txn/"):
                txn = path[len("/txn/") :]
                described = self.cluster.describe_txn(txn)
                if described is None:
                    raise _HttpFail(404, f"unknown transaction {txn!r}")
                return 200, described
            raise _HttpFail(404, f"no such resource {path!r}")
        if method == "POST":
            if path == "/txn":
                return await self._post_txn(body or {})
            if path == "/crash":
                site = self._required_site(body)
                self.cluster.crash(site)
                return 200, {"site": site, "up": False}
            if path == "/restart":
                site = self._required_site(body)
                self.cluster.restart(site)
                return 200, {"site": site, "up": True}
            raise _HttpFail(404, f"no such resource {path!r}")
        raise _HttpFail(405, f"unsupported method {method}")

    async def _post_txn(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        script = body.get("script")
        if script is None:
            raise _HttpFail(400, 'POST /txn needs a "script" object')
        at = body.get("at")
        if at is not None and not isinstance(at, str):
            raise _HttpFail(400, '"at" must be a site id string')
        try:
            handle = self.cluster.submit_script(script, at=at)
        except (TransactionScriptError, UnknownItemError) as exc:
            raise _HttpFail(400, str(exc)) from None
        decided = True
        if body.get("wait", False):
            timeout = float(body.get("timeout", 10.0))
            decided = await self.cluster.wait_decided(handle, timeout=timeout)
        described = self.cluster.describe_txn(handle.txn) or {
            "txn": handle.txn,
            "status": handle.status.value,
        }
        described["decided"] = decided and handle.decided_at is not None
        return 200, described

    def _required_site(self, body: Optional[Dict[str, Any]]) -> str:
        site = (body or {}).get("site")
        if not isinstance(site, str):
            raise _HttpFail(400, 'request needs a "site" string')
        if site not in self.cluster.sites:
            raise _HttpFail(404, f"unknown site {site!r}")
        return site


def run_serve(
    *,
    sites: int = 3,
    protocol: str = "polyvalue",
    seed: int = 0,
    host: str = "127.0.0.1",
    port: int = 8790,
    data_dir: Optional[str] = None,
    announce: bool = True,
) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    from repro.live.cluster import LiveCluster

    async def _main() -> None:
        cluster = LiveCluster(
            sites=sites,
            protocol=protocol,
            seed=seed,
            host=host,
            data_dir=data_dir,
        )
        await cluster.start()
        api = HttpApi(cluster, host=host, port=port)
        bound = await api.start()
        if announce:
            print(f"repro live cluster: protocol={protocol} sites={sites}")
            for site_id in sorted(cluster.sites):
                print(f"  {site_id}: 127.0.0.1:{cluster.runtime.port_of(site_id)}")
            print(f"  http api: http://{host}:{bound}", flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await api.close()
            await cluster.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
