"""A declarative JSON transaction language for live clients.

Simulated workloads submit :class:`~repro.txn.transaction.Transaction`
objects whose bodies are Python callables — which cannot cross an HTTP
boundary.  Live clients instead POST a *transaction script*: a small
JSON document that :func:`compile_script` turns into a real
``Transaction`` whose body interprets the script against the
polytransaction context, so scripted transactions get the full
polyvalue treatment (a read that returns a polyvalue forks the
evaluation per alternative exactly as a Python body would).

Script shape::

    {
      "label": "transfer",               # optional
      "items": ["a", "b"],               # every item read or written
      "ops": [
        {"write": "a", "expr": ["-", ["read", "a"], 4]},
        {"write": "b", "expr": ["+", ["read", "b"], 4]}
      ]
    }

Expressions are s-expressions as JSON arrays; anything that is not an
array is a literal::

    ["read", "a"]            the current value of item "a"
    ["const", [1, 2]]        a literal that happens to be an array
    ["+", e1, e2, ...]       also -, *, "min", "max"

Reads observe the transaction's snapshot, exactly like the Python
bodies the simulator submits: a write does not feed back into later
reads of the same item (the last write to an item wins), matching the
polytransaction context's semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

from repro.core.errors import ReproError
from repro.txn.transaction import Transaction


class TransactionScriptError(ReproError):
    """A transaction script is malformed."""


def _fold(op: Callable[[Any, Any], Any], args: List[Any]) -> Any:
    result = args[0]
    for value in args[1:]:
        result = op(result, value)
    return result


_OPERATORS: Dict[str, Callable[[List[Any]], Any]] = {
    "+": lambda args: _fold(lambda a, b: a + b, args),
    "-": lambda args: _fold(lambda a, b: a - b, args),
    "*": lambda args: _fold(lambda a, b: a * b, args),
    "min": lambda args: min(args),
    "max": lambda args: max(args),
}


def _eval(expr: Any, ctx: Any) -> Any:
    if not isinstance(expr, list):
        return expr  # literal scalar
    if not expr:
        raise TransactionScriptError("empty expression")
    head = expr[0]
    if head == "read":
        if len(expr) != 2 or not isinstance(expr[1], str):
            raise TransactionScriptError(f"bad read expression: {expr!r}")
        return ctx.read(expr[1])
    if head == "const":
        if len(expr) != 2:
            raise TransactionScriptError(f"bad const expression: {expr!r}")
        return expr[1]
    op = _OPERATORS.get(head)
    if op is None:
        raise TransactionScriptError(
            f"unknown operator {head!r}; expected read/const/"
            f"{sorted(_OPERATORS)}"
        )
    if len(expr) < 2:
        raise TransactionScriptError(f"operator {head!r} needs arguments")
    return op([_eval(arg, ctx) for arg in expr[1:]])


def validate_script(script: Mapping[str, Any]) -> None:
    """Raise :class:`TransactionScriptError` unless *script* is well-formed.

    Structural checks only — expressions are validated as they are
    evaluated, because a read of a polyvalued item legitimately forks.
    """
    if not isinstance(script, Mapping):
        raise TransactionScriptError("script must be a JSON object")
    items = script.get("items")
    if not isinstance(items, list) or not items:
        raise TransactionScriptError('script needs a non-empty "items" list')
    if not all(isinstance(item, str) for item in items):
        raise TransactionScriptError("item names must be strings")
    ops = script.get("ops")
    if not isinstance(ops, list):
        raise TransactionScriptError('script needs an "ops" list')
    known = set(items)
    for op in ops:
        if not isinstance(op, Mapping) or "write" not in op or "expr" not in op:
            raise TransactionScriptError(
                f'each op needs "write" and "expr": {op!r}'
            )
        if op["write"] not in known:
            raise TransactionScriptError(
                f'op writes {op["write"]!r}, which is not in "items"'
            )
    label = script.get("label", "")
    if not isinstance(label, str):
        raise TransactionScriptError('"label" must be a string')


def compile_script(script: Mapping[str, Any]) -> Transaction:
    """A :class:`Transaction` that executes *script* when coordinated."""
    validate_script(script)
    ops = [(op["write"], op["expr"]) for op in script["ops"]]

    def body(ctx: Any) -> None:
        for item, expr in ops:
            ctx.write(item, _eval(expr, ctx))

    return Transaction(
        body=body,
        items=tuple(script["items"]),
        label=str(script.get("label", "")),
    )
