"""Wire codec: protocol messages <-> JSON frames for the live transport.

Every commit-protocol message (two-phase, Paxos Commit, path-sensitive)
is a frozen dataclass of JSON-friendly scalars plus three structured
shapes the codec must preserve through JSON's type flattening:

* tuples (``ReadRequest.items``, Paxos participant/acceptor lists, the
  ``(ballot, vote)`` pairs inside ``Phase1b.accepted``) — JSON arrays
  come back as lists, so tuples are tagged ``{"__tuple__": [...]}``;
* mappings (``ReadReply.values``, ``StageRequest.writes``, …) — tagged
  ``{"__map__": {...}}`` so a mapping is never confused with a tagged
  value;
* polyvalues — delegated to :mod:`repro.core.serialize`, the same
  ``{"__polyvalue__": 1, ...}`` encoding the snapshot layer uses.

The message registry is explicit: an unknown type name on decode is a
:class:`WireError`, not an import-by-name gadget.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import Any, Dict, Mapping, Type

from repro.core.errors import ReproError
from repro.core.polyvalue import is_polyvalue
from repro.core.serialize import decode_value, encode_value
from repro.net.message import Envelope
from repro.txn import protocol
from repro.txn.paxos import (
    PaxosDecision,
    PaxosStage,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
)
from repro.txn.pathsensitive import LocalApply, LocalApplyAck


class WireError(ReproError):
    """A frame could not be encoded or decoded."""


#: Every message type that may cross the live wire, by class name.
#: Order is presentation-only; lookups are exact-name.
MESSAGE_TYPES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        protocol.ReadRequest,
        protocol.ReadReply,
        protocol.StageRequest,
        protocol.Ready,
        protocol.Refuse,
        protocol.Complete,
        protocol.Abort,
        protocol.OutcomeQuery,
        protocol.OutcomeNotify,
        protocol.OutcomeAck,
        PaxosStage,
        Phase1a,
        Phase1b,
        Phase2a,
        Phase2b,
        PaxosDecision,
        LocalApply,
        LocalApplyAck,
    )
}

_TUPLE_TAG = "__tuple__"
_MAP_TAG = "__map__"


def _encode_field(value: Any) -> Any:
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_field(item) for item in value]}
    if isinstance(value, Mapping):
        return {
            _MAP_TAG: {
                str(key): _encode_field(item) for key, item in value.items()
            }
        }
    if is_polyvalue(value):
        return encode_value(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise WireError(f"cannot encode field value of type {type(value).__name__}")


def _decode_field(value: Any) -> Any:
    if isinstance(value, dict):
        if _TUPLE_TAG in value:
            return tuple(_decode_field(item) for item in value[_TUPLE_TAG])
        if _MAP_TAG in value:
            return {
                key: _decode_field(item)
                for key, item in value[_MAP_TAG].items()
            }
        return decode_value(value)  # polyvalue (or rejects unknown shapes)
    return value


def encode_message(message: Any) -> Dict[str, Any]:
    """One protocol message as a JSON-safe ``{"type", "fields"}`` dict."""
    name = type(message).__name__
    if name not in MESSAGE_TYPES:
        raise WireError(f"unregistered message type {name!r}")
    return {
        "type": name,
        "fields": {
            spec.name: _encode_field(getattr(message, spec.name))
            for spec in fields(message)
        },
    }


def decode_message(data: Mapping[str, Any]) -> Any:
    """The inverse of :func:`encode_message`."""
    try:
        cls = MESSAGE_TYPES[data["type"]]
    except KeyError:
        raise WireError(f"unknown message type {data.get('type')!r}") from None
    raw = data.get("fields", {})
    try:
        return cls(**{name: _decode_field(value) for name, value in raw.items()})
    except (TypeError, ReproError) as exc:
        raise WireError(f"bad {data['type']} frame: {exc}") from None


def encode_envelope(envelope: Envelope) -> bytes:
    """One in-flight message as UTF-8 JSON bytes (no length prefix)."""
    return json.dumps(
        {
            "sender": envelope.sender,
            "recipient": envelope.recipient,
            "sent_at": envelope.sent_at,
            "payload": encode_message(envelope.payload),
        },
        separators=(",", ":"),
    ).encode("utf-8")


def decode_envelope(data: bytes) -> Envelope:
    """The inverse of :func:`encode_envelope` (uid is re-minted locally)."""
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict):
        raise WireError(f"frame is not an object: {type(frame).__name__}")
    try:
        return Envelope(
            sender=str(frame["sender"]),
            recipient=str(frame["recipient"]),
            payload=decode_message(frame["payload"]),
            sent_at=float(frame["sent_at"]),
        )
    except KeyError as exc:
        raise WireError(f"frame missing field {exc}") from None


def roundtrip(message: Any) -> Any:
    """Encode then decode *message* (test helper; must be identity)."""
    return decode_message(json.loads(json.dumps(encode_message(message))))
