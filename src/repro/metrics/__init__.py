"""Metrics: counters, time-series and summary statistics for experiments."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.series import TimeSeries, mean, percentile, stddev

__all__ = ["MetricsCollector", "TimeSeries", "mean", "percentile", "stddev"]
