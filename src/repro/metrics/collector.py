"""Metrics collection for the full-system simulator.

One :class:`MetricsCollector` is shared by every site of a simulated
system.  It accumulates the quantities the paper's evaluation (and our
ablations) report:

* transaction counts by outcome, and commit latencies;
* polyvalue lifecycle events (installed / propagated / resolved), which
  give the instantaneous ``P(t)`` the analysis of section 4 predicts;
* lock conflicts and item-blocked time (the availability cost that the
  blocking-2PC baseline pays and polyvalues avoid);
* uncertain-vs-certain external outputs (section 3.4).

The collector is implemented on the labeled
:class:`~repro.obs.registry.MetricsRegistry`: every headline counter is
backed by a registry instrument (with ``site``/``outcome``/… labels
where the caller provides them), and three fixed-bucket histograms —
commit latency, in-doubt window duration, and polyvalue lifetime — are
populated by the same hooks.  The long-standing attribute API
(``metrics.committed``, ``metrics.lock_conflict_aborts += 1``, …) is
preserved as properties over the registry, so the benchmarks, tests
and examples that predate the registry keep working unchanged while
``python -m repro report --format prometheus`` exports the full
labeled picture.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.series import TimeSeries
from repro.obs.registry import MetricsRegistry

#: Commit latencies: a LAN-ish protocol decides in tens of ms; the tail
#: extends through retry/timeout territory.
LATENCY_BUCKETS = (
    0.005, 0.01, 0.02, 0.035, 0.05, 0.075, 0.1, 0.25, 0.5, 1.0, 2.5,
)
#: Failure windows: in-doubt durations and polyvalue lifetimes are set
#: by timeouts and repair times — sub-second through minutes.
WINDOW_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)


class MetricsCollector:
    """Shared counters, histograms and time-series for one system.

    All event hooks accept an optional ``site`` label (the instrumented
    transaction layer passes it; standalone use may omit it, which
    files the sample under the empty-string site).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._submitted = r.counter(
            "repro_transactions_submitted_total",
            "Transactions submitted, by coordinator site",
            ("site",),
        )
        self._decided = r.counter(
            "repro_transactions_total",
            "Decided transactions, by coordinator site and outcome",
            ("site", "outcome"),
        )
        self._polytxns = r.counter(
            "repro_polytransactions_total",
            "Transactions that executed as polytransactions",
            ("site",),
        )
        self._poly_events = r.counter(
            "repro_polyvalues_total",
            "Polyvalue lifecycle events, by site",
            ("site", "event"),
        )
        self._poly_current = r.gauge(
            "repro_polyvalues_current",
            "Items currently holding polyvalues (the paper's P(t))",
        )
        self._in_doubt = r.counter(
            "repro_in_doubt_windows_total",
            "Wait-phase timeouts that installed polyvalues (measured F)",
            ("site",),
        )
        self._lock_conflicts = r.counter(
            "repro_lock_conflict_aborts_total",
            "Transactions aborted by a lock conflict",
            ("site",),
        )
        self._retransmits = r.counter(
            "repro_notify_retransmissions_total",
            "Outcome notifications resent by the maintenance backoff loop",
            ("site",),
        )
        self._overflows = r.counter(
            "repro_fanout_overflow_aborts_total",
            "Transactions aborted for exceeding max_alternatives",
            ("site",),
        )
        self._overload_blocks = r.counter(
            "repro_overload_blocked_total",
            "Wait-timeouts switched to blocking by the polyvalue budget",
            ("site",),
        )
        self._outputs = r.counter(
            "repro_outputs_total",
            "External outputs, by certainty (section 3.4)",
            ("certainty",),
        )
        self._unilateral = r.counter(
            "repro_unilateral_decisions_total",
            "RELAXED-policy unilateral decisions",
        )
        self._inconsistent = r.counter(
            "repro_inconsistent_decisions_total",
            "Unilateral decisions that disagreed with the coordinator",
        )
        self._blocked_seconds = r.gauge(
            "repro_blocked_item_seconds",
            "Item-seconds spent lock-blocked (BLOCKING baseline cost)",
        )
        self._commit_latency = r.histogram(
            "repro_commit_latency_seconds",
            "Submission-to-commit latency",
            ("site",),
            buckets=LATENCY_BUCKETS,
        )
        self._in_doubt_duration = r.histogram(
            "repro_in_doubt_window_seconds",
            "Polyvalue install to outcome learned, per direct participant",
            ("site",),
            buckets=WINDOW_BUCKETS,
        )
        self._poly_lifetime = r.histogram(
            "repro_polyvalue_lifetime_seconds",
            "Item polyvalued until resolved back to a simple value",
            ("site",),
            buckets=WINDOW_BUCKETS,
        )

        #: Raw commit latencies (seconds), for exact percentiles.
        self.commit_latencies: List[float] = []
        #: One entry per polytransaction: how many alternative
        #: transactions it fanned out to (the §3.2 processing cost).
        self.polytransaction_fanouts: List[int] = []
        #: Sampled trajectory of the polyvalue count.
        self.polyvalue_count: TimeSeries = TimeSeries()
        #: (site, item) -> install time, for lifetime histograms.
        self._poly_installed_at: Dict[Tuple[str, str], float] = {}
        #: (site, txn) -> open time, for in-doubt window histograms.
        self._in_doubt_open: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Event hooks (called by the txn layer)
    # ------------------------------------------------------------------

    def txn_submitted(self, site: str = "") -> None:
        self._submitted.inc(site=site)

    def txn_committed(self, latency: float, site: str = "") -> None:
        self._decided.inc(site=site, outcome="committed")
        self.commit_latencies.append(latency)
        self._commit_latency.observe(latency, site=site)

    def txn_aborted(self, site: str = "") -> None:
        self._decided.inc(site=site, outcome="aborted")

    def txn_was_poly(self, fanout: int = 0, site: str = "") -> None:
        self._polytxns.inc(site=site)
        if fanout:
            self.polytransaction_fanouts.append(fanout)

    def polyvalue_installed(
        self, time: float, site: str = "", item: Optional[str] = None
    ) -> None:
        self._poly_events.inc(site=site, event="installed")
        self._poly_current.inc()
        if item is not None:
            self._poly_installed_at.setdefault((site, item), time)
        self.polyvalue_count.record(time, self.current_polyvalues)

    def polyvalue_resolved(
        self, time: float, site: str = "", item: Optional[str] = None
    ) -> None:
        self._poly_events.inc(site=site, event="resolved")
        self._poly_current.dec()
        if item is not None:
            installed_at = self._poly_installed_at.pop((site, item), None)
            if installed_at is not None:
                self._poly_lifetime.observe(time - installed_at, site=site)
        self.polyvalue_count.record(time, self.current_polyvalues)

    def in_doubt_opened(self, time: float, site: str = "", txn: str = "") -> None:
        """A wait-phase timeout installed polyvalues at *site*."""
        self._in_doubt.inc(site=site)
        self._in_doubt_open.setdefault((site, txn), time)

    def in_doubt_closed(self, time: float, site: str = "", txn: str = "") -> None:
        """A direct participant finally learned *txn*'s outcome."""
        opened_at = self._in_doubt_open.pop((site, txn), None)
        if opened_at is not None:
            self._in_doubt_duration.observe(time - opened_at, site=site)

    def lock_conflict(self, site: str = "") -> None:
        self._lock_conflicts.inc(site=site)

    def notify_retransmitted(self, site: str = "") -> None:
        """The maintenance loop resent an owed outcome notification."""
        self._retransmits.inc(site=site)

    def fanout_overflow(self, site: str = "") -> None:
        """A polytransaction exceeded max_alternatives and was aborted."""
        self._overflows.inc(site=site)

    def overload_blocked(self, site: str = "") -> None:
        """A wait-timeout fell back to blocking under the polyvalue budget."""
        self._overload_blocks.inc(site=site)

    def unilateral_decision(self) -> None:
        self._unilateral.inc()

    def inconsistent_decision(self) -> None:
        self._inconsistent.inc()

    def add_blocked_item_seconds(self, seconds: float) -> None:
        self._blocked_seconds.inc(seconds)

    def output_produced(self, certain: bool) -> None:
        self._outputs.inc(certainty="certain" if certain else "uncertain")

    # ------------------------------------------------------------------
    # Attribute API (properties over the registry)
    # ------------------------------------------------------------------

    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def committed(self) -> int:
        return int(self._decided.total(outcome="committed"))

    @property
    def aborted(self) -> int:
        return int(self._decided.total(outcome="aborted"))

    @property
    def polytransactions(self) -> int:
        return int(self._polytxns.value)

    @property
    def polyvalues_installed(self) -> int:
        return int(self._poly_events.total(event="installed"))

    @property
    def polyvalues_resolved(self) -> int:
        return int(self._poly_events.total(event="resolved"))

    @property
    def current_polyvalues(self) -> int:
        return int(self._poly_current.value)

    @property
    def in_doubt_windows(self) -> int:
        return int(self._in_doubt.value)

    @in_doubt_windows.setter
    def in_doubt_windows(self, value: int) -> None:
        self._in_doubt.inc(value - self.in_doubt_windows, site="")

    @property
    def notify_retransmissions(self) -> int:
        return int(self._retransmits.value)

    @property
    def fanout_overflows(self) -> int:
        return int(self._overflows.value)

    @property
    def overload_blocks(self) -> int:
        return int(self._overload_blocks.value)

    @property
    def lock_conflict_aborts(self) -> int:
        return int(self._lock_conflicts.value)

    @lock_conflict_aborts.setter
    def lock_conflict_aborts(self, value: int) -> None:
        self._lock_conflicts.inc(value - self.lock_conflict_aborts, site="")

    @property
    def blocked_item_seconds(self) -> float:
        return self._blocked_seconds.value

    @blocked_item_seconds.setter
    def blocked_item_seconds(self, value: float) -> None:
        self._blocked_seconds.set(value)

    @property
    def certain_outputs(self) -> int:
        return int(self._outputs.total(certainty="certain"))

    @property
    def uncertain_outputs(self) -> int:
        return int(self._outputs.total(certainty="uncertain"))

    @property
    def unilateral_decisions(self) -> int:
        return int(self._unilateral.value)

    @unilateral_decisions.setter
    def unilateral_decisions(self, value: int) -> None:
        self._unilateral.inc(value - self.unilateral_decisions)

    @property
    def inconsistent_decisions(self) -> int:
        return int(self._inconsistent.value)

    @inconsistent_decisions.setter
    def inconsistent_decisions(self, value: int) -> None:
        self._inconsistent.inc(value - self.inconsistent_decisions)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def commit_rate(self) -> float:
        """Fraction of decided transactions that committed."""
        decided = self.committed + self.aborted
        return self.committed / decided if decided else 0.0

    @property
    def mean_commit_latency(self) -> Optional[float]:
        """Mean submission-to-commit time, or None with no commits."""
        if not self.commit_latencies:
            return None
        return sum(self.commit_latencies) / len(self.commit_latencies)

    @property
    def certain_output_fraction(self) -> float:
        """Fraction of external outputs that were simple (certain) values."""
        total = self.certain_outputs + self.uncertain_outputs
        return self.certain_outputs / total if total else 1.0

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for bench tables)."""
        return {
            "submitted": self.submitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "commit_rate": self.commit_rate,
            "polytransactions": self.polytransactions,
            "polyvalues_installed": self.polyvalues_installed,
            "polyvalues_resolved": self.polyvalues_resolved,
            "lock_conflict_aborts": self.lock_conflict_aborts,
            "notify_retransmissions": self.notify_retransmissions,
            "fanout_overflows": self.fanout_overflows,
            "overload_blocks": self.overload_blocks,
            "certain_output_fraction": self.certain_output_fraction,
            "unilateral_decisions": self.unilateral_decisions,
            "inconsistent_decisions": self.inconsistent_decisions,
        }
