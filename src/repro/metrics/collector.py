"""Metrics collection for the full-system simulator.

One :class:`MetricsCollector` is shared by every site of a simulated
system.  It accumulates the quantities the paper's evaluation (and our
ablations) report:

* transaction counts by outcome, and commit latencies;
* polyvalue lifecycle events (installed / propagated / resolved), which
  give the instantaneous ``P(t)`` the analysis of section 4 predicts;
* lock conflicts and item-blocked time (the availability cost that the
  blocking-2PC baseline pays and polyvalues avoid);
* uncertain-vs-certain external outputs (section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.series import TimeSeries


@dataclass
class MetricsCollector:
    """Shared counters and time-series for one simulated system."""

    # Transactions
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    polytransactions: int = 0
    #: One entry per polytransaction: how many alternative transactions
    #: it fanned out to (the §3.2 processing cost).
    polytransaction_fanouts: List[int] = field(default_factory=list)
    commit_latencies: List[float] = field(default_factory=list)

    # Polyvalues
    polyvalues_installed: int = 0
    polyvalues_resolved: int = 0
    current_polyvalues: int = 0
    #: Wait-timeout (or crash-recovery) polyvalue installations — one
    #: per (transaction, site) whose in-doubt window actually expired.
    #: Dividing by submissions gives the *emergent* failure probability
    #: F of the §4 model, measured rather than assumed.
    in_doubt_windows: int = 0
    polyvalue_count: TimeSeries = field(default_factory=TimeSeries)

    # Locking / availability
    lock_conflict_aborts: int = 0
    blocked_item_seconds: float = 0.0

    # Outputs (section 3.4)
    certain_outputs: int = 0
    uncertain_outputs: int = 0

    # Baseline bookkeeping
    unilateral_decisions: int = 0
    inconsistent_decisions: int = 0

    # ------------------------------------------------------------------
    # Event hooks (called by the txn layer)
    # ------------------------------------------------------------------

    def txn_submitted(self) -> None:
        self.submitted += 1

    def txn_committed(self, latency: float) -> None:
        self.committed += 1
        self.commit_latencies.append(latency)

    def txn_aborted(self) -> None:
        self.aborted += 1

    def txn_was_poly(self, fanout: int = 0) -> None:
        self.polytransactions += 1
        if fanout:
            self.polytransaction_fanouts.append(fanout)

    def polyvalue_installed(self, time: float) -> None:
        self.polyvalues_installed += 1
        self.current_polyvalues += 1
        self.polyvalue_count.record(time, self.current_polyvalues)

    def polyvalue_resolved(self, time: float) -> None:
        self.polyvalues_resolved += 1
        self.current_polyvalues -= 1
        self.polyvalue_count.record(time, self.current_polyvalues)

    def output_produced(self, certain: bool) -> None:
        if certain:
            self.certain_outputs += 1
        else:
            self.uncertain_outputs += 1

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def commit_rate(self) -> float:
        """Fraction of decided transactions that committed."""
        decided = self.committed + self.aborted
        return self.committed / decided if decided else 0.0

    @property
    def mean_commit_latency(self) -> Optional[float]:
        """Mean submission-to-commit time, or None with no commits."""
        if not self.commit_latencies:
            return None
        return sum(self.commit_latencies) / len(self.commit_latencies)

    @property
    def certain_output_fraction(self) -> float:
        """Fraction of external outputs that were simple (certain) values."""
        total = self.certain_outputs + self.uncertain_outputs
        return self.certain_outputs / total if total else 1.0

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for bench tables)."""
        return {
            "submitted": self.submitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "commit_rate": self.commit_rate,
            "polytransactions": self.polytransactions,
            "polyvalues_installed": self.polyvalues_installed,
            "polyvalues_resolved": self.polyvalues_resolved,
            "lock_conflict_aborts": self.lock_conflict_aborts,
            "certain_output_fraction": self.certain_output_fraction,
            "unilateral_decisions": self.unilateral_decisions,
            "inconsistent_decisions": self.inconsistent_decisions,
        }
