"""Time-series and summary statistics used by the benchmarks.

:class:`TimeSeries` records ``(time, value)`` observations of a
step-function quantity (e.g. the number of polyvalued items) and can
compute its time-weighted average over a window — the statistic the
paper's section 4.2 reports: "taking the average number of polyvalues in
the database during such a stable period".
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """Observations of a right-continuous step function of time."""

    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append an observation; times must be non-decreasing."""
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"observation at t={time} precedes last at t={self.points[-1][0]}"
            )
        self.points.append((time, value))

    def last_value(self) -> Optional[float]:
        """The most recent observed value (None when empty)."""
        return self.points[-1][1] if self.points else None

    def value_at(self, time: float) -> Optional[float]:
        """The step-function value at *time* (None before first point).

        The value *at* a recorded time is the newly recorded one (the
        function is right-continuous); with several observations at the
        same instant the last recorded wins.  Points are kept in
        non-decreasing time order, so this is a binary search, not a
        scan — ``value_at`` sits on the sampling path of long
        Monte-Carlo runs.
        """
        index = bisect_right(self.points, (time, math.inf))
        if index == 0:
            return None
        return self.points[index - 1][1]

    def time_weighted_mean(self, start: float, end: float) -> float:
        """The time-weighted average of the step function over [start, end].

        Requires at least one observation at or before *start* — i.e.
        the value must be defined throughout the window.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end}]")
        first_inside = bisect_right(self.points, (start, math.inf))
        if first_inside == 0:
            raise ValueError(f"no observation at or before t={start}")
        current = self.points[first_inside - 1][1]
        area = 0.0
        last_time = start
        for index in range(first_inside, len(self.points)):
            point_time, point_value = self.points[index]
            if point_time >= end:
                break
            area += current * (point_time - last_time)
            current = point_value
            last_time = point_time
        area += current * (end - last_time)
        return area / (end - start)

    def __len__(self) -> int:
        return len(self.points)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], fraction: float) -> float:
    """The *fraction*-th percentile by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight
