"""Simulated message-passing network with crash, partition and loss faults."""

from repro.net.failures import (
    Crashable,
    CrashPlan,
    RandomFailures,
    ScriptedFailures,
)
from repro.net.message import Envelope, SiteId
from repro.net.network import Network, NetworkStats

__all__ = [
    "CrashPlan",
    "Crashable",
    "Envelope",
    "Network",
    "NetworkStats",
    "RandomFailures",
    "ScriptedFailures",
    "SiteId",
]
