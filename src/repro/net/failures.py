"""Failure injection: crash/recovery schedules for the full-system simulator.

The paper's analysis is parameterised by a per-update failure
probability ``F`` and a recovery rate ``R`` (mean repair time ``1/R``,
exponentially distributed in the section 4.2 simulation).  This module
provides both:

* :class:`ScriptedFailures` — an exact list of (site, crash time,
  duration) triples, for tests and for driving the protocol through
  specific Figure-1 transitions; and
* :class:`RandomFailures` — Poisson crash arrivals per site with
  exponential repair times, for statistical experiments.

Both drive any object implementing the :class:`Crashable` duck type
(the :class:`~repro.txn.system.DistributedSystem` facade does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.net.message import SiteId
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


class Crashable(Protocol):
    """Anything the injectors can crash and recover."""

    def crash_site(self, site: SiteId) -> None:
        """Take *site* down (it stops processing and its traffic drops)."""

    def recover_site(self, site: SiteId) -> None:
        """Bring *site* back up (it runs its recovery procedure)."""


@dataclass(frozen=True)
class CrashPlan:
    """One scheduled outage: *site* goes down at *at* for *duration* seconds."""

    site: SiteId
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise SimulationError(
                f"invalid crash plan for {self.site}: at={self.at}, "
                f"duration={self.duration}"
            )


class ScriptedFailures:
    """Replay an exact outage schedule.

    Deterministic failure injection is what lets the Figure-1 bench and
    the protocol tests force a failure into precisely the wait phase of
    a chosen transaction.
    """

    def __init__(
        self, sim: Simulator, target: Crashable, plans: Iterable[CrashPlan]
    ) -> None:
        self._sim = sim
        self._target = target
        self.plans: List[CrashPlan] = sorted(plans, key=lambda p: p.at)
        for plan in self.plans:
            sim.schedule_at(
                plan.at,
                lambda p=plan: self._crash(p),
                label=f"crash:{plan.site}",
            )

    def _crash(self, plan: CrashPlan) -> None:
        self._target.crash_site(plan.site)
        self._sim.schedule(
            plan.duration,
            lambda: self._target.recover_site(plan.site),
            label=f"recover:{plan.site}",
        )


@dataclass(frozen=True)
class FailureAction:
    """One scheduled failure-injection action, at absolute time *at*.

    ``kind`` is one of the fail-stop kinds — ``"crash"``, ``"recover"``,
    ``"partition"``, ``"heal"``, ``"heal-all"`` — or the gray-failure
    kinds — ``"degrade"``/``"restore"`` (site latency multiplier),
    ``"link-spike"``/``"link-clear"`` (directed link multiplier) and
    ``"partition-oneway"``/``"heal-oneway"`` (asymmetric reachability).
    ``targets`` names the affected site(s); for the directed kinds the
    order is ``(sender, recipient)``.  ``value`` carries the multiplier
    for ``degrade``/``link-spike`` and is ignored elsewhere.  This is
    the on-disk vocabulary of the schedule explorer's
    ``(seed, schedule)`` artifacts (:mod:`repro.check.explorer`), so a
    violating interleaving replays exactly.
    """

    at: float
    kind: str
    targets: Tuple[SiteId, ...] = ()
    value: float = 0.0

    KINDS = (
        "crash",
        "recover",
        "partition",
        "heal",
        "heal-all",
        "degrade",
        "restore",
        "link-spike",
        "link-clear",
        "partition-oneway",
        "heal-oneway",
    )

    #: Kinds whose ``value`` is a latency multiplier (must be >= 1).
    VALUED_KINDS = ("degrade", "link-spike")

    _TARGET_COUNTS = {
        "crash": 1,
        "recover": 1,
        "partition": 2,
        "heal": 2,
        "heal-all": 0,
        "degrade": 1,
        "restore": 1,
        "link-spike": 2,
        "link-clear": 2,
        "partition-oneway": 2,
        "heal-oneway": 2,
    }

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"action time must be >= 0, got {self.at}")
        if self.kind not in self.KINDS:
            raise SimulationError(f"unknown failure action kind {self.kind!r}")
        expected = self._TARGET_COUNTS[self.kind]
        if len(self.targets) != expected:
            raise SimulationError(
                f"{self.kind} takes {expected} target(s), got {self.targets}"
            )
        if self.kind in self.VALUED_KINDS and self.value < 1.0:
            raise SimulationError(
                f"{self.kind} needs a multiplier value >= 1, got {self.value}"
            )


class PartitionableNetwork(Protocol):
    """The network surface :class:`ScheduleScript` drives."""

    def partition(self, a: SiteId, b: SiteId) -> None: ...

    def heal(self, a: SiteId, b: SiteId) -> None: ...

    def heal_all(self) -> None: ...

    def degrade_site(self, site: SiteId, factor: float) -> None: ...

    def restore_site(self, site: SiteId) -> None: ...

    def spike_link(self, sender: SiteId, recipient: SiteId, factor: float) -> None: ...

    def clear_link(self, sender: SiteId, recipient: SiteId) -> None: ...

    def partition_oneway(self, sender: SiteId, recipient: SiteId) -> None: ...

    def heal_oneway(self, sender: SiteId, recipient: SiteId) -> None: ...


class ScheduleScript:
    """Replay an exact failure schedule of mixed action kinds.

    Where :class:`ScriptedFailures` expresses self-contained outages
    (crash + automatic recovery), a schedule script is the fully
    general form the schedule explorer emits: an ordered list of
    crash / recover / partition / heal actions at absolute times.
    Applying the same actions to the same seeded system reproduces the
    same interleaving, which is what makes explorer violation
    artifacts deterministic repro cases.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Crashable,
        network: PartitionableNetwork,
        actions: Iterable[FailureAction],
    ) -> None:
        self._target = target
        self._network = network
        self.actions: List[FailureAction] = sorted(
            actions, key=lambda action: action.at
        )
        for action in self.actions:
            sim.schedule_at(
                action.at,
                lambda a=action: self.apply(a),
                label=f"schedule:{action.kind}",
            )

    def apply(self, action: FailureAction) -> None:
        """Apply one action now (also usable without scheduling)."""
        if action.kind == "crash":
            self._target.crash_site(action.targets[0])
        elif action.kind == "recover":
            self._target.recover_site(action.targets[0])
        elif action.kind == "partition":
            self._network.partition(*action.targets)
        elif action.kind == "heal":
            self._network.heal(*action.targets)
        elif action.kind == "heal-all":
            self._network.heal_all()
        elif action.kind == "degrade":
            # Prefer the system facade (it emits obs events) when the
            # crash target exposes degradation; fall back to the raw
            # network for network-only scripts.
            driver = (
                self._target
                if hasattr(self._target, "degrade_site")
                else self._network
            )
            driver.degrade_site(action.targets[0], action.value)
        elif action.kind == "restore":
            driver = (
                self._target
                if hasattr(self._target, "restore_site")
                else self._network
            )
            driver.restore_site(action.targets[0])
        elif action.kind == "link-spike":
            self._network.spike_link(*action.targets, action.value)
        elif action.kind == "link-clear":
            self._network.clear_link(*action.targets)
        elif action.kind == "partition-oneway":
            self._network.partition_oneway(*action.targets)
        elif action.kind == "heal-oneway":
            self._network.heal_oneway(*action.targets)


class RandomFailures:
    """Poisson crash arrivals with exponential repair times.

    Parameters
    ----------
    crash_rate:
        Expected crashes per simulated second, per site.
    mean_repair:
        Mean outage duration (the paper's ``1/R``).
    sites:
        Which sites may crash.  A site that is already down when its
        next crash fires simply reschedules.
    gray_rate:
        Expected gray episodes per simulated second, per site (default
        0: fail-stop only, preserving existing seeded streams).  Each
        episode degrades the site by *degrade_factor* — or, when a
        *network* is supplied, may instead spike one outgoing link by
        *spike_factor* (a 50/50 choice) — for an exponentially
        distributed duration of mean *mean_gray*.
    mean_gray:
        Mean gray-episode duration, in simulated seconds.
    degrade_factor / spike_factor:
        Latency multipliers applied during an episode.
    network:
        Gray-capable network (needed for link spikes; degradation falls
        back to the crash target's ``degrade_site`` when absent).
    """

    def __init__(
        self,
        sim: Simulator,
        target: Crashable,
        rng: Rng,
        *,
        crash_rate: float,
        mean_repair: float,
        sites: Sequence[SiteId],
        gray_rate: float = 0.0,
        mean_gray: float = 1.0,
        degrade_factor: float = 5.0,
        spike_factor: float = 10.0,
        network: "PartitionableNetwork | None" = None,
    ) -> None:
        if crash_rate < 0:
            raise SimulationError(f"crash_rate must be >= 0, got {crash_rate}")
        if mean_repair <= 0:
            raise SimulationError(f"mean_repair must be > 0, got {mean_repair}")
        if gray_rate < 0:
            raise SimulationError(f"gray_rate must be >= 0, got {gray_rate}")
        if mean_gray <= 0:
            raise SimulationError(f"mean_gray must be > 0, got {mean_gray}")
        if not sites:
            raise SimulationError("RandomFailures needs at least one site")
        self._sim = sim
        self._target = target
        self._rng = rng
        self._crash_rate = crash_rate
        self._mean_repair = mean_repair
        self._sites = list(sites)
        self._down: set = set()
        self._gray_rate = gray_rate
        self._mean_gray = mean_gray
        self._degrade_factor = degrade_factor
        self._spike_factor = spike_factor
        self._network = network
        self.crashes_injected = 0
        self.gray_injected = 0
        if crash_rate > 0:
            for site in self._sites:
                self._schedule_next_crash(site)
        if gray_rate > 0:
            for site in self._sites:
                self._schedule_next_gray(site)

    def _schedule_next_crash(self, site: SiteId) -> None:
        delay = self._rng.exponential(1.0 / self._crash_rate)
        self._sim.schedule(delay, lambda: self._crash(site), label=f"crash:{site}")

    def _crash(self, site: SiteId) -> None:
        if site not in self._down:
            self._down.add(site)
            self.crashes_injected += 1
            self._target.crash_site(site)
            repair = self._rng.exponential(self._mean_repair)
            self._sim.schedule(
                repair, lambda: self._recover(site), label=f"recover:{site}"
            )
        self._schedule_next_crash(site)

    def _recover(self, site: SiteId) -> None:
        self._down.discard(site)
        self._target.recover_site(site)

    # -- gray episodes -------------------------------------------------

    def _schedule_next_gray(self, site: SiteId) -> None:
        delay = self._rng.exponential(1.0 / self._gray_rate)
        self._sim.schedule(delay, lambda: self._gray(site), label=f"gray:{site}")

    def _gray(self, site: SiteId) -> None:
        self.gray_injected += 1
        duration = self._rng.exponential(self._mean_gray)
        peers = [s for s in self._sites if s != site]
        use_spike = (
            self._network is not None
            and peers
            and self._rng.bernoulli(0.5)
        )
        if use_spike:
            peer = self._rng.choice(peers)
            self._network.spike_link(site, peer, self._spike_factor)
            self._sim.schedule(
                duration,
                lambda: self._network.clear_link(site, peer),
                label=f"gray:{site}",
            )
        else:
            driver = (
                self._target
                if hasattr(self._target, "degrade_site")
                else self._network
            )
            if driver is not None:
                driver.degrade_site(site, self._degrade_factor)
                self._sim.schedule(
                    duration,
                    lambda: self._restore(site),
                    label=f"gray:{site}",
                )
        self._schedule_next_gray(site)

    def _restore(self, site: SiteId) -> None:
        driver = (
            self._target
            if hasattr(self._target, "restore_site")
            else self._network
        )
        if driver is not None:
            driver.restore_site(site)
