"""Failure injection: crash/recovery schedules for the full-system simulator.

The paper's analysis is parameterised by a per-update failure
probability ``F`` and a recovery rate ``R`` (mean repair time ``1/R``,
exponentially distributed in the section 4.2 simulation).  This module
provides both:

* :class:`ScriptedFailures` — an exact list of (site, crash time,
  duration) triples, for tests and for driving the protocol through
  specific Figure-1 transitions; and
* :class:`RandomFailures` — Poisson crash arrivals per site with
  exponential repair times, for statistical experiments.

Both drive any object implementing the :class:`Crashable` duck type
(the :class:`~repro.txn.system.DistributedSystem` facade does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.net.message import SiteId
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


class Crashable(Protocol):
    """Anything the injectors can crash and recover."""

    def crash_site(self, site: SiteId) -> None:
        """Take *site* down (it stops processing and its traffic drops)."""

    def recover_site(self, site: SiteId) -> None:
        """Bring *site* back up (it runs its recovery procedure)."""


@dataclass(frozen=True)
class CrashPlan:
    """One scheduled outage: *site* goes down at *at* for *duration* seconds."""

    site: SiteId
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise SimulationError(
                f"invalid crash plan for {self.site}: at={self.at}, "
                f"duration={self.duration}"
            )


class ScriptedFailures:
    """Replay an exact outage schedule.

    Deterministic failure injection is what lets the Figure-1 bench and
    the protocol tests force a failure into precisely the wait phase of
    a chosen transaction.
    """

    def __init__(
        self, sim: Simulator, target: Crashable, plans: Iterable[CrashPlan]
    ) -> None:
        self._sim = sim
        self._target = target
        self.plans: List[CrashPlan] = sorted(plans, key=lambda p: p.at)
        for plan in self.plans:
            sim.schedule_at(
                plan.at,
                lambda p=plan: self._crash(p),
                label=f"crash:{plan.site}",
            )

    def _crash(self, plan: CrashPlan) -> None:
        self._target.crash_site(plan.site)
        self._sim.schedule(
            plan.duration,
            lambda: self._target.recover_site(plan.site),
            label=f"recover:{plan.site}",
        )


@dataclass(frozen=True)
class FailureAction:
    """One scheduled failure-injection action, at absolute time *at*.

    ``kind`` is one of ``"crash"``, ``"recover"``, ``"partition"``,
    ``"heal"``, ``"heal-all"``; ``targets`` names the affected site(s)
    (two sites for partition/heal, none for heal-all).  This is the
    on-disk vocabulary of the schedule explorer's ``(seed, schedule)``
    artifacts (:mod:`repro.check.explorer`), so a violating interleaving
    replays exactly.
    """

    at: float
    kind: str
    targets: Tuple[SiteId, ...] = ()

    KINDS = ("crash", "recover", "partition", "heal", "heal-all")

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"action time must be >= 0, got {self.at}")
        if self.kind not in self.KINDS:
            raise SimulationError(f"unknown failure action kind {self.kind!r}")
        expected = {"crash": 1, "recover": 1, "partition": 2, "heal": 2,
                    "heal-all": 0}[self.kind]
        if len(self.targets) != expected:
            raise SimulationError(
                f"{self.kind} takes {expected} target(s), got {self.targets}"
            )


class PartitionableNetwork(Protocol):
    """The network surface :class:`ScheduleScript` drives."""

    def partition(self, a: SiteId, b: SiteId) -> None: ...

    def heal(self, a: SiteId, b: SiteId) -> None: ...

    def heal_all(self) -> None: ...


class ScheduleScript:
    """Replay an exact failure schedule of mixed action kinds.

    Where :class:`ScriptedFailures` expresses self-contained outages
    (crash + automatic recovery), a schedule script is the fully
    general form the schedule explorer emits: an ordered list of
    crash / recover / partition / heal actions at absolute times.
    Applying the same actions to the same seeded system reproduces the
    same interleaving, which is what makes explorer violation
    artifacts deterministic repro cases.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Crashable,
        network: PartitionableNetwork,
        actions: Iterable[FailureAction],
    ) -> None:
        self._target = target
        self._network = network
        self.actions: List[FailureAction] = sorted(
            actions, key=lambda action: action.at
        )
        for action in self.actions:
            sim.schedule_at(
                action.at,
                lambda a=action: self.apply(a),
                label=f"schedule:{action.kind}",
            )

    def apply(self, action: FailureAction) -> None:
        """Apply one action now (also usable without scheduling)."""
        if action.kind == "crash":
            self._target.crash_site(action.targets[0])
        elif action.kind == "recover":
            self._target.recover_site(action.targets[0])
        elif action.kind == "partition":
            self._network.partition(*action.targets)
        elif action.kind == "heal":
            self._network.heal(*action.targets)
        elif action.kind == "heal-all":
            self._network.heal_all()


class RandomFailures:
    """Poisson crash arrivals with exponential repair times.

    Parameters
    ----------
    crash_rate:
        Expected crashes per simulated second, per site.
    mean_repair:
        Mean outage duration (the paper's ``1/R``).
    sites:
        Which sites may crash.  A site that is already down when its
        next crash fires simply reschedules.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Crashable,
        rng: Rng,
        *,
        crash_rate: float,
        mean_repair: float,
        sites: Sequence[SiteId],
    ) -> None:
        if crash_rate < 0:
            raise SimulationError(f"crash_rate must be >= 0, got {crash_rate}")
        if mean_repair <= 0:
            raise SimulationError(f"mean_repair must be > 0, got {mean_repair}")
        if not sites:
            raise SimulationError("RandomFailures needs at least one site")
        self._sim = sim
        self._target = target
        self._rng = rng
        self._crash_rate = crash_rate
        self._mean_repair = mean_repair
        self._sites = list(sites)
        self._down: set = set()
        self.crashes_injected = 0
        if crash_rate > 0:
            for site in self._sites:
                self._schedule_next_crash(site)

    def _schedule_next_crash(self, site: SiteId) -> None:
        delay = self._rng.exponential(1.0 / self._crash_rate)
        self._sim.schedule(delay, lambda: self._crash(site), label=f"crash:{site}")

    def _crash(self, site: SiteId) -> None:
        if site not in self._down:
            self._down.add(site)
            self.crashes_injected += 1
            self._target.crash_site(site)
            repair = self._rng.exponential(self._mean_repair)
            self._sim.schedule(
                repair, lambda: self._recover(site), label=f"recover:{site}"
            )
        self._schedule_next_crash(site)

    def _recover(self, site: SiteId) -> None:
        self._down.discard(site)
        self._target.recover_site(site)
