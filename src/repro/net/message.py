"""Message envelopes for the simulated network.

The network layer is payload-agnostic: the two-phase-commit protocol
messages (:mod:`repro.txn.protocol`) and any application traffic travel
inside :class:`Envelope` records.  Keeping the envelope separate from
the payload lets the network account for latency, loss and partitions
without knowing anything about the commit protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.sim.events import SimTime

#: Site identifiers are plain strings (e.g. ``"site-0"``).
SiteId = str

_envelope_counter = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """One message in flight between two sites."""

    sender: SiteId
    recipient: SiteId
    payload: Any
    sent_at: SimTime
    uid: int = field(default_factory=lambda: next(_envelope_counter))

    def __str__(self) -> str:
        return (
            f"[{self.sender} -> {self.recipient} @ {self.sent_at:.4g}] "
            f"{self.payload}"
        )
