"""The simulated point-to-point network.

Sites register a delivery handler; :meth:`Network.send` schedules a
delivery event after a (seeded) random latency.  The network models the
failure modes the paper's protocol must survive:

* **site crashes** — messages addressed to (or sent by) a crashed site
  are silently dropped, the fail-stop model of Gray-style 2PC;
* **partitions** — a blocked pair of sites drops traffic in both
  directions ("preventing communication with some other site",
  section 3.1);
* **message loss** — independent per-message loss with a configurable
  probability.

Beyond fail-stop, the network also models *gray failures* — the
slow-but-not-dead behaviour that fixed timeouts handle worst (Gray &
Lamport's realistic-timing critique, and the transient hiccups the
paper's section 6 retry/backoff hybrid targets):

* **site degradation** — :meth:`Network.degrade_site` multiplies the
  latency of every message a site sends or receives (an overloaded or
  thrashing host);
* **link delay spikes** — :meth:`Network.spike_link` multiplies latency
  on one directed link only;
* **one-way partitions** — :meth:`Network.partition_oneway` blocks a
  single direction, the asymmetric-reachability case bidirectional
  partitions can't express;
* **corruption** — checksum-style per-message corruption; a corrupted
  message fails its (modelled) checksum and is dropped with the
  ``drop:corrupt`` stat, indistinguishable from loss to the protocol.

Dropped messages are counted, never raised: the commit protocol's
timeouts are the recovery mechanism, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.errors import NetworkError
from repro.net.message import Envelope, SiteId
from repro.obs.events import EventBus
from repro.sim.engine import Simulator
from repro.sim.rand import Rng

Handler = Callable[[Envelope], None]


@dataclass
class NetworkStats:
    """Counters describing everything the network has carried."""

    sent: int = 0
    delivered: int = 0
    duplicated: int = 0
    dropped_site_down: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    dropped_corrupt: int = 0

    @property
    def dropped(self) -> int:
        """Total messages that never reached their recipient."""
        return (
            self.dropped_site_down
            + self.dropped_partition
            + self.dropped_loss
            + self.dropped_corrupt
        )


@dataclass
class _DeliveryBatch:
    """Envelopes sharing one simulator event.

    Back-to-back sends that would arrive at the same instant (a
    broadcast with zero jitter is the common case) are coalesced into a
    single scheduled event.  ``seq`` is the sequence number of that
    event: an envelope may only join the batch while
    ``sim.next_sequence == seq + 1`` — i.e. while no other event has
    been scheduled since — which makes batching provably
    order-equivalent to scheduling each delivery individually.
    """

    time: float
    seq: int
    envelopes: List[Envelope] = field(default_factory=list)


class Network:
    """A latency-and-failure-modelling message fabric.

    Parameters
    ----------
    sim:
        The simulation engine to schedule deliveries on.
    rng:
        Random source for latency jitter and message loss.
    base_latency:
        Minimum one-way delivery time, in simulated seconds.
    jitter:
        Uniform extra latency in ``[0, jitter)``.
    loss_probability:
        Independent probability that any message is lost in transit.
    duplicate_probability:
        Independent probability that a message is delivered twice (the
        second copy after an extra latency draw).  Real networks and
        retry layers duplicate; the protocol must be idempotent.
    corruption_probability:
        Independent probability that a message is corrupted in transit.
        A corrupted message fails its checksum at the receiver and is
        dropped (counted as ``dropped_corrupt``); the payload is never
        delivered mangled — the model is detect-and-discard.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: Rng,
        *,
        base_latency: float = 0.01,
        jitter: float = 0.005,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        corruption_probability: float = 0.0,
        bus: "EventBus | None" = None,
    ) -> None:
        if base_latency < 0 or jitter < 0:
            raise NetworkError("latency parameters must be non-negative")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise NetworkError("duplicate_probability must be in [0, 1]")
        if not 0.0 <= corruption_probability <= 1.0:
            raise NetworkError("corruption_probability must be in [0, 1]")
        self._sim = sim
        self._rng = rng
        self._bus = bus
        self._base_latency = base_latency
        self._jitter = jitter
        self._loss_probability = loss_probability
        self._duplicate_probability = duplicate_probability
        self._corruption_probability = corruption_probability
        self._handlers: Dict[SiteId, Handler] = {}
        self._down: Set[SiteId] = set()
        self._partitions: Set[FrozenSet[SiteId]] = set()
        #: Gray-failure state: per-site processing-latency multipliers,
        #: per-directed-link delay multipliers, and blocked directions.
        self._degraded: Dict[SiteId, float] = {}
        self._link_spikes: Dict[Tuple[SiteId, SiteId], float] = {}
        self._oneway: Set[Tuple[SiteId, SiteId]] = set()
        self._observers: list = []
        self._batch: Optional[_DeliveryBatch] = None
        self.stats = NetworkStats()

    @property
    def base_latency(self) -> float:
        """The healthy one-way delivery latency (before jitter and
        gray-failure multipliers) — the unit the frontier campaign's
        latency sanity checks are expressed in."""
        return self._base_latency

    def subscribe(self, observer: Callable[[str, Envelope, float], None]) -> None:
        """Attach a transport observer (e.g. a protocol tracer).

        The observer is called as ``observer(event, envelope, time)``
        with events ``"send"``, ``"deliver"``, ``"drop:site-down"``,
        ``"drop:partition"``, ``"drop:loss"`` and ``"drop:corrupt"``.
        Observers must not mutate the envelope or send messages
        re-entrantly.
        """
        self._observers.append(observer)

    def _notify(self, event: str, envelope: Envelope) -> None:
        if not self._observers and self._bus is None:
            return
        for observer in self._observers:
            observer(event, envelope, self._sim.now)
        bus = self._bus
        if bus:
            dropped = event.startswith("drop")
            payload = envelope.payload
            bus.emit(
                "msg.drop" if dropped else f"msg.{event}",
                time=self._sim.now,
                txn=getattr(payload, "txn", None),
                site=envelope.sender,
                transport=event,
                kind=type(payload).__name__,
                sender=envelope.sender,
                recipient=envelope.recipient,
                reason=event[5:] if dropped else "",
                message=payload,
            )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, site: SiteId, handler: Handler) -> None:
        """Attach *site*'s message handler (replacing any previous one)."""
        self._handlers[site] = handler

    def sites(self) -> FrozenSet[SiteId]:
        """All registered sites."""
        return frozenset(self._handlers)

    # ------------------------------------------------------------------
    # Failure state
    # ------------------------------------------------------------------

    def crash_site(self, site: SiteId) -> None:
        """Mark *site* down; its traffic drops until :meth:`recover_site`."""
        self._down.add(site)

    def recover_site(self, site: SiteId) -> None:
        """Mark *site* up again."""
        self._down.discard(site)

    def is_up(self, site: SiteId) -> bool:
        """True iff *site* is currently up."""
        return site not in self._down

    def partition(self, a: SiteId, b: SiteId) -> None:
        """Block traffic between *a* and *b* in both directions."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: SiteId, b: SiteId) -> None:
        """Restore traffic between *a* and *b*."""
        self._partitions.discard(frozenset((a, b)))

    def partition_groups(self, groups) -> None:
        """Split the cluster: traffic flows within groups, never across.

        *groups* is a sequence of site collections; every pair of sites
        in different groups is blocked (sites in no group keep full
        connectivity).  Classic network-split scenarios in one call:
        ``partition_groups([["site-0"], ["site-1", "site-2"]])``.
        """
        group_lists = [list(group) for group in groups]
        for index, group in enumerate(group_lists):
            for other in group_lists[index + 1 :]:
                for a in group:
                    for b in other:
                        self.partition(a, b)

    def heal_all(self) -> None:
        """Remove every partition, including one-way partitions."""
        self._partitions.clear()
        self._oneway.clear()

    def is_partitioned(self, a: SiteId, b: SiteId) -> bool:
        """True iff traffic between *a* and *b* is blocked (either way)."""
        return frozenset((a, b)) in self._partitions

    # ------------------------------------------------------------------
    # Gray-failure state
    # ------------------------------------------------------------------

    def degrade_site(self, site: SiteId, factor: float) -> None:
        """Multiply the latency of every message *site* sends or receives.

        Models a slow-but-alive host (paging, GC, overload): traffic
        still flows, just late.  ``factor`` must be >= 1; degrading an
        already-degraded site replaces (not stacks) the factor.
        """
        if factor < 1.0:
            raise NetworkError(f"degrade factor must be >= 1, got {factor}")
        self._degraded[site] = factor

    def restore_site(self, site: SiteId) -> None:
        """Remove *site*'s degradation (no-op if not degraded)."""
        self._degraded.pop(site, None)

    def degradation_of(self, site: SiteId) -> float:
        """The current latency multiplier for *site* (1.0 = healthy)."""
        return self._degraded.get(site, 1.0)

    def spike_link(self, sender: SiteId, recipient: SiteId, factor: float) -> None:
        """Multiply latency on the directed link *sender* → *recipient*.

        Directed: the reverse link is unaffected unless spiked too.
        """
        if factor < 1.0:
            raise NetworkError(f"link spike factor must be >= 1, got {factor}")
        self._link_spikes[(sender, recipient)] = factor

    def clear_link(self, sender: SiteId, recipient: SiteId) -> None:
        """Remove the delay spike on *sender* → *recipient* (no-op if none)."""
        self._link_spikes.pop((sender, recipient), None)

    def partition_oneway(self, sender: SiteId, recipient: SiteId) -> None:
        """Block traffic in the single direction *sender* → *recipient*.

        The asymmetric-reachability case a bidirectional partition can't
        express: *recipient* still reaches *sender*, so e.g. queries
        arrive but the answers are lost.
        """
        self._oneway.add((sender, recipient))

    def heal_oneway(self, sender: SiteId, recipient: SiteId) -> None:
        """Restore the direction *sender* → *recipient*."""
        self._oneway.discard((sender, recipient))

    def is_blocked(self, sender: SiteId, recipient: SiteId) -> bool:
        """True iff a message *sender* → *recipient* would be dropped
        by a partition (bidirectional or one-way) right now."""
        return (
            frozenset((sender, recipient)) in self._partitions
            or (sender, recipient) in self._oneway
        )

    def clear_degradations(self) -> None:
        """Remove every site degradation and link spike (not partitions)."""
        self._degraded.clear()
        self._link_spikes.clear()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def send(self, sender: SiteId, recipient: SiteId, payload: Any) -> None:
        """Send *payload* from *sender* to *recipient*.

        The message is dropped (counted, not raised) if the sender is
        down now, if it is sampled as lost, or — checked at delivery
        time — if the recipient is down or the pair is partitioned when
        the message would arrive.
        """
        if recipient not in self._handlers:
            raise NetworkError(f"unknown recipient site {recipient!r}")
        self.stats.sent += 1
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=self._sim.now,
        )
        self._notify("send", envelope)
        if sender in self._down:
            self.stats.dropped_site_down += 1
            self._notify("drop:site-down", envelope)
            return
        if self._loss_probability > 0 and self._rng.bernoulli(self._loss_probability):
            self.stats.dropped_loss += 1
            self._notify("drop:loss", envelope)
            return
        if self._corruption_probability > 0 and self._rng.bernoulli(
            self._corruption_probability
        ):
            # The checksum failure is detected at the receiver, but the
            # protocol-visible effect (message never handled) is the
            # same wherever we count it; sampling at send keeps the
            # seeded RNG stream independent of in-flight state.
            self.stats.dropped_corrupt += 1
            self._notify("drop:corrupt", envelope)
            return
        copies = 1
        if self._duplicate_probability > 0 and self._rng.bernoulli(
            self._duplicate_probability
        ):
            copies = 2
            self.stats.duplicated += 1
        factor = self._gray_factor(sender, recipient)
        for _ in range(copies):
            latency = self._base_latency
            if self._jitter > 0:
                latency += self._rng.uniform(0.0, self._jitter)
            self._schedule_delivery(latency * factor, envelope)

    def _gray_factor(self, sender: SiteId, recipient: SiteId) -> float:
        """Combined latency multiplier for *sender* → *recipient* now."""
        if not self._degraded and not self._link_spikes:
            return 1.0
        return (
            self._degraded.get(sender, 1.0)
            * self._degraded.get(recipient, 1.0)
            * self._link_spikes.get((sender, recipient), 1.0)
        )

    def _schedule_delivery(self, latency: float, envelope: Envelope) -> None:
        at = self._sim.now + latency
        batch = self._batch
        if (
            batch is not None
            and batch.time == at
            and self._sim.next_sequence == batch.seq + 1
        ):
            # Nothing was scheduled since the batch's own event, so this
            # envelope fires at the same position it would have had as a
            # standalone event — join the batch instead of growing the
            # simulator's heap.
            batch.envelopes.append(envelope)
            return
        batch = _DeliveryBatch(time=at, seq=self._sim.next_sequence)
        batch.envelopes.append(envelope)
        self._batch = batch
        self._sim.schedule_at(
            at,
            lambda: self._deliver_batch(batch),
            label=f"deliver:{envelope.sender}->{envelope.recipient}",
        )

    def _deliver_batch(self, batch: _DeliveryBatch) -> None:
        # Close the batch before delivering: a handler may send again at
        # zero latency, and those messages must open a fresh batch (their
        # event necessarily fires after this one).
        if self._batch is batch:
            self._batch = None
        for envelope in batch.envelopes:
            self._deliver(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.recipient in self._down:
            self.stats.dropped_site_down += 1
            self._notify("drop:site-down", envelope)
            return
        if self.is_blocked(envelope.sender, envelope.recipient):
            self.stats.dropped_partition += 1
            self._notify("drop:partition", envelope)
            return
        self.stats.delivered += 1
        self._notify("deliver", envelope)
        self._handlers[envelope.recipient](envelope)

    def broadcast(self, sender: SiteId, recipients, payload: Any) -> None:
        """Send *payload* to every site in *recipients* (independent sends)."""
        for recipient in recipients:
            self.send(sender, recipient, payload)
