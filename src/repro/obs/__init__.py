"""Observability: structured events, spans, labeled metrics, exporters.

The unified observability layer of the reproduction, threaded through
every component of the full-system simulator (see
``docs/observability.md``):

* :mod:`repro.obs.events` — the structured :class:`EventBus` every
  layer emits typed, timestamped lifecycle events onto;
* :mod:`repro.obs.spans` — :class:`SpanTracer`, which stitches those
  events into per-transaction span trees (phases per site, in-doubt
  windows);
* :mod:`repro.obs.registry` — the labeled :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms) that
  :class:`~repro.metrics.collector.MetricsCollector` is built on;
* :mod:`repro.obs.export` — JSON-lines, Prometheus text exposition and
  human report renderings;
* :mod:`repro.obs.store` — the SQLite-backed :class:`CampaignStore`
  every campaign driver records runs/trials/metrics/verdicts into, and
  the :class:`CampaignRecorder` bus subscriber that feeds it;
* :mod:`repro.obs.live` — the zero-dependency live dashboard
  (``repro serve-dash``) streaming the bus over SSE.

With no subscribers attached the bus is falsy and instrumented call
sites skip event construction entirely, so unobserved simulations pay
only a truthiness check.
"""

from repro.obs.events import TAXONOMY, EventBus, EventLog, ObsEvent
from repro.obs.export import (
    CampaignMetrics,
    event_to_dict,
    events_to_jsonl,
    prometheus_text,
    render_report,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanTracer
from repro.obs.store import (
    SCHEMA_VERSION,
    CampaignRecorder,
    CampaignStore,
    RunRecord,
    StoreError,
    TrialRecord,
    VerdictRecord,
    default_store_path,
)
from repro.obs.live import DashboardServer, LiveState, SSEBroker, serve_dash

__all__ = [
    "TAXONOMY",
    "EventBus",
    "EventLog",
    "ObsEvent",
    "CampaignMetrics",
    "event_to_dict",
    "events_to_jsonl",
    "prometheus_text",
    "render_report",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "SCHEMA_VERSION",
    "CampaignRecorder",
    "CampaignStore",
    "RunRecord",
    "StoreError",
    "TrialRecord",
    "VerdictRecord",
    "default_store_path",
    "DashboardServer",
    "LiveState",
    "SSEBroker",
    "serve_dash",
]
