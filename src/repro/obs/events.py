"""The structured event bus: typed, timestamped observability events.

Every layer of the simulated system reports what it is doing by
emitting :class:`ObsEvent` records onto one shared :class:`EventBus`:
the commit protocol emits transaction and phase events, the participant
state machine emits Figure-1 transitions, the store emits polyvalue
installs/resolves, and the network emits one event per message carried
(or dropped).  Consumers — the span tracer, the protocol tracer, the
JSON-lines exporter, ad-hoc test probes — subscribe, optionally by name
prefix, and see every matching event in simulation order.

The bus is **pay-for-what-you-use**: with no subscribers attached,
``emit`` is never reached — instrumented call sites guard with a plain
truthiness check (``if bus:``), so an unobserved simulation does no
event construction at all.

Event taxonomy
--------------
Names are dotted, most-significant first, so prefix subscriptions
select whole families:

===================  ====================================================
name                 emitted when
===================  ====================================================
``txn.submitted``    a coordinator starts driving a transaction
``txn.committed``    the coordinator decides complete (attr ``latency``)
``txn.aborted``      the coordinator decides abort (attr ``reason``)
``phase.read.start``   the coordinator fans out read requests
``phase.stage.start``  the coordinator ships staged writes
``site.state``       a participant takes a Figure-1 transition
                     (attrs ``source``/``target``/``trigger``)
``indoubt.open``     a wait-phase timeout installs polyvalues
                     (attrs ``items``, ``live``)
``indoubt.close``    a direct participant learns the outcome
                     (attr ``committed``)
``polyvalue.install``  an item starts holding a polyvalue (attr ``item``)
``polyvalue.resolve``  an item returns to a simple value (attr ``item``)
``lock.conflict``    a lock acquisition aborts a transaction
                     (attrs ``item``, ``mode``)
``msg.send``         the network accepts a message
``msg.deliver``      a message reaches its recipient
``msg.drop``         a message is lost (attr ``reason``:
                     ``site-down``/``partition``/``loss``)
``site.crash``       a site fail-stops
``site.recover``     a crashed site comes back up
``sim.window``       one ``run_until`` window of the simulator finished
                     (attrs ``events``, ``since``)
``campaign.start``   a campaign engine run begins
                     (attrs ``label``, ``trials``, ``jobs``, ``chunks``)
``campaign.trial``   one campaign trial finished
                     (attrs ``label``, ``index``, ``ok``)
``campaign.chunk``   one chunk of trials finished
                     (attrs ``label``, ``chunk``, ``ok``)
``campaign.done``    the campaign finished
                     (attrs ``label``, ``trials``, ``failures``)
===================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

#: Every event name the instrumented layers emit (documentation and
#: test-coverage aid; the bus itself accepts any dotted name).
TAXONOMY = (
    "txn.submitted",
    "txn.committed",
    "txn.aborted",
    "phase.read.start",
    "phase.stage.start",
    "site.state",
    "indoubt.open",
    "indoubt.close",
    "polyvalue.install",
    "polyvalue.resolve",
    "lock.conflict",
    "msg.send",
    "msg.deliver",
    "msg.drop",
    "site.crash",
    "site.recover",
    "site.degrade",
    "site.restore",
    "txn.overflow",
    "overload.block",
    "paxos.ballot",
    "paxos.decide",
    "path.classify",
    "path.apply",
    "sim.window",
    "campaign.start",
    "campaign.trial",
    "campaign.chunk",
    "campaign.done",
)


@dataclass(frozen=True)
class ObsEvent:
    """One structured observability event.

    ``txn`` and ``site`` are first-class because nearly every consumer
    filters or groups by them; everything else rides in ``attrs``.
    """

    time: float
    name: str
    txn: Optional[str] = None
    site: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """A one-line human-readable rendering."""
        parts = [f"{self.time * 1000:9.1f}ms {self.name:<18}"]
        if self.txn is not None:
            parts.append(f"txn={self.txn}")
        if self.site is not None:
            parts.append(f"site={self.site}")
        for key, value in self.attrs.items():
            if key == "message":
                continue  # live object; the kind attr already names it
            parts.append(f"{key}={value}")
        return " ".join(parts)


Subscriber = Callable[[ObsEvent], None]
#: A subscription filter: a dotted-name prefix, or a tuple of them.
Prefix = Union[str, Tuple[str, ...]]


class EventBus:
    """A synchronous fan-out of :class:`ObsEvent` records.

    Subscribers are called in subscription order, during ``emit``, on
    the simulation's thread; they must not re-enter the system under
    observation.  ``bool(bus)`` is False with no subscribers — the
    guard instrumented call sites use to skip event construction.
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: List[Tuple[Optional[Prefix], Subscriber]] = []

    def __bool__(self) -> bool:
        return bool(self._subscribers)

    @property
    def active(self) -> bool:
        """True iff at least one subscriber is attached."""
        return bool(self._subscribers)

    def subscribe(
        self, subscriber: Subscriber, *, prefix: Optional[Prefix] = None
    ) -> Subscriber:
        """Attach *subscriber*; with *prefix*, only matching names are
        delivered (a tuple of prefixes matches any of them)."""
        self._subscribers.append((prefix, subscriber))
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach every subscription of *subscriber* (no-op if absent).

        Compared by equality, not identity: bound methods are re-created
        on each attribute access, so ``bus.unsubscribe(self._record)``
        must match the equal-but-distinct object passed to subscribe.
        """
        self._subscribers = [
            entry for entry in self._subscribers if entry[1] != subscriber
        ]

    def emit(
        self,
        name: str,
        *,
        time: float,
        txn: Optional[str] = None,
        site: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[ObsEvent]:
        """Build and deliver one event (None when nobody is listening).

        Callers on hot paths should guard with ``if bus:`` so even the
        keyword-argument packing is skipped when unobserved.
        """
        if not self._subscribers:
            return None
        event = ObsEvent(time=time, name=name, txn=txn, site=site, attrs=attrs)
        for prefix, subscriber in self._subscribers:
            if prefix is None or name.startswith(prefix):
                subscriber(event)
        return event


class EventLog:
    """A subscriber that simply records every event it sees.

    The JSON-lines exporter and the tests use this as their capture
    buffer; attach with ``EventLog(bus)`` (optionally prefix-filtered).
    """

    def __init__(
        self, bus: Optional[EventBus] = None, *, prefix: Optional[Prefix] = None
    ) -> None:
        self.events: List[ObsEvent] = []
        self._bus = bus
        if bus is not None:
            bus.subscribe(self._record, prefix=prefix)

    def _record(self, event: ObsEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_txn(self, txn: str) -> List[ObsEvent]:
        """All recorded events concerning one transaction."""
        return [event for event in self.events if event.txn == txn]

    def named(self, prefix: Prefix) -> List[ObsEvent]:
        """All recorded events whose name matches *prefix*."""
        return [
            event for event in self.events if event.name.startswith(prefix)
        ]

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.events.clear()

    def detach(self) -> None:
        """Stop recording (the captured events stay available)."""
        if self._bus is not None:
            self._bus.unsubscribe(self._record)
            self._bus = None
