"""Exporters: JSON-lines events, Prometheus text exposition, report table.

Three views over the observability layer, each aimed at a different
consumer:

* :func:`events_to_jsonl` — the raw event stream, one JSON object per
  line, for offline analysis (``python -m repro events``);
* :func:`prometheus_text` — a :class:`~repro.obs.registry.MetricsRegistry`
  in the Prometheus text exposition format (version 0.0.4), so the
  simulated system's metrics can flow into real dashboards
  (``python -m repro report --format prometheus``);
* :func:`render_report` — a human-readable summary table of a
  :class:`~repro.metrics.collector.MetricsCollector`, headline counters
  plus latency-histogram percentiles (``python -m repro report``).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List

from repro.obs.events import ObsEvent
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------


def event_to_dict(event: ObsEvent) -> Dict[str, Any]:
    """A JSON-safe dict for one event.

    Live protocol objects riding in attrs (e.g. the ``message`` of a
    transport event) are rendered through ``repr``.
    """
    record: Dict[str, Any] = {"time": event.time, "name": event.name}
    if event.txn is not None:
        record["txn"] = event.txn
    if event.site is not None:
        record["site"] = event.site
    for key, value in event.attrs.items():
        record[key] = value
    return record


def events_to_jsonl(events: Iterable[ObsEvent]) -> str:
    """One compact JSON object per line, in event order."""
    return "\n".join(
        json.dumps(event_to_dict(event), default=repr, sort_keys=True)
        for event in events
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for labels, child in family.children():
                for bound, cumulative in child.cumulative():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} "
                    f"{child.count}"
                )
        elif isinstance(family, (Counter, Gauge)):
            children = family.children()
            if not children and not family.labelnames:
                # An unlabeled family that was never touched still
                # exposes its zero — dashboards prefer 0 over absence.
                lines.append(f"{family.name} 0")
            for labels, child in children:
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human report
# ----------------------------------------------------------------------


def render_report(metrics) -> str:
    """A human summary of a :class:`MetricsCollector`.

    Headline counters first (the :meth:`summary` dict), then one line
    per registered histogram with count/mean/p50/p95/p99 derived from
    its buckets.
    """
    lines: List[str] = ["metric                              value",
                        "-" * 48]
    for key, value in metrics.summary().items():
        if isinstance(value, float) and not float(value).is_integer():
            rendered = f"{value:.4f}"
        else:
            rendered = f"{int(value)}"
        lines.append(f"{key:<34} {rendered:>12}")
    histograms = [
        family
        for family in metrics.registry.families()
        if isinstance(family, Histogram)
    ]
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<34} {'count':>6} {'mean':>9} "
            f"{'p50':>9} {'p95':>9} {'p99':>9}"
        )
        lines.append("-" * 80)
        for family in histograms:
            merged = family.merged()
            if not merged.count:
                lines.append(f"{family.name:<34} {0:>6}")
                continue

            def fmt(seconds):
                return "-" if seconds is None else f"{seconds * 1000:.1f}ms"

            lines.append(
                f"{family.name:<34} {merged.count:>6} "
                f"{fmt(merged.mean):>9} {fmt(merged.quantile(0.5)):>9} "
                f"{fmt(merged.quantile(0.95)):>9} "
                f"{fmt(merged.quantile(0.99)):>9}"
            )
    return "\n".join(lines)
