"""Exporters: JSON-lines events, Prometheus text exposition, report table.

Three views over the observability layer, each aimed at a different
consumer:

* :func:`events_to_jsonl` — the raw event stream, one JSON object per
  line, for offline analysis (``python -m repro events``);
* :func:`prometheus_text` — a :class:`~repro.obs.registry.MetricsRegistry`
  in the Prometheus text exposition format (version 0.0.4), so the
  simulated system's metrics can flow into real dashboards
  (``python -m repro report --format prometheus``);
* :func:`render_report` — a human-readable summary table of a
  :class:`~repro.metrics.collector.MetricsCollector`, headline counters
  plus latency-histogram percentiles (``python -m repro report``).

:class:`CampaignMetrics` bridges the campaign engine into the same two
renderers: subscribed to a bus, it folds the ``campaign.*`` taxonomy
events into ``repro_campaign_*`` counters/gauges in its own
:class:`MetricsRegistry`, so driver progress flows through
:func:`prometheus_text` (``CampaignMetrics.registry``) and
:func:`render_report` (it is collector-shaped: ``registry`` +
``summary()``) exactly like the protocol metrics do.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import EventBus, ObsEvent
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# Campaign metrics: campaign.* events -> a registry
# ----------------------------------------------------------------------


class CampaignMetrics:
    """Folds ``campaign.*`` bus events into Prometheus-ready metrics.

    Subscribe one of these to the bus a campaign driver publishes on
    (``repro check/chaos/bench/table2/sweep``) and the engine's
    progress becomes four metric families in :attr:`registry`:

    * ``repro_campaigns_total{label}`` — campaigns started;
    * ``repro_campaign_trials_total{label,status}`` — trial outcomes
      (``status`` is ``ok`` or ``failed``);
    * ``repro_campaign_chunks_total{label,status}`` — chunk completions
      from the process pool;
    * ``repro_campaigns_active`` — campaigns started but not yet done.

    The object is collector-shaped (``registry`` attribute plus a
    ``summary()`` dict), so it feeds :func:`prometheus_text` and
    :func:`render_report` directly.
    """

    PREFIX = "campaign."

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._campaigns = r.counter(
            "repro_campaigns_total",
            "Campaigns started, by driver label",
            ("label",),
        )
        self._trials = r.counter(
            "repro_campaign_trials_total",
            "Campaign trial outcomes, by driver label and status",
            ("label", "status"),
        )
        self._chunks = r.counter(
            "repro_campaign_chunks_total",
            "Process-pool chunk completions, by driver label and status",
            ("label", "status"),
        )
        self._active = r.gauge(
            "repro_campaigns_active",
            "Campaigns started but not yet finished",
        )
        self._bus = bus
        if bus is not None:
            bus.subscribe(self.on_event, prefix=self.PREFIX)

    def detach(self) -> None:
        """Stop consuming events (accumulated metrics stay available)."""
        if self._bus is not None:
            self._bus.unsubscribe(self.on_event)
            self._bus = None

    def on_event(self, event: ObsEvent) -> None:
        """Fold one ``campaign.*`` event (usable as a raw subscriber)."""
        label = str(event.attrs.get("label", ""))
        if event.name == "campaign.start":
            self._campaigns.inc(label=label)
            self._active.inc()
        elif event.name == "campaign.trial":
            status = "ok" if event.attrs.get("ok") else "failed"
            self._trials.inc(label=label, status=status)
        elif event.name == "campaign.chunk":
            status = "ok" if event.attrs.get("ok") else "failed"
            self._chunks.inc(label=label, status=status)
        elif event.name == "campaign.done":
            self._active.dec()

    def summary(self) -> Dict[str, float]:
        """Headline numbers, shaped for :func:`render_report`."""
        return {
            "campaigns": self._campaigns.value,
            "campaigns_active": self._active.value,
            "trials": self._trials.value,
            "trials_ok": self._trials.total(status="ok"),
            "trials_failed": self._trials.total(status="failed"),
            "chunks": self._chunks.value,
            "chunks_failed": self._chunks.total(status="failed"),
        }


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------


def event_to_dict(event: ObsEvent) -> Dict[str, Any]:
    """A JSON-safe dict for one event.

    Live protocol objects riding in attrs (e.g. the ``message`` of a
    transport event) are rendered through ``repr``.
    """
    record: Dict[str, Any] = {"time": event.time, "name": event.name}
    if event.txn is not None:
        record["txn"] = event.txn
    if event.site is not None:
        record["site"] = event.site
    for key, value in event.attrs.items():
        record[key] = value
    return record


def events_to_jsonl(events: Iterable[ObsEvent]) -> str:
    """One compact JSON object per line, in event order."""
    return "\n".join(
        json.dumps(event_to_dict(event), default=repr, sort_keys=True)
        for event in events
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for labels, child in family.children():
                for bound, cumulative in child.cumulative():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} "
                    f"{child.count}"
                )
        elif isinstance(family, (Counter, Gauge)):
            children = family.children()
            if not children and not family.labelnames:
                # An unlabeled family that was never touched still
                # exposes its zero — dashboards prefer 0 over absence.
                lines.append(f"{family.name} 0")
            for labels, child in children:
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human report
# ----------------------------------------------------------------------


def render_report(metrics) -> str:
    """A human summary of a :class:`MetricsCollector`.

    Headline counters first (the :meth:`summary` dict), then one line
    per registered histogram with count/mean/p50/p95/p99 derived from
    its buckets.
    """
    lines: List[str] = ["metric                              value",
                        "-" * 48]
    for key, value in metrics.summary().items():
        if isinstance(value, float) and not float(value).is_integer():
            rendered = f"{value:.4f}"
        else:
            rendered = f"{int(value)}"
        lines.append(f"{key:<34} {rendered:>12}")
    histograms = [
        family
        for family in metrics.registry.families()
        if isinstance(family, Histogram)
    ]
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<34} {'count':>6} {'mean':>9} "
            f"{'p50':>9} {'p95':>9} {'p99':>9}"
        )
        lines.append("-" * 80)
        for family in histograms:
            merged = family.merged()
            if not merged.count:
                lines.append(f"{family.name:<34} {0:>6}")
                continue

            def fmt(seconds):
                return "-" if seconds is None else f"{seconds * 1000:.1f}ms"

            lines.append(
                f"{family.name:<34} {merged.count:>6} "
                f"{fmt(merged.mean):>9} {fmt(merged.quantile(0.5)):>9} "
                f"{fmt(merged.quantile(0.95)):>9} "
                f"{fmt(merged.quantile(0.99)):>9}"
            )
    return "\n".join(lines)
