"""The live dashboard: the obs event bus over HTTP, zero dependencies.

``python -m repro serve-dash`` stands up a small web dashboard on the
standard library only (``http.server`` + server-sent events, no
external packages) and streams the :class:`~repro.obs.events.EventBus`
of a running scenario or campaign into it, live:

* ``/`` — a single self-contained HTML page: campaign progress, txn
  commit/abort rates, open in-doubt windows, polyvalue counts and
  trial verdicts, updating over SSE;
* ``/events`` — the raw event stream in ``text/event-stream`` framing,
  one JSON object per ``data:`` frame (exactly
  :func:`~repro.obs.export.event_to_dict`'s rendering);
* ``/state.json`` — the :class:`LiveState` aggregate snapshot;
* ``/healthz`` — liveness probe.

The split follows the web backend/frontend separation of SimCash-style
experiment platforms, shrunk to the stdlib: the *backend* is the bus
(the simulation thread emits; subscribers enqueue), the *frontend* is
whatever consumes ``/events`` — the built-in page, ``curl``, or a real
dashboard.

Threading contract: the simulation runs on one thread and delivers bus
events synchronously; :class:`LiveState` takes a lock per event and
:class:`SSEBroker` only appends to bounded thread-safe queues, so the
observed system never blocks on a slow browser — a client that falls
more than ``queue_size`` events behind loses the oldest frames, never
the simulation.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.events import EventBus, ObsEvent
from repro.obs.export import event_to_dict

#: Frames a lagging SSE client may buffer before old frames are shed.
DEFAULT_QUEUE_SIZE = 1000

#: Seconds between SSE keep-alive comments when no events flow.
HEARTBEAT_SECONDS = 1.0


class LiveState:
    """A thread-safe rolling aggregate of the event stream.

    Subscribe :meth:`on_event` to any number of buses (each scenario
    iteration of the dashboard driver builds a fresh system with its
    own bus); :meth:`snapshot` renders the totals the dashboard shows:
    transaction commit/abort counts, the set of *currently open*
    in-doubt windows, polyvalue installs/resolves, campaign progress
    per label, and per-trial verdict counts.
    """

    def __init__(self, keep_events: int = 50) -> None:
        self._lock = threading.Lock()
        self._keep = keep_events
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.events_seen = 0
            self.last_time = 0.0
            self.txns = {"submitted": 0, "committed": 0, "aborted": 0}
            self.in_doubt_opened = 0
            self.in_doubt_closed = 0
            self._open_windows: Dict[Tuple[str, str], float] = {}
            self.polyvalues = {"installed": 0, "resolved": 0}
            self.crashes = 0
            self.recoveries = 0
            self.drops = 0
            self.overload_blocks = 0
            self.overflows = 0
            self.campaigns: Dict[str, Dict[str, Any]] = {}
            self._recent: List[Dict[str, Any]] = []

    # -- event folding -------------------------------------------------

    def on_event(self, event: ObsEvent) -> None:
        name = event.name
        with self._lock:
            self.events_seen += 1
            self.last_time = event.time
            if name == "txn.submitted":
                self.txns["submitted"] += 1
            elif name == "txn.committed":
                self.txns["committed"] += 1
            elif name == "txn.aborted":
                self.txns["aborted"] += 1
            elif name == "txn.overflow":
                self.overflows += 1
            elif name == "overload.block":
                self.overload_blocks += 1
            elif name == "indoubt.open":
                self.in_doubt_opened += 1
                self._open_windows[(event.txn or "", event.site or "")] = (
                    event.time
                )
            elif name == "indoubt.close":
                self.in_doubt_closed += 1
                self._open_windows.pop(
                    (event.txn or "", event.site or ""), None
                )
            elif name == "polyvalue.install":
                self.polyvalues["installed"] += 1
            elif name == "polyvalue.resolve":
                self.polyvalues["resolved"] += 1
            elif name == "site.crash":
                self.crashes += 1
            elif name == "site.recover":
                self.recoveries += 1
            elif name == "msg.drop":
                self.drops += 1
            elif name.startswith("campaign."):
                self._on_campaign(name, event)
            if name in ("campaign.trial", "campaign.done", "indoubt.open",
                        "indoubt.close", "txn.aborted", "site.crash"):
                self._recent.append(event_to_dict(event))
                del self._recent[: -self._keep]

    def _on_campaign(self, name: str, event: ObsEvent) -> None:
        label = str(event.attrs.get("label", "campaign"))
        entry = self.campaigns.setdefault(
            label,
            {
                "trials": 0, "jobs": 1, "done": 0, "ok": 0, "failed": 0,
                "chunks": 0, "finished": False, "failed_indices": [],
            },
        )
        if name == "campaign.start":
            # A fresh campaign under a reused label restarts its bar.
            entry.update(
                trials=int(event.attrs.get("trials", 0)),
                jobs=int(event.attrs.get("jobs", 1)),
                done=0, ok=0, failed=0, chunks=0, finished=False,
                failed_indices=[],
            )
        elif name == "campaign.trial":
            entry["done"] += 1
            if event.attrs.get("ok"):
                entry["ok"] += 1
            else:
                entry["failed"] += 1
                entry["failed_indices"].append(
                    int(event.attrs.get("index", -1))
                )
                del entry["failed_indices"][:-20]
        elif name == "campaign.chunk":
            entry["chunks"] += 1
        elif name == "campaign.done":
            entry["finished"] = True

    # -- queries -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe dict of everything the dashboard renders."""
        with self._lock:
            decided = self.txns["committed"] + self.txns["aborted"]
            return {
                "events_seen": self.events_seen,
                "sim_time": self.last_time,
                "txns": dict(self.txns),
                "commit_rate": (
                    self.txns["committed"] / decided if decided else None
                ),
                "in_doubt": {
                    "opened": self.in_doubt_opened,
                    "closed": self.in_doubt_closed,
                    "open": len(self._open_windows),
                    "open_windows": [
                        {"txn": txn, "site": site, "since": since}
                        for (txn, site), since in sorted(
                            self._open_windows.items()
                        )
                    ],
                },
                "polyvalues": {
                    **self.polyvalues,
                    "current": max(
                        0,
                        self.polyvalues["installed"]
                        - self.polyvalues["resolved"],
                    ),
                },
                "sites": {
                    "crashes": self.crashes,
                    "recoveries": self.recoveries,
                },
                "drops": self.drops,
                "overload_blocks": self.overload_blocks,
                "overflows": self.overflows,
                "campaigns": {
                    label: dict(entry)
                    for label, entry in self.campaigns.items()
                },
                "recent": list(self._recent),
            }


class SSEBroker:
    """Fans bus events out to any number of SSE client queues.

    :meth:`on_event` is the bus subscriber; each connected client owns
    a bounded queue — when a client lags past the bound, the oldest
    frame is dropped so the emitting (simulation) thread never blocks.
    """

    def __init__(self, queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        self._lock = threading.Lock()
        self._clients: List["queue.Queue[str]"] = []
        self._queue_size = queue_size

    def on_event(self, event: ObsEvent) -> None:
        frame = json.dumps(event_to_dict(event), default=repr, sort_keys=True)
        with self._lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.put_nowait(frame)
            except queue.Full:
                try:  # shed the oldest frame, keep the newest
                    client.get_nowait()
                    client.put_nowait(frame)
                except (queue.Empty, queue.Full):
                    pass

    def attach(self) -> "queue.Queue[str]":
        client: "queue.Queue[str]" = queue.Queue(maxsize=self._queue_size)
        with self._lock:
            self._clients.append(client)
        return client

    def detach(self, client: "queue.Queue[str]") -> None:
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)

    @property
    def clients(self) -> int:
        with self._lock:
            return len(self._clients)


#: The dashboard page: one self-contained HTML document, no external
#: assets, consuming ``/state.json`` (poll) and ``/events`` (SSE).
DASH_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro — live campaign telemetry</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5rem; background: #111418; color: #d7dce1; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; color: #8ab4f8; }
  .grid { display: grid; grid-template-columns: repeat(auto-fit,
          minmax(240px, 1fr)); gap: 1rem; }
  .card { background: #1a1f26; border: 1px solid #2a313b;
          border-radius: 6px; padding: 0.75rem 1rem; }
  .big { font-size: 1.6rem; } .ok { color: #81c995; }
  .bad { color: #f28b82; } .dim { color: #7d8590; font-size: 0.8rem; }
  table { border-collapse: collapse; width: 100%; font-size: 0.8rem; }
  td, th { text-align: left; padding: 0.15rem 0.5rem 0.15rem 0; }
  #log { max-height: 16rem; overflow-y: auto; font-size: 0.75rem;
         white-space: pre; }
  progress { width: 100%; }
</style>
</head>
<body>
<h1>repro — live campaign telemetry</h1>
<div class="grid">
  <div class="card"><h2>transactions</h2>
    <div class="big"><span id="committed" class="ok">0</span> /
      <span id="aborted" class="bad">0</span></div>
    <div class="dim">committed / aborted · rate
      <span id="commit-rate">–</span> · submitted
      <span id="submitted">0</span></div></div>
  <div class="card"><h2>in-doubt windows</h2>
    <div class="big" id="indoubt-open">0</div>
    <div class="dim">open now · <span id="indoubt-opened">0</span> opened ·
      <span id="indoubt-closed">0</span> closed</div></div>
  <div class="card"><h2>polyvalues</h2>
    <div class="big" id="poly-current">0</div>
    <div class="dim"><span id="poly-installed">0</span> installed ·
      <span id="poly-resolved">0</span> resolved</div></div>
  <div class="card"><h2>faults</h2>
    <div class="dim">crashes <span id="crashes">0</span> ·
      drops <span id="drops">0</span> ·
      overload blocks <span id="overload">0</span> ·
      overflows <span id="overflows">0</span></div></div>
</div>
<h2>campaigns</h2>
<div id="campaigns" class="card">no campaign events yet</div>
<h2>event stream <span class="dim">(<span id="seen">0</span> events,
  sim t=<span id="sim-time">0</span>s)</span></h2>
<div id="log" class="card"></div>
<script>
  const $ = (id) => document.getElementById(id);
  function renderState(s) {
    $("committed").textContent = s.txns.committed;
    $("aborted").textContent = s.txns.aborted;
    $("submitted").textContent = s.txns.submitted;
    $("commit-rate").textContent =
      s.commit_rate === null ? "–" : (100 * s.commit_rate).toFixed(1) + "%";
    $("indoubt-open").textContent = s.in_doubt.open;
    $("indoubt-opened").textContent = s.in_doubt.opened;
    $("indoubt-closed").textContent = s.in_doubt.closed;
    $("poly-current").textContent = s.polyvalues.current;
    $("poly-installed").textContent = s.polyvalues.installed;
    $("poly-resolved").textContent = s.polyvalues.resolved;
    $("crashes").textContent = s.sites.crashes;
    $("drops").textContent = s.drops;
    $("overload").textContent = s.overload_blocks;
    $("overflows").textContent = s.overflows;
    $("seen").textContent = s.events_seen;
    $("sim-time").textContent = s.sim_time.toFixed(2);
    const labels = Object.keys(s.campaigns);
    if (labels.length) {
      $("campaigns").innerHTML = labels.map((label) => {
        const c = s.campaigns[label];
        const pct = c.trials ? Math.round(100 * c.done / c.trials) : 0;
        return `<div><b>${label}</b> — ${c.done}/${c.trials} trials ` +
          `(<span class="ok">${c.ok} ok</span>, ` +
          `<span class="bad">${c.failed} failed</span>, jobs=${c.jobs}` +
          `${c.finished ? ", finished" : ""})` +
          `<progress max="100" value="${pct}"></progress></div>`;
      }).join("");
    }
  }
  async function poll() {
    try {
      renderState(await (await fetch("state.json")).json());
    } catch (e) { /* server going away is fine */ }
    setTimeout(poll, 500);
  }
  poll();
  const log = $("log");
  const source = new EventSource("events");
  source.onmessage = (message) => {
    const atBottom =
      log.scrollHeight - log.scrollTop - log.clientHeight < 40;
    log.textContent += message.data + "\\n";
    const lines = log.textContent.split("\\n");
    if (lines.length > 400)
      log.textContent = lines.slice(-400).join("\\n");
    if (atBottom) log.scrollTop = log.scrollHeight;
  };
</script>
</body>
</html>
"""


class _DashHandler(BaseHTTPRequestHandler):
    """Routes: ``/``, ``/events`` (SSE), ``/state.json``, ``/healthz``."""

    server: "DashboardServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(
        self, body: bytes, content_type: str, status: int = 200
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/index.html"):
            self._send(DASH_PAGE.encode("utf-8"), "text/html; charset=utf-8")
        elif path == "/state.json":
            body = json.dumps(
                self.server.state.snapshot(), default=repr, sort_keys=True
            ).encode("utf-8")
            self._send(body, "application/json")
        elif path == "/healthz":
            self._send(b"ok\n", "text/plain")
        elif path == "/events":
            self._stream_events()
        else:
            self._send(b"not found\n", "text/plain", status=404)

    def _stream_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        client = self.server.broker.attach()
        try:
            # An immediate hello frame so probes (and the CI smoke
            # test) see an event without waiting for simulation output.
            hello = json.dumps(
                {"name": "dash.hello", "state": self.server.state.snapshot()},
                default=repr,
                sort_keys=True,
            )
            self.wfile.write(f"retry: 2000\ndata: {hello}\n\n".encode("utf-8"))
            self.wfile.flush()
            while not self.server.stopping.is_set():
                try:
                    frame = client.get(timeout=HEARTBEAT_SECONDS)
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                self.wfile.write(f"data: {frame}\n\n".encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away — routine
        finally:
            self.server.broker.detach(client)


class DashboardServer(ThreadingHTTPServer):
    """The dashboard HTTP server; one per ``serve-dash`` invocation.

    Owns the :class:`LiveState` aggregate and the :class:`SSEBroker`;
    anything that builds an observed system attaches
    ``server.subscribe(system.bus)`` and every event flows to both.
    ``port=0`` binds an ephemeral port (tests); the bound port is in
    ``server_address``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8537,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _DashHandler)
        self.state = LiveState()
        self.broker = SSEBroker()
        self.stopping = threading.Event()
        self.verbose = verbose

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}/"

    def subscribe(self, bus: EventBus) -> None:
        """Attach the aggregate and the SSE fan-out to *bus*."""
        bus.subscribe(self.state.on_event)
        bus.subscribe(self.broker.on_event)

    def start(self) -> threading.Thread:
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-dash",
            daemon=True,
        )
        thread.start()
        return thread

    def stop(self) -> None:
        self.stopping.set()
        self.shutdown()
        self.server_close()


# ----------------------------------------------------------------------
# The serve-dash driver
# ----------------------------------------------------------------------


def _drive_demo_scenario(
    server: DashboardServer, seed: int, stop: threading.Event
) -> None:
    """Loop the canned coordinator-crash scenario onto the dashboard.

    Each iteration builds a fresh seeded system, attaches the server's
    subscribers to its bus, and walks the demo failure story (traffic,
    crash mid-commit, in-doubt window, recovery, resolution).
    """
    from repro.txn.system import DistributedSystem
    from repro.txn.transaction import Transaction

    iteration = 0
    while not stop.is_set():
        system = DistributedSystem.build(
            sites=3,
            items={"alice": 100, "bob": 100, "carol": 100},
            seed=seed + iteration,
            jitter=0.0,
        )
        server.subscribe(system.bus)

        def bump(ctx):
            ctx.write("carol", ctx.read("carol") + 1)

        def transfer(ctx):
            a = ctx.read("alice")
            ctx.write("alice", a - 25)
            ctx.write("bob", ctx.read("bob") + 25)

        for _ in range(3):
            if stop.is_set():
                return
            system.submit(Transaction(body=bump, items=("carol",)))
            system.run_for(0.2)
            stop.wait(0.15)  # pace the stream for human eyes
        system.submit(Transaction(body=transfer, items=("alice", "bob")))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        stop.wait(0.5)
        system.recover_site("site-0")
        system.run_for(5.0)
        stop.wait(0.5)
        iteration += 1


def _drive_chaos_campaign(
    server: DashboardServer,
    seed: int,
    trials: int,
    jobs: Optional[int],
    stop: threading.Event,
) -> None:
    """Run chaos campaigns onto the dashboard until stopped."""
    from repro.chaos import run_campaign

    bus = EventBus()
    server.subscribe(bus)
    iteration = 0
    while not stop.is_set():
        run_campaign(
            campaign_seed=seed + iteration,
            trials=trials,
            smoke=True,
            jobs=jobs,
            bus=bus,
        )
        iteration += 1
        stop.wait(1.0)


def serve_dash(
    *,
    host: str = "127.0.0.1",
    port: int = 8537,
    scenario: str = "demo",
    seed: int = 7,
    trials: int = 2,
    jobs: Optional[int] = 1,
    duration: Optional[float] = None,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
    on_start: Optional[Callable[[DashboardServer], None]] = None,
) -> DashboardServer:
    """Run the dashboard plus a driving scenario until interrupted.

    *scenario* is ``demo`` (the looping coordinator-crash walkthrough)
    or ``chaos`` (looping smoke chaos campaigns with live ``campaign.*``
    progress).  *duration* bounds wall-clock seconds (None = until
    Ctrl-C); *ready*, when given, is set once the server is listening
    (tests); *on_start* is called with the listening server (the CLI
    prints the URL there).  Returns the (stopped) server.
    """
    if scenario not in ("demo", "chaos"):
        raise ValueError(f"unknown serve-dash scenario {scenario!r}")
    server = DashboardServer(host, port, verbose=verbose)
    server_thread = server.start()
    if on_start is not None:
        on_start(server)
    stop = threading.Event()
    if scenario == "demo":
        driver = threading.Thread(
            target=_drive_demo_scenario,
            args=(server, seed, stop),
            name="repro-dash-demo",
            daemon=True,
        )
    else:
        driver = threading.Thread(
            target=_drive_chaos_campaign,
            args=(server, seed, trials, jobs, stop),
            name="repro-dash-chaos",
            daemon=True,
        )
    driver.start()
    if ready is not None:
        ready.set()
    try:
        if duration is None:
            while server_thread.is_alive():
                server_thread.join(0.5)
        else:
            stop.wait(duration)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.stop()
        driver.join(timeout=5.0)
    return server
