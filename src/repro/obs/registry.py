"""The labeled metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns a set of named metric *families*; each
family carries a fixed tuple of label names and fans out to one child
series per distinct label-value combination (the Prometheus data model,
scaled down to what the simulator needs: no timestamps, no exemplars).

The conventions used throughout the package:

* family names are ``repro_``-prefixed snake_case with a unit suffix
  (``_total`` for counters, ``_seconds`` for durations);
* label names are drawn from ``site`` (which simulated site), ``outcome``
  (``committed``/``aborted``), ``workload`` (which generator produced
  the traffic), plus metric-specific ones (``event``, ``certainty``);
* histograms use fixed buckets chosen per metric at registration.

:func:`repro.obs.export.prometheus_text` renders a registry in the
Prometheus text exposition format.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Default duration buckets (seconds) — a LAN-ish commit protocol:
#: sub-10ms fast paths up through multi-second failure windows.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Raised on inconsistent metric registration or labeling."""


def _label_key(
    labelnames: Tuple[str, ...], labelvalues: Mapping[str, object]
) -> LabelValues:
    if set(labelvalues) != set(labelnames):
        raise MetricError(
            f"expected labels {labelnames}, got {tuple(sorted(labelvalues))}"
        )
    return tuple(str(labelvalues[name]) for name in labelnames)


class _Family:
    """Shared machinery: child management keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[LabelValues, object] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for one label-value combination (created on
        first use).  With no label names, ``labels()`` is the single
        unlabeled series."""
        key = _label_key(self.labelnames, labelvalues)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def children(self) -> List[Tuple[Dict[str, str], object]]:
        """Every child with its labels dict, in creation order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in self._children.items()
        ]


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up (inc by {amount})")
        self.value += amount


class Counter(_Family):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        """Increment one series (the unlabeled one by default)."""
        self.labels(**labelvalues).inc(amount)

    def total(self, **match: str) -> float:
        """The sum over children whose labels include *match*."""
        total = 0.0
        for labels, child in self.children():
            if all(labels.get(k) == v for k, v in match.items()):
                total += child.value
        return total

    @property
    def value(self) -> float:
        """Sum over all series (== the single series when unlabeled)."""
        return self.total()


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Family):
    """A value that can go up and down, optionally labeled."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labelvalues) -> None:
        self.labels(**labelvalues).set(value)

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        self.labels(**labelvalues).inc(amount)

    def dec(self, amount: float = 1.0, **labelvalues) -> None:
        self.labels(**labelvalues).dec(amount)

    def total(self, **match: str) -> float:
        total = 0.0
        for labels, child in self.children():
            if all(labels.get(k) == v for k, v in match.items()):
                total += child.value
        return total

    @property
    def value(self) -> float:
        return self.total()


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        #: Per-bucket (non-cumulative) counts; one extra slot for +Inf.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, fraction: float) -> Optional[float]:
        """Estimate the *fraction*-quantile by linear interpolation
        within the containing bucket (the Prometheus estimator)."""
        if not self.count:
            return None
        if not 0.0 <= fraction <= 1.0:
            raise MetricError(f"fraction must be in [0, 1], got {fraction}")
        rank = fraction * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self.counts):
            if running + count >= rank and count:
                within = (rank - running) / count
                return lower + (bound - lower) * within
            running += count
            lower = bound
        return self.buckets[-1] if self.buckets else None


class Histogram(_Family):
    """A fixed-bucket distribution, optionally labeled.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value (the implicit +Inf bucket catches the
    rest).  Bounds are fixed at registration so merged views and the
    Prometheus exposition stay consistent across label series.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise MetricError("histogram needs at least one bucket")
        if len(set(cleaned)) != len(cleaned):
            raise MetricError(f"duplicate histogram buckets: {buckets}")
        self.buckets = cleaned

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labelvalues) -> None:
        self.labels(**labelvalues).observe(value)

    def merged(self) -> _HistogramChild:
        """All label series folded into one distribution."""
        merged = _HistogramChild(self.buckets)
        for _, child in self.children():
            for index, count in enumerate(child.counts):
                merged.counts[index] += count
            merged.sum += child.sum
            merged.count += child.count
        return merged


class MetricsRegistry:
    """A named collection of metric families.

    Registration is idempotent: asking for an already-registered name
    with the same kind and label names returns the existing family, so
    independent components can share instruments; a mismatch raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _register(self, cls, name, help, labelnames, **kwargs) -> _Family:
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    def get(self, name: str) -> Optional[_Family]:
        """The family registered under *name*, or None."""
        return self._families.get(name)

    def families(self) -> List[_Family]:
        """Every registered family, in registration order."""
        return list(self._families.values())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
