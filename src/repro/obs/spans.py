"""The span tracer: per-transaction timelines stitched from bus events.

A :class:`SpanTracer` subscribes to an :class:`~repro.obs.events.EventBus`
and folds the protocol's structured events into a tree of
:class:`Span` records per transaction:

* one **root span** per transaction, from ``txn.submitted`` to the
  coordinator's decision (attrs record the outcome and, on abort, the
  reason);
* **coordinator phase** children ``phase:read`` and ``phase:stage``
  (the two sub-steps of the paper's compute phase, as the coordinator
  sees them);
* **per-site phase** children ``compute@<site>`` and ``wait@<site>``
  derived from the Figure-1 ``site.state`` transitions, closed with the
  trigger that ended them (``ready``, ``complete``, ``abort``,
  ``compute-timeout``, ``wait-timeout``);
* **in-doubt window** children ``in-doubt@<site>``, opened when a
  wait-phase timeout installs polyvalues and closed when that site
  learns the transaction's outcome — the §3.1 window the whole paper is
  about, now directly measurable per transaction and site;
* **overload window** children ``overload@<site>``, opened when the §6
  polyvalue budget makes a site fall back to blocking
  (``overload.block``) and closed when the outcome-query loop finally
  resolves the transaction at that site;
* a ``txn.overflow`` event (fan-out past ``max_alternatives``) is
  recorded on the root span as ``overflow=True`` plus the limit, so
  overflow aborts are distinguishable from ordinary ones.

An in-doubt window routinely outlives its root span (the coordinator's
decision — often a presumed abort after a crash — happens long before
the participant learns it), so child spans are *not* clipped to their
parent: a span tree is a set of intervals sharing a transaction, not a
strict containment hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import EventBus, ObsEvent


@dataclass
class Span:
    """One named interval of a transaction's life, possibly still open."""

    name: str
    txn: Optional[str]
    site: Optional[str]
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end (None while the span is open)."""
        return None if self.end is None else self.end - self.start

    def close(self, time: float, **attrs: Any) -> None:
        """End the span at *time* (idempotent; first close wins)."""
        if self.end is None:
            self.end = time
            self.attrs.update(attrs)

    def walk(self) -> List["Span"]:
        """This span and every descendant, depth-first."""
        found = [self]
        for child in self.children:
            found.extend(child.walk())
        return found

    def find(self, name_prefix: str) -> List["Span"]:
        """Descendant spans (including self) whose name starts so."""
        return [s for s in self.walk() if s.name.startswith(name_prefix)]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly rendering of the subtree."""
        return {
            "name": self.name,
            "txn": self.txn,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def describe(self) -> str:
        """One line: name, interval, duration, attributes."""
        if self.end is None:
            interval = f"{self.start * 1000:9.1f}ms → (open)"
        else:
            interval = (
                f"{self.start * 1000:9.1f}ms → {self.end * 1000:9.1f}ms "
                f"({self.duration * 1000:8.1f}ms)"
            )
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return f"{self.name:<22} {interval}" + (f"  {attrs}" if attrs else "")


class SpanTracer:
    """Builds span trees, live, from a bus subscription.

    Attach before submitting the transactions of interest; events for a
    transaction whose submission was not observed still get a root span
    (synthesised at the first event seen), so late attachment degrades
    gracefully rather than dropping data.
    """

    #: The event families the tracer consumes.
    PREFIXES = ("txn.", "phase.", "site.state", "indoubt.", "overload.")

    def __init__(self, bus: EventBus) -> None:
        self._bus = bus
        #: txn -> root span, in first-seen order.
        self.roots: Dict[str, Span] = {}
        self._open_phase: Dict[str, Span] = {}
        self._open_site: Dict[Tuple[str, str], Span] = {}
        self._open_indoubt: Dict[Tuple[str, str], Span] = {}
        self._open_overload: Dict[Tuple[str, str], Span] = {}
        bus.subscribe(self._on_event, prefix=self.PREFIXES)

    def detach(self) -> None:
        """Stop consuming events (built spans stay available)."""
        self._bus.unsubscribe(self._on_event)

    # ------------------------------------------------------------------
    # Event folding
    # ------------------------------------------------------------------

    def _root(self, txn: str, time: float, site: Optional[str] = None) -> Span:
        root = self.roots.get(txn)
        if root is None:
            root = Span(name=f"txn:{txn}", txn=txn, site=site, start=time)
            self.roots[txn] = root
        return root

    def _on_event(self, event: ObsEvent) -> None:
        name, txn = event.name, event.txn
        if txn is None:
            return
        if name == "txn.submitted":
            root = self._root(txn, event.time, event.site)
            root.attrs.setdefault("items", event.attrs.get("items"))
        elif name in ("txn.committed", "txn.aborted"):
            root = self._root(txn, event.time, event.site)
            outcome = "committed" if name == "txn.committed" else "aborted"
            attrs = {"outcome": outcome}
            if "latency" in event.attrs:
                attrs["latency"] = event.attrs["latency"]
            if event.attrs.get("reason"):
                attrs["reason"] = event.attrs["reason"]
            phase = self._open_phase.pop(txn, None)
            if phase is not None:
                phase.close(event.time)
            root.close(event.time, **attrs)
        elif name in ("phase.read.start", "phase.stage.start"):
            root = self._root(txn, event.time, event.site)
            previous = self._open_phase.pop(txn, None)
            if previous is not None:
                previous.close(event.time)
            label = "phase:read" if name == "phase.read.start" else "phase:stage"
            span = Span(name=label, txn=txn, site=event.site, start=event.time)
            root.children.append(span)
            self._open_phase[txn] = span
        elif name == "site.state":
            self._on_site_state(event)
        elif name == "indoubt.open":
            root = self._root(txn, event.time)
            span = Span(
                name=f"in-doubt@{event.site}",
                txn=txn,
                site=event.site,
                start=event.time,
                attrs={
                    "items": event.attrs.get("items"),
                    "live": event.attrs.get("live", True),
                },
            )
            root.children.append(span)
            self._open_indoubt[(txn, event.site or "")] = span
        elif name == "indoubt.close":
            span = self._open_indoubt.pop((txn, event.site or ""), None)
            if span is not None:
                span.close(event.time, committed=event.attrs.get("committed"))
        elif name == "txn.overflow":
            root = self._root(txn, event.time, event.site)
            root.attrs["overflow"] = True
            root.attrs["overflow_limit"] = event.attrs.get("limit")
        elif name == "overload.block":
            root = self._root(txn, event.time)
            span = Span(
                name=f"overload@{event.site}",
                txn=txn,
                site=event.site,
                start=event.time,
                attrs={
                    "budget": event.attrs.get("budget"),
                    "polyvalues": event.attrs.get("polyvalues"),
                },
            )
            root.children.append(span)
            self._open_overload[(txn, event.site or "")] = span

    def _on_site_state(self, event: ObsEvent) -> None:
        txn, site = event.txn, event.site or ""
        trigger = event.attrs.get("trigger")
        key = (txn, site)
        if trigger == "begin":
            root = self._root(txn, event.time)
            span = Span(
                name=f"compute@{site}", txn=txn, site=site, start=event.time
            )
            root.children.append(span)
            self._open_site[key] = span
        elif trigger == "ready":
            previous = self._open_site.pop(key, None)
            if previous is not None:
                previous.close(event.time, ended_by="ready")
            root = self._root(txn, event.time)
            span = Span(
                name=f"wait@{site}", txn=txn, site=site, start=event.time
            )
            root.children.append(span)
            self._open_site[key] = span
        else:  # complete / abort / compute-timeout / wait-timeout
            span = self._open_site.pop(key, None)
            if span is not None:
                span.close(event.time, ended_by=trigger)
            if trigger in ("complete", "abort"):
                # An overload-blocked participant sits in WAIT with no
                # transition of its own; the WAIT → IDLE resolution is
                # what ends its overload window.
                overload = self._open_overload.pop(key, None)
                if overload is not None:
                    overload.close(event.time, ended_by=trigger)

    # ------------------------------------------------------------------
    # Queries and rendering
    # ------------------------------------------------------------------

    def transactions(self) -> List[str]:
        """Every transaction with at least one span, in first-seen order."""
        return list(self.roots)

    def spans_for(self, txn: str) -> List[Span]:
        """All spans of one transaction, depth-first (empty if unknown)."""
        root = self.roots.get(txn)
        return root.walk() if root is not None else []

    def in_doubt_windows(self) -> List[Span]:
        """Every in-doubt window span observed, across transactions."""
        found: List[Span] = []
        for root in self.roots.values():
            found.extend(root.find("in-doubt@"))
        return found

    def overload_windows(self) -> List[Span]:
        """Every §6 overload-fallback window span, across transactions."""
        found: List[Span] = []
        for root in self.roots.values():
            found.extend(root.find("overload@"))
        return found

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-friendly dump of every span tree."""
        return [root.to_dict() for root in self.roots.values()]

    def render(self, txn: Optional[str] = None) -> str:
        """An indented text tree (one transaction, or all of them)."""
        if txn is not None:
            if txn not in self.roots:
                return f"(no spans recorded for txn {txn!r})"
            roots = [self.roots[txn]]
        else:
            roots = list(self.roots.values())
        if not roots:
            return "(no spans)"
        lines: List[str] = []
        for root in roots:
            lines.append(root.describe())
            for child in sorted(root.children, key=lambda s: s.start):
                lines.append("  " + child.describe())
            lines.append("")
        return "\n".join(lines).rstrip("\n")
