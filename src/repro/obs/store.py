"""The campaign results store: persistent, queryable telemetry.

Every campaign driver — ``repro check``, ``repro chaos``, ``repro
bench``, ``repro table2``, ``repro sweep`` — can record its runs into
one SQLite-backed :class:`CampaignStore`, so the evidence behind any
figure in any PR survives the run that produced it and is trendable
across PRs (``python -m repro history``).

The store is **append-only at run granularity**: a run, once finished,
is never rewritten — re-running the same campaign appends a new run
row, and the ``fingerprint`` column (a
:func:`~repro.parallel.artifacts.fingerprint` of the campaign's
canonical-JSON configuration) identifies runs of the *same* experiment
so trend queries compare like with like.

Schema (version :data:`SCHEMA_VERSION`):

* ``runs`` — one row per campaign invocation: command, label, campaign
  seed, worker count, canonical config JSON + fingerprint, start /
  finish wall-clock stamps, trial and failure counts, overall verdict;
* ``trials`` — one row per trial: index, derived seed, scenario,
  label, ok flag, and a JSON detail blob (per-trial headline stats);
* ``metrics`` — named scalar results of the run (guard ratios,
  throughput figures, violation counts — whatever the driver reports);
* ``verdicts`` — oracle verdicts, run- or trial-scoped;
* ``hists`` — fixed-bucket histogram rows (e.g. the in-doubt window
  distribution summed over a campaign's trials).

Schema changes are versioned: :data:`MIGRATIONS` carries the DDL that
lifts an older store in place, applied transactionally on open, and
:func:`migration_round_trip` proves the path works (CI runs it).

:class:`CampaignRecorder` is the bus subscriber every driver shares:
attach it to the campaign engine's :class:`~repro.obs.events.EventBus`
and the ``campaign.*`` progress events stream into the store as they
happen (one trial row per ``campaign.trial``, from whichever worker
process produced it); the driver then enriches the rows with seeds,
verdicts and metrics in its reduce step and calls :meth:`finish`.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import ReproError
from repro.obs.events import EventBus, ObsEvent
from repro.parallel.artifacts import canonical_json, fingerprint

#: Current schema version; stored in ``meta('schema_version')``.
SCHEMA_VERSION = 2

#: Default store location (overridable with ``REPRO_STORE`` or
#: ``--store``): one hidden directory per working tree, like
#: ``.git``/``.pytest_cache``.
DEFAULT_STORE_PATH = os.path.join(".repro", "campaigns.sqlite")


class StoreError(ReproError):
    """Raised on campaign-store misuse or corruption."""


def default_store_path(explicit: Optional[str] = None) -> str:
    """Resolve the store path: explicit arg > ``REPRO_STORE`` > default."""
    if explicit:
        return explicit
    return os.environ.get("REPRO_STORE") or DEFAULT_STORE_PATH


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------

#: Version-1 schema (the initial release of the store).  Kept verbatim
#: so :func:`migration_round_trip` can build a genuinely old store and
#: prove the migration path lifts it.
SCHEMA_V1 = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    started_at    REAL NOT NULL,
    finished_at   REAL,
    command       TEXT NOT NULL,
    label         TEXT NOT NULL DEFAULT '',
    campaign_seed INTEGER,
    jobs          INTEGER,
    config_json   TEXT NOT NULL DEFAULT '{}',
    trials        INTEGER NOT NULL DEFAULT 0,
    failures      INTEGER NOT NULL DEFAULT 0,
    ok            INTEGER,
    wall_seconds  REAL
);
CREATE TABLE IF NOT EXISTS trials (
    run_id      INTEGER NOT NULL REFERENCES runs(id),
    idx         INTEGER NOT NULL,
    seed        INTEGER,
    scenario    TEXT,
    label       TEXT,
    ok          INTEGER,
    detail_json TEXT,
    PRIMARY KEY (run_id, idx)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    name   TEXT NOT NULL,
    value  REAL,
    unit   TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS verdicts (
    run_id    INTEGER NOT NULL REFERENCES runs(id),
    trial_idx INTEGER,
    phase     TEXT NOT NULL DEFAULT '',
    oracle    TEXT NOT NULL,
    ok        INTEGER NOT NULL,
    details   TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_runs_command ON runs(command, started_at);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics(name);
"""

#: DDL lifting version N to N+1, keyed by N.  Applied in order,
#: transactionally, when an older store is opened.
MIGRATIONS: Dict[int, Sequence[str]] = {
    # v1 -> v2: the config fingerprint column (dedup / trend matching)
    # and the histogram table (in-doubt window distributions).
    1: (
        "ALTER TABLE runs ADD COLUMN fingerprint TEXT NOT NULL DEFAULT ''",
        """
        CREATE TABLE IF NOT EXISTS hists (
            run_id INTEGER NOT NULL REFERENCES runs(id),
            name   TEXT NOT NULL,
            le     REAL NOT NULL,
            count  INTEGER NOT NULL,
            PRIMARY KEY (run_id, name, le)
        )
        """,
        "CREATE INDEX IF NOT EXISTS idx_runs_fp ON runs(fingerprint)",
    ),
}


@dataclass(frozen=True)
class RunRecord:
    """One campaign run, as stored."""

    id: int
    started_at: float
    finished_at: Optional[float]
    command: str
    label: str
    campaign_seed: Optional[int]
    jobs: Optional[int]
    config: Dict[str, Any]
    fingerprint: str
    trials: int
    failures: int
    ok: Optional[bool]
    wall_seconds: Optional[float]

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "command": self.command,
            "label": self.label,
            "campaign_seed": self.campaign_seed,
            "jobs": self.jobs,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "trials": self.trials,
            "failures": self.failures,
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
        }


@dataclass(frozen=True)
class TrialRecord:
    """One trial row of a run."""

    run_id: int
    index: int
    seed: Optional[int]
    scenario: Optional[str]
    label: Optional[str]
    ok: Optional[bool]
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class VerdictRecord:
    """One oracle verdict row of a run."""

    run_id: int
    trial_index: Optional[int]
    phase: str
    oracle: str
    ok: bool
    details: str


class CampaignStore:
    """The SQLite-backed campaign results store.

    ``path=":memory:"`` gives an ephemeral store (tests); any other
    path is created (directories included) on first open, and an
    existing store is schema-migrated in place if it is older than
    :data:`SCHEMA_VERSION`.  All writes are committed immediately —
    a crashed campaign leaves its unfinished run row visible, which is
    itself evidence.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        if path != ":memory:":
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
        # The dashboard and recorder may touch the store from a
        # background thread; one lock serialises every statement.
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        if path != ":memory:":
            # The recorder streams one small commit per trial; with the
            # default rollback journal each commit creates and deletes
            # a journal file, which dwarfs sub-millisecond trials.  WAL
            # with synchronous=NORMAL keeps commits append-only (the
            # obs overhead guard pins the recorder under 5%) while a
            # crash still loses at most the final WAL flush — fine for
            # evidence that the reduce step rewrites anyway.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._ensure_schema()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- schema --------------------------------------------------------

    def _ensure_schema(self) -> None:
        with self._lock, self._conn:
            version = self._stored_version()
            if version is None:
                # Fresh database: create v1 then roll migrations
                # forward, so there is exactly one creation path.
                self._conn.executescript(SCHEMA_V1)
                version = 1
            if version > SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.path!r} is schema v{version}, newer "
                    f"than this build (v{SCHEMA_VERSION}); refusing to "
                    "touch it"
                )
            while version < SCHEMA_VERSION:
                for statement in MIGRATIONS[version]:
                    self._conn.execute(statement)
                version += 1
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(version),),
            )

    def _stored_version(self) -> Optional[int]:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            return None  # no meta table: a fresh database
        if row is None:
            return 1  # tables exist but the stamp is missing: oldest
        return int(row["value"])

    @property
    def schema_version(self) -> int:
        with self._lock:
            return self._stored_version() or 0

    # -- writes --------------------------------------------------------

    def begin_run(
        self,
        command: str,
        *,
        label: str = "",
        campaign_seed: Optional[int] = None,
        jobs: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
        started_at: Optional[float] = None,
    ) -> int:
        """Append a new (unfinished) run row; returns its id.

        *config* is stored as canonical JSON and fingerprinted, so
        identical experiment configurations share a fingerprint across
        runs and PRs.
        """
        config = dict(config or {})
        blob = canonical_json(config).rstrip("\n")
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO runs (started_at, command, label, "
                "campaign_seed, jobs, config_json, fingerprint) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    time.time() if started_at is None else started_at,
                    command,
                    label,
                    campaign_seed,
                    jobs,
                    blob,
                    fingerprint(config),
                ),
            )
            return int(cursor.lastrowid)

    def record_trial(
        self,
        run_id: int,
        index: int,
        *,
        seed: Optional[int] = None,
        scenario: Optional[str] = None,
        label: Optional[str] = None,
        ok: Optional[bool] = None,
        detail: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Insert or enrich one trial row.

        Streaming (the recorder) writes ``(index, ok)`` as events
        arrive; the driver's reduce step calls again with seeds and
        details — non-None fields overwrite, None fields are kept.
        """
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO trials (run_id, idx, seed, scenario, label, "
                "ok, detail_json) VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(run_id, idx) DO UPDATE SET "
                "seed = COALESCE(excluded.seed, trials.seed), "
                "scenario = COALESCE(excluded.scenario, trials.scenario), "
                "label = COALESCE(excluded.label, trials.label), "
                "ok = COALESCE(excluded.ok, trials.ok), "
                "detail_json = COALESCE(excluded.detail_json, "
                "trials.detail_json)",
                (
                    run_id,
                    index,
                    seed,
                    scenario,
                    label,
                    None if ok is None else int(ok),
                    None
                    if detail is None
                    else json.dumps(dict(detail), sort_keys=True),
                ),
            )

    def record_metric(
        self, run_id: int, name: str, value: float, unit: str = ""
    ) -> None:
        """Record (or overwrite, within the run) one scalar result."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO metrics (run_id, name, value, unit) "
                "VALUES (?, ?, ?, ?) "
                "ON CONFLICT(run_id, name) DO UPDATE SET "
                "value = excluded.value, unit = excluded.unit",
                (run_id, name, float(value), unit),
            )

    def record_metrics(
        self, run_id: int, values: Mapping[str, Any], unit: str = ""
    ) -> None:
        """Record every numeric entry of *values* (bools count as 0/1)."""
        for name, value in values.items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)) and math.isfinite(value):
                self.record_metric(run_id, name, value, unit)

    def record_verdict(
        self,
        run_id: int,
        oracle: str,
        ok: bool,
        *,
        trial_index: Optional[int] = None,
        phase: str = "",
        details: str = "",
    ) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO verdicts (run_id, trial_idx, phase, oracle, "
                "ok, details) VALUES (?, ?, ?, ?, ?, ?)",
                (run_id, trial_index, phase, oracle, int(ok), details),
            )

    def record_histogram(
        self,
        run_id: int,
        name: str,
        pairs: Iterable[Tuple[float, int]],
    ) -> None:
        """Record per-bucket (upper-bound, count) rows (non-cumulative).

        ``math.inf`` upper bounds round-trip through SQLite REALs.
        """
        with self._lock, self._conn:
            for bound, count in pairs:
                self._conn.execute(
                    "INSERT INTO hists (run_id, name, le, count) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(run_id, name, le) DO UPDATE SET "
                    "count = excluded.count",
                    (run_id, name, float(bound), int(count)),
                )

    def finish_run(
        self,
        run_id: int,
        *,
        ok: bool,
        trials: Optional[int] = None,
        failures: Optional[int] = None,
        wall_seconds: Optional[float] = None,
        finished_at: Optional[float] = None,
    ) -> None:
        """Stamp the run finished.  Trial/failure counts default to
        what the trial rows say."""
        with self._lock, self._conn:
            if trials is None:
                trials = self._conn.execute(
                    "SELECT COUNT(*) FROM trials WHERE run_id = ?", (run_id,)
                ).fetchone()[0]
            if failures is None:
                failures = self._conn.execute(
                    "SELECT COUNT(*) FROM trials WHERE run_id = ? AND ok = 0",
                    (run_id,),
                ).fetchone()[0]
            self._conn.execute(
                "UPDATE runs SET finished_at = ?, ok = ?, trials = ?, "
                "failures = ?, wall_seconds = ? WHERE id = ?",
                (
                    time.time() if finished_at is None else finished_at,
                    int(ok),
                    trials,
                    failures,
                    wall_seconds,
                    run_id,
                ),
            )

    # -- queries -------------------------------------------------------

    @staticmethod
    def _run_from_row(row: sqlite3.Row) -> RunRecord:
        return RunRecord(
            id=row["id"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            command=row["command"],
            label=row["label"],
            campaign_seed=row["campaign_seed"],
            jobs=row["jobs"],
            config=json.loads(row["config_json"] or "{}"),
            fingerprint=row["fingerprint"],
            trials=row["trials"],
            failures=row["failures"],
            ok=None if row["ok"] is None else bool(row["ok"]),
            wall_seconds=row["wall_seconds"],
        )

    def runs(
        self,
        *,
        command: Optional[str] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Runs, oldest first, optionally filtered by command / start
        time; *limit* keeps the newest N."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if since is not None:
            clauses.append("started_at >= ?")
            params.append(since)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [self._run_from_row(row) for row in reversed(rows)]

    def run(self, run_id: int) -> RunRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise StoreError(f"no run {run_id} in {self.path!r}")
        return self._run_from_row(row)

    def latest_run(
        self,
        command: Optional[str] = None,
        *,
        before: Optional[int] = None,
        finished_only: bool = True,
        config_fingerprint: Optional[str] = None,
    ) -> Optional[RunRecord]:
        """The newest matching run (e.g. the bench baseline), or None.

        *before* excludes run ids >= it (so a freshly-appended run can
        look up its own predecessor); *config_fingerprint* restricts to
        runs of the identical experiment configuration.
        """
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if before is not None:
            clauses.append("id < ?")
            params.append(before)
        if finished_only:
            clauses.append("finished_at IS NOT NULL")
        if config_fingerprint is not None:
            clauses.append("fingerprint = ?")
            params.append(config_fingerprint)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC LIMIT 1"
        with self._lock:
            row = self._conn.execute(query, params).fetchone()
        return None if row is None else self._run_from_row(row)

    def trials(self, run_id: int) -> List[TrialRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM trials WHERE run_id = ? ORDER BY idx",
                (run_id,),
            ).fetchall()
        return [
            TrialRecord(
                run_id=row["run_id"],
                index=row["idx"],
                seed=row["seed"],
                scenario=row["scenario"],
                label=row["label"],
                ok=None if row["ok"] is None else bool(row["ok"]),
                detail=json.loads(row["detail_json"] or "{}"),
            )
            for row in rows
        ]

    def metrics(self, run_id: int) -> Dict[str, float]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, value FROM metrics WHERE run_id = ? "
                "ORDER BY name",
                (run_id,),
            ).fetchall()
        return {row["name"]: row["value"] for row in rows}

    def verdicts(self, run_id: int) -> List[VerdictRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM verdicts WHERE run_id = ? ORDER BY rowid",
                (run_id,),
            ).fetchall()
        return [
            VerdictRecord(
                run_id=row["run_id"],
                trial_index=row["trial_idx"],
                phase=row["phase"],
                oracle=row["oracle"],
                ok=bool(row["ok"]),
                details=row["details"],
            )
            for row in rows
        ]

    def histogram(self, run_id: int, name: str) -> List[Tuple[float, int]]:
        """(upper-bound, count) pairs, ascending (non-cumulative)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT le, count FROM hists WHERE run_id = ? AND name = ? "
                "ORDER BY le",
                (run_id, name),
            ).fetchall()
        return [(row["le"], row["count"]) for row in rows]

    def histogram_names(self, run_id: int) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT name FROM hists WHERE run_id = ? "
                "ORDER BY name",
                (run_id,),
            ).fetchall()
        return [row["name"] for row in rows]

    def metric_history(
        self,
        name: str,
        *,
        command: Optional[str] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[RunRecord, float]]:
        """Every recorded value of metric *name*, oldest run first.

        The raw material of a trend query: ``repro history --metric``
        renders this with consecutive deltas.
        """
        query = (
            "SELECT runs.*, metrics.value AS metric_value FROM metrics "
            "JOIN runs ON runs.id = metrics.run_id WHERE metrics.name = ?"
        )
        params: List[Any] = [name]
        if command is not None:
            query += " AND runs.command = ?"
            params.append(command)
        if since is not None:
            query += " AND runs.started_at >= ?"
            params.append(since)
        query += " ORDER BY runs.id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [
            (self._run_from_row(row), row["metric_value"])
            for row in reversed(rows)
        ]

    def metric_names(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT name FROM metrics ORDER BY name"
            ).fetchall()
        return [row["name"] for row in rows]


# ----------------------------------------------------------------------
# The shared bus subscriber
# ----------------------------------------------------------------------


class CampaignRecorder:
    """Streams ``campaign.*`` bus events into a :class:`CampaignStore`.

    One recorder covers one run: it appends the run row at
    construction, writes a trial row the moment each ``campaign.trial``
    event arrives (workers stream results to the parent as they
    complete, so the store tracks live progress), and the driver calls
    :meth:`finish` with the campaign's verdict once the reduce step —
    which may also enrich trials and record metrics / verdicts /
    histograms through the ``store`` attribute — is done.
    """

    def __init__(
        self,
        store: CampaignStore,
        *,
        command: str,
        label: str = "",
        campaign_seed: Optional[int] = None,
        jobs: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.store = store
        self.run_id = store.begin_run(
            command,
            label=label,
            campaign_seed=campaign_seed,
            jobs=jobs,
            config=config,
        )
        self._started = time.perf_counter()
        self._finished = False
        self._bus = bus
        if bus is not None:
            bus.subscribe(self._on_event, prefix="campaign.")

    # -- bus side ------------------------------------------------------

    def _on_event(self, event: ObsEvent) -> None:
        if event.name == "campaign.trial":
            error = event.attrs.get("error")
            self.store.record_trial(
                self.run_id,
                int(event.attrs.get("index", -1)),
                ok=bool(event.attrs.get("ok", False)),
                label=event.attrs.get("label"),
                detail=None if error is None else {"error": str(error)},
            )

    # -- driver side ---------------------------------------------------

    def expect_trials(self, infos: Iterable[Mapping[str, Any]]) -> None:
        """Pre-register trial metadata (index, seed, scenario, label)
        before the campaign starts, so even trials whose worker dies
        leave their identity in the store."""
        for info in infos:
            self.store.record_trial(
                self.run_id,
                int(info["index"]),
                seed=info.get("seed"),
                scenario=info.get("scenario"),
                label=info.get("label"),
            )

    def finish(
        self, *, ok: bool, wall_seconds: Optional[float] = None
    ) -> None:
        """Stamp the run finished and detach from the bus (idempotent)."""
        if self._finished:
            return
        self._finished = True
        if wall_seconds is None:
            wall_seconds = time.perf_counter() - self._started
        self.store.finish_run(
            self.run_id, ok=ok, wall_seconds=wall_seconds
        )
        self.detach()

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None


# ----------------------------------------------------------------------
# Driver-report bridges: reduce output -> store rows
# ----------------------------------------------------------------------

#: The histogram name campaign in-doubt distributions are stored under
#: (matching the :class:`~repro.metrics.collector.MetricsCollector`
#: family they are summed from).
IN_DOUBT_HIST = "repro_in_doubt_window_seconds"


def record_exploration_report(
    store: CampaignStore, run_id: int, report: Any
) -> None:
    """Enrich a run with an explorer/chaos report's reduce output.

    Works for both :class:`~repro.check.explorer.ExplorerReport` and
    :class:`~repro.chaos.ChaosReport` (same result shape).  Writes, per
    completed trial: the full trial row (seed, scenario, label, ok,
    headline stats); a verdict row per oracle violation; and sums every
    trial's in-doubt window histogram into the run-level
    :data:`IN_DOUBT_HIST` distribution.  Run-level metrics carry the
    exact numbers the report's ``summary_lines`` print — ``repro
    history --run`` reproduces the campaign's stdout from the store.
    """
    agg_hist: Dict[float, int] = {}
    oracle_ok: Dict[str, bool] = {}
    totals: Dict[str, float] = {}
    checkpoints = 0
    events = 0
    for result in report.results:
        index = -1 if result.task_index is None else result.task_index
        detail: Dict[str, Any] = {
            "checkpoints": result.quiescent_checkpoints,
            "events": result.events_processed,
            "converged": result.converged,
        }
        detail.update(result.stats)
        if result.artifact_path:
            detail["artifact"] = result.artifact_path
        store.record_trial(
            run_id,
            index,
            seed=result.schedule.seed,
            scenario=result.schedule.scenario,
            label=result.schedule.label,
            ok=result.ok,
            detail=detail,
        )
        for violation in result.violations:
            store.record_verdict(
                run_id,
                violation.oracle,
                False,
                trial_index=index,
                phase=violation.phase,
                details=violation.details,
            )
        for verdict in result.final_verdicts:
            oracle_ok[verdict.oracle] = (
                oracle_ok.get(verdict.oracle, True) and verdict.ok
            )
        for bound, count in result.in_doubt_hist:
            agg_hist[bound] = agg_hist.get(bound, 0) + count
        checkpoints += result.quiescent_checkpoints
        events += result.events_processed
        for name, value in result.stats.items():
            # Counts sum meaningfully across trials; rates do not.
            if name.endswith(("_rate", "_fraction")):
                continue
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)) and math.isfinite(value):
                totals[name] = totals.get(name, 0.0) + value
    for oracle, ok in sorted(oracle_ok.items()):
        store.record_verdict(
            run_id,
            oracle,
            ok,
            phase="converged",
            details=f"aggregate over {len(report.results)} trial(s)",
        )
    if agg_hist:
        store.record_histogram(
            run_id, IN_DOUBT_HIST, sorted(agg_hist.items())
        )
    metrics: Dict[str, Any] = {
        "schedules": report.schedules_run,
        "violations": len(report.violations),
        "failed_trials": len(report.failed_trials),
        "quiescent_checkpoints": checkpoints,
        "events": events,
        "wall_seconds": report.wall_seconds,
    }
    total_stats = getattr(report, "total_stats", None)
    if callable(total_stats):  # chaos: gray/fail-stop action counts
        metrics.update(total_stats())
    store.record_metrics(run_id, metrics)
    store.record_metrics(
        run_id, {f"sum.{name}": value for name, value in totals.items()}
    )


def record_bench_report(
    store: CampaignStore, run_id: int, payload: Mapping[str, Any]
) -> None:
    """Record a ``run_benchmarks`` payload: every result as a metric,
    every guard ratio under a ``guard.`` prefix, and the suite's three
    embedded correctness verdicts as verdict rows."""
    store.record_metrics(run_id, payload.get("results", {}))
    store.record_metrics(
        run_id,
        {
            f"guard.{name}": value
            for name, value in payload.get("guards", {}).items()
        },
        unit="guard",
    )
    results = payload.get("results", {})
    for oracle, key in (
        ("explorer", "explorer_ok"),
        ("gray-convergence", "gray_oracles_ok"),
        ("parallel-determinism", "parallel_bitwise_identical"),
    ):
        if key in results:
            store.record_verdict(
                run_id, oracle, bool(results[key]), phase="bench"
            )


def bench_baseline_from_run(
    store: CampaignStore, run: RunRecord
) -> Dict[str, Any]:
    """Reconstruct a :func:`repro.bench.check_regression` baseline
    payload from a stored bench run (the ``--check-against <store>``
    path: compare against history, not a committed file)."""
    guards: Dict[str, float] = {}
    results: Dict[str, float] = {}
    for name, value in store.metrics(run.id).items():
        if name.startswith("guard."):
            guards[name[len("guard."):]] = value
        else:
            results[name] = value
    return {
        "schema": 1,
        "mode": run.config.get("mode", ""),
        "run_id": run.id,
        "guards": guards,
        "results": results,
    }


def record_table2(
    store: CampaignStore, run_id: int, rows: Sequence[Any],
    results: Sequence[Any],
) -> None:
    """Record the Table-2 campaign: one trial per row, the simulated
    and model polyvalue counts as per-row metrics."""
    for index, (row, result) in enumerate(zip(rows, results)):
        params = row.params
        store.record_trial(
            run_id,
            index,
            seed=result.seed,
            scenario="table2",
            label=f"U={params.U:g},F={params.F:g},R={params.R:g}",
            ok=True,
            detail={
                "sim_polyvalues": result.mean_polyvalues,
                "model_polyvalues": row.model_value,
                "paper_actual": row.paper_actual,
                "paper_predicted": row.paper_predicted,
                "transactions": result.transactions,
                "failures": result.failures,
                "polytransactions": result.polytransactions,
            },
        )
        store.record_metric(
            run_id, f"row{index}.sim_polyvalues", result.mean_polyvalues
        )
        store.record_metric(
            run_id, f"row{index}.model_polyvalues", row.model_value
        )
    store.record_metric(run_id, "rows", len(rows))


def record_sweep(
    store: CampaignStore, run_id: int, points: Sequence[Any]
) -> None:
    """Record a parameter sweep: one trial per point, model/simulated
    steady states as per-point metrics keyed by the swept value."""
    for index, point in enumerate(points):
        detail: Dict[str, Any] = {
            "parameter": point.parameter,
            "value": point.value,
            "stable": point.stable,
        }
        if point.model is not None:
            detail["model_polyvalues"] = point.model
            store.record_metric(
                run_id, f"model@{point.value:g}", point.model
            )
        if point.simulated is not None:
            detail["sim_polyvalues"] = point.simulated
            store.record_metric(
                run_id, f"sim@{point.value:g}", point.simulated
            )
        store.record_trial(
            run_id,
            index,
            scenario=f"sweep:{point.parameter}",
            label=f"{point.parameter}={point.value:g}",
            ok=point.stable,
            detail=detail,
        )
    store.record_metric(run_id, "points", len(points))


# ----------------------------------------------------------------------
# Migration self-check
# ----------------------------------------------------------------------


def migration_round_trip(path: Optional[str] = None) -> Tuple[int, int]:
    """Prove the v1 -> current migration path on a real file.

    Builds a genuine version-1 store (the frozen :data:`SCHEMA_V1`
    DDL), writes a run + trial + metric through raw SQL, reopens it
    with :class:`CampaignStore` (triggering the migrations), and
    asserts the old data is still there and the new surface works.
    Returns ``(from_version, to_version)``; raises on any failure.
    CI runs this as the store schema-migration round-trip check.
    """
    own_tempdir = None
    if path is None:
        own_tempdir = tempfile.mkdtemp(prefix="repro-store-migrate-")
        path = os.path.join(own_tempdir, "v1.sqlite")
    try:
        conn = sqlite3.connect(path)
        with conn:
            conn.executescript(SCHEMA_V1)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', '1')"
            )
            conn.execute(
                "INSERT INTO runs (started_at, finished_at, command, label, "
                "campaign_seed, jobs, trials, failures, ok, wall_seconds) "
                "VALUES (1.0, 2.0, 'chaos', 'legacy', 7, 2, 3, 1, 0, 1.5)"
            )
            conn.execute(
                "INSERT INTO trials (run_id, idx, seed, ok) "
                "VALUES (1, 0, 1234, 1)"
            )
            conn.execute(
                "INSERT INTO metrics (run_id, name, value) "
                "VALUES (1, 'violations', 1.0)"
            )
        conn.close()
        store = CampaignStore(path)
        try:
            to_version = store.schema_version
            if to_version != SCHEMA_VERSION:
                raise StoreError(
                    f"migration stopped at v{to_version}, "
                    f"expected v{SCHEMA_VERSION}"
                )
            legacy = store.run(1)
            if (
                legacy.command != "chaos"
                or legacy.trials != 3
                or legacy.failures != 1
                or legacy.fingerprint != ""
            ):
                raise StoreError(f"legacy run corrupted by migration: {legacy}")
            if store.metrics(1) != {"violations": 1.0}:
                raise StoreError("legacy metrics corrupted by migration")
            if store.trials(1)[0].seed != 1234:
                raise StoreError("legacy trial corrupted by migration")
            # The migrated surface must accept current-schema writes.
            run_id = store.begin_run("bench", config={"smoke": True})
            store.record_histogram(
                run_id, "in_doubt_window_seconds", [(0.5, 2), (math.inf, 1)]
            )
            if store.histogram(run_id, "in_doubt_window_seconds") != [
                (0.5, 2),
                (math.inf, 1),
            ]:
                raise StoreError("post-migration histogram write failed")
        finally:
            store.close()
        return (1, SCHEMA_VERSION)
    finally:
        if own_tempdir is not None:
            try:
                os.remove(path)
                os.rmdir(own_tempdir)
            except OSError:
                pass
