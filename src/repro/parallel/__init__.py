"""repro.parallel — the multi-core campaign engine.

Campaigns (explorer schedules, chaos walks, Monte-Carlo runs, bench
sweeps) are batches of seeded, shared-nothing trials.  This package
holds the three pieces every campaign driver now shares:

* :mod:`repro.parallel.pool` — the process-pool engine
  (:func:`run_trials`): deterministic chunked sharding, crash-isolated
  workers, index-merged results, streamed ``campaign.*`` progress
  events;
* :mod:`repro.parallel.seeds` — the single
  ``(campaign_seed, trial_index)`` seed derivation
  (:func:`trial_seed`) that makes serial and parallel runs
  bit-identical;
* :mod:`repro.parallel.artifacts` — the one artifact/report writer the
  reduce steps use.

See ``docs/performance.md`` ("Parallel campaigns").
"""

from repro.parallel.artifacts import (
    canonical_json,
    fingerprint,
    write_json,
    write_violation_artifact,
)
from repro.parallel.pool import (
    CampaignOutcome,
    TrialFailure,
    default_chunk_size,
    default_jobs,
    run_trials,
)
from repro.parallel.seeds import trial_seed, trial_seeds

__all__ = [
    "CampaignOutcome",
    "TrialFailure",
    "canonical_json",
    "default_chunk_size",
    "default_jobs",
    "fingerprint",
    "run_trials",
    "trial_seed",
    "trial_seeds",
    "write_json",
    "write_violation_artifact",
]
