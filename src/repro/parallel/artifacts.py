"""Shared artifact writing for every campaign reduce step.

The explorer, the chaos campaign and the bench suite each grew a
near-identical "dump canonical JSON with a crc32 fingerprint in the
file name" helper; this module is the one implementation all three now
use, and the one the parallel reduce step calls when it writes the
violation artifacts its workers reported back.

Two invariants the replay machinery depends on:

* **canonical JSON** — ``sort_keys=True``, two-space indent, trailing
  newline — so artifacts diff cleanly and fingerprints are stable;
* **fingerprint excludes the violations** — the fingerprint identifies
  the *input* (schedule, and for chaos the profile), so a re-run of the
  same input overwrites the same file instead of accumulating
  duplicates.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional

#: Duck type: anything with ``scenario``, ``seed`` and ``to_dict()``
#: (the explorer's ``Schedule``); kept structural to avoid importing
#: ``repro.check`` from this layer.


def canonical_json(payload: Any) -> str:
    """The canonical rendering every artifact and report uses."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def fingerprint(payload: Any) -> str:
    """A short stable id of *payload* (crc32 of its canonical form)."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return f"{zlib.crc32(blob):08x}"


def write_json(payload: Any, path: str) -> str:
    """Write *payload* as stable, diff-friendly JSON; returns *path*."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(payload))
    return path


def violation_dicts(violations: List[Any]) -> List[Dict[str, str]]:
    """Serialise explorer ``Violation`` records for an artifact."""
    return [
        {"phase": v.phase, "oracle": v.oracle, "details": v.details}
        for v in violations
    ]


def write_violation_artifact(
    schedule: Any,
    violations: List[Any],
    artifact_dir: str,
    *,
    prefix: str = "violation",
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write one replayable violation artifact; returns its path.

    The payload is ``schedule.to_dict()`` plus *extra* (the chaos
    campaign passes ``{"profile": ...}``), fingerprinted **before** the
    violations are appended, then written as
    ``{prefix}-{scenario}-seed{seed}-{fingerprint}.json``.
    """
    os.makedirs(artifact_dir, exist_ok=True)
    payload = schedule.to_dict()
    if extra:
        payload.update(extra)
    stamp = fingerprint(payload)
    payload["violations"] = violation_dicts(violations)
    name = f"{prefix}-{schedule.scenario}-seed{schedule.seed}-{stamp}.json"
    return write_json(payload, os.path.join(artifact_dir, name))
