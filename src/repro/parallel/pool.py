"""The process-pool campaign engine: multi-core seeded-trial execution.

Every campaign in this repo — explorer schedules, chaos walks,
Monte-Carlo runs, bench sweeps — is a batch of *shared-nothing* trials:
each trial is a pure function of its (picklable) task descriptor, and
the campaign result is a typed reduce over the per-trial results.  That
shape is exactly what a process pool parallelises safely, and
:func:`run_trials` is the one engine all four drivers use.

Design points:

* **Deterministic sharding** — the task list is split into contiguous,
  index-tagged chunks; results are merged back *by task index*, so the
  merged output is identical regardless of worker count, scheduling or
  completion order.  Combined with :mod:`repro.parallel.seeds` (a
  trial's seed depends only on its campaign seed and index), per-seed
  results are bit-identical between ``jobs=1`` and ``jobs=N``.
* **The serial path is really serial** — ``jobs=1`` runs every trial
  in-process, in order, with no multiprocessing machinery at all: the
  exact code path the drivers always had.
* **Crash isolation** — each chunk runs in its own worker process.  A
  worker that dies (segfault, OOM-kill, ``SIGKILL``) loses only the
  not-yet-reported trials of its chunk: those are marked failed, the
  slot is refilled with a fresh worker for the next chunk, and the
  campaign completes instead of hanging.  Trials the worker streamed
  back before dying are kept — they finished.
* **Streaming progress** — workers send each trial result through a
  pipe as it completes; the parent republishes ``campaign.*`` events on
  an optional :class:`~repro.obs.events.EventBus`, so campaign progress
  rides the same observability spine as everything else; failing
  ``campaign.trial`` events carry an ``error`` attr, so subscribers
  like :class:`~repro.obs.store.CampaignRecorder` capture per-trial
  failure detail the moment it happens.  (Progress
  *event order* across workers is wall-clock-dependent; the merged
  *results* are not.)

Failure taxonomy: an exception raised *by the worker function* fails
that one trial (the worker carries on); a worker *process* dying fails
the unreported remainder of its chunk.  Neither is retried — retrying
would make campaign output depend on wall-clock failure timing.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import SimulationError
from repro.obs.events import EventBus

#: Start method: ``fork`` where the platform offers it (cheap, inherits
#: the warmed interpreter), the platform default otherwise.  Module
#: constant so tests can pin it.
START_METHOD: Optional[str] = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
)


def default_jobs() -> int:
    """Worker count when the caller does not choose: every usable core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without CPU affinity
        return max(1, os.cpu_count() or 1)


def default_chunk_size(total: int, jobs: int) -> int:
    """Tasks per chunk: ~4 chunks per worker.

    Chunking amortises process startup over several trials while
    keeping the crash blast radius (the trials one dead worker can take
    down) and the load-balance granularity bounded.
    """
    if total <= 0:
        return 1
    return max(1, math.ceil(total / (max(1, jobs) * 4)))


@dataclass(frozen=True)
class TrialFailure:
    """One trial that produced no result, and why."""

    index: int
    error: str

    def __str__(self) -> str:
        return f"trial {self.index}: {self.error}"


@dataclass
class CampaignOutcome:
    """The typed reduce input: per-trial results in task order.

    ``results[i]`` is trial *i*'s result, or ``None`` when trial *i*
    failed (its entry is then in ``failures``).  The merge is by task
    index, so this shape is identical for every ``jobs`` value.
    """

    results: List[Any]
    failures: List[TrialFailure] = field(default_factory=list)
    jobs: int = 1
    chunks: int = 0
    failed_chunks: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def trials_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.trials / self.wall_seconds

    def require_ok(self, label: str = "campaign") -> "CampaignOutcome":
        """Raise (listing the failed trials) unless every trial ran."""
        if self.failures:
            detail = "; ".join(str(f) for f in self.failures[:5])
            more = len(self.failures) - 5
            if more > 0:
                detail += f"; ... {more} more"
            raise SimulationError(
                f"{label}: {len(self.failures)} of {self.trials} "
                f"trial(s) failed: {detail}"
            )
        return self


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _chunk_worker(
    conn,
    worker: Callable[[Any], Any],
    chunk_index: int,
    entries: Sequence[Tuple[int, Any]],
) -> None:
    """Run one chunk, streaming each trial back as it completes."""
    try:
        for index, task in entries:
            try:
                result = worker(task)
            except Exception as error:  # noqa: BLE001 — trial-level fault
                conn.send(
                    ("trial", index, False, f"{type(error).__name__}: {error}")
                )
                continue
            try:
                conn.send(("trial", index, True, result))
            except Exception as error:  # noqa: BLE001 — unpicklable result
                conn.send(
                    (
                        "trial",
                        index,
                        False,
                        f"result not transferable: "
                        f"{type(error).__name__}: {error}",
                    )
                )
        conn.send(("done", chunk_index))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _ActiveChunk:
    """Parent-side bookkeeping for one in-flight worker process."""

    __slots__ = ("process", "conn", "index", "outstanding", "done")

    def __init__(self, process, conn, index: int, task_indices) -> None:
        self.process = process
        self.conn = conn
        self.index = index
        self.outstanding = set(task_indices)
        self.done = False


class _Campaign:
    """One :func:`run_trials` execution (parallel branch)."""

    def __init__(
        self,
        worker: Callable[[Any], Any],
        tasks: List[Any],
        jobs: int,
        chunk_size: int,
        bus: Optional[EventBus],
        label: str,
    ) -> None:
        self.worker = worker
        self.tasks = tasks
        self.jobs = jobs
        self.bus = bus
        self.label = label
        self.started = time.perf_counter()
        self.results: List[Any] = [None] * len(tasks)
        self.failures: Dict[int, str] = {}
        self.failed_chunks = 0
        indexed = list(enumerate(tasks))
        self.pending = deque(
            (chunk_index, indexed[offset : offset + chunk_size])
            for chunk_index, offset in enumerate(
                range(0, len(indexed), chunk_size)
            )
        )
        self.total_chunks = len(self.pending)
        self.context = multiprocessing.get_context(START_METHOD)
        self.active: Dict[int, _ActiveChunk] = {}

    # -- events --------------------------------------------------------

    def _emit(self, name: str, **attrs: Any) -> None:
        if self.bus:
            self.bus.emit(
                name,
                time=time.perf_counter() - self.started,
                **attrs,
            )

    def _emit_trial(
        self, index: int, ok: bool, error: Optional[str] = None
    ) -> None:
        attrs: Dict[str, Any] = {
            "label": self.label, "index": index, "ok": ok,
        }
        if error is not None:
            attrs["error"] = error
        self._emit("campaign.trial", **attrs)

    # -- lifecycle -----------------------------------------------------

    def _spawn(self) -> None:
        chunk_index, entries = self.pending.popleft()
        parent_conn, child_conn = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_chunk_worker,
            args=(child_conn, self.worker, chunk_index, entries),
            daemon=True,
            name=f"repro-{self.label}-{chunk_index}",
        )
        process.start()
        child_conn.close()  # parent keeps only the receiving end
        self.active[chunk_index] = _ActiveChunk(
            process, parent_conn, chunk_index, (i for i, _ in entries)
        )

    def _handle(self, chunk: _ActiveChunk, message: Tuple) -> None:
        kind = message[0]
        if kind == "trial":
            _, index, ok, payload = message
            chunk.outstanding.discard(index)
            if ok:
                self.results[index] = payload
                self._emit_trial(index, True)
            else:
                self.failures[index] = payload
                self._emit_trial(index, False, error=payload)
        elif kind == "done":
            chunk.done = True

    def _drain(self, chunk: _ActiveChunk) -> bool:
        """Receive everything buffered; True when the pipe is finished."""
        try:
            while chunk.conn.poll():
                self._handle(chunk, chunk.conn.recv())
        except (EOFError, OSError):
            return True
        except Exception as error:  # noqa: BLE001 — torn mid-send pickle
            chunk.done = False
            self._finalize(chunk, transport_error=repr(error))
            return False
        return chunk.done

    def _finalize(
        self, chunk: _ActiveChunk, transport_error: Optional[str] = None
    ) -> None:
        self.active.pop(chunk.index, None)
        chunk.conn.close()
        chunk.process.join()
        if chunk.outstanding or not chunk.done:
            self.failed_chunks += 1
            exitcode = chunk.process.exitcode
            reason = transport_error or (
                f"worker died (exit {exitcode})"
                if exitcode
                else "worker stopped before finishing its chunk"
            )
            for index in sorted(chunk.outstanding):
                self.failures[index] = reason
                self._emit_trial(index, False, error=reason)
        self._emit(
            "campaign.chunk",
            label=self.label,
            chunk=chunk.index,
            ok=chunk.done and not chunk.outstanding,
        )

    def run(self) -> CampaignOutcome:
        self._emit(
            "campaign.start",
            label=self.label,
            trials=len(self.tasks),
            jobs=self.jobs,
            chunks=self.total_chunks,
        )
        while self.pending or self.active:
            while self.pending and len(self.active) < self.jobs:
                self._spawn()
            waitables: List[Any] = []
            by_waitable: Dict[Any, _ActiveChunk] = {}
            for chunk in list(self.active.values()):
                waitables.append(chunk.conn)
                by_waitable[chunk.conn] = chunk
                # The sentinel catches a worker that dies without ever
                # writing to the pipe (e.g. SIGKILL before its first
                # trial finished) — the pipe alone would block forever.
                waitables.append(chunk.process.sentinel)
                by_waitable[chunk.process.sentinel] = chunk
            if not waitables:
                continue
            seen = set()
            for ready in mp_connection.wait(waitables, timeout=1.0):
                chunk = by_waitable[ready]
                if id(chunk) in seen or chunk.index not in self.active:
                    continue
                seen.add(id(chunk))
                if self._drain(chunk) and chunk.index in self.active:
                    self._finalize(chunk)
        outcome = CampaignOutcome(
            results=self.results,
            failures=[
                TrialFailure(index, error)
                for index, error in sorted(self.failures.items())
            ],
            jobs=self.jobs,
            chunks=self.total_chunks,
            failed_chunks=self.failed_chunks,
            wall_seconds=time.perf_counter() - self.started,
        )
        self._emit(
            "campaign.done",
            label=self.label,
            trials=outcome.trials,
            failures=len(outcome.failures),
        )
        return outcome


def run_trials(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    bus: Optional[EventBus] = None,
    label: str = "campaign",
) -> CampaignOutcome:
    """Run *worker* over every task; merge per-trial results by index.

    *worker* must be picklable (a module-level callable or a
    ``functools.partial`` of one) and *tasks* picklable values.
    ``jobs=None`` uses every usable core; ``jobs=1`` runs serially
    in-process with no multiprocessing machinery.  Results are returned
    in task order whatever the worker count — see the module docstring
    for the determinism and crash-isolation contracts.
    """
    tasks = list(tasks)
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, max(1, len(tasks)))
    if jobs == 1:
        # The exact serial code path: same process, same call order.
        started = time.perf_counter()
        if bus:
            bus.emit(
                "campaign.start",
                time=0.0,
                label=label,
                trials=len(tasks),
                jobs=1,
                chunks=0,
            )
        results: List[Any] = [None] * len(tasks)
        failures: List[TrialFailure] = []
        for index, task in enumerate(tasks):
            ok, error_text = True, None
            try:
                results[index] = worker(task)
            except Exception as error:  # noqa: BLE001 — trial-level fault
                ok = False
                error_text = f"{type(error).__name__}: {error}"
                failures.append(TrialFailure(index, error_text))
            if bus:
                attrs: Dict[str, Any] = {
                    "label": label, "index": index, "ok": ok,
                }
                if error_text is not None:
                    attrs["error"] = error_text
                bus.emit(
                    "campaign.trial",
                    time=time.perf_counter() - started,
                    **attrs,
                )
        outcome = CampaignOutcome(
            results=results,
            failures=failures,
            jobs=1,
            wall_seconds=time.perf_counter() - started,
        )
        if bus:
            bus.emit(
                "campaign.done",
                time=outcome.wall_seconds,
                label=label,
                trials=outcome.trials,
                failures=len(failures),
            )
        return outcome
    if chunk_size is None:
        chunk_size = default_chunk_size(len(tasks), jobs)
    if chunk_size < 1:
        raise SimulationError(f"chunk_size must be >= 1, got {chunk_size}")
    return _Campaign(worker, tasks, jobs, chunk_size, bus, label).run()
