"""The single seed derivation every campaign driver shares.

A *campaign* is a batch of seeded, shared-nothing trials: explorer
schedules, chaos walks, Monte-Carlo runs, bench sweeps.  Before this
module each driver derived its per-trial seeds ad hoc (``seed + i``,
``seed + i * 7919``, ``seed + i * 104729`` ...), which had two latent
reproducibility problems:

* adjacent campaign seeds produced **overlapping** trial seeds (campaign
  0's trial 1 was campaign 1's trial 0), so "independent" campaigns
  shared trials;
* every driver had to be audited separately to confirm no trial touched
  global RNG state or a sibling's stream.

:func:`trial_seed` replaces all of them: one explicit
``(campaign_seed, trial_index)`` derivation, used identically by the
serial and the parallel execution paths — which is what makes
``--jobs 1`` and ``--jobs N`` results bit-identical: a trial's seed
depends only on its campaign seed and its index, never on which worker
runs it or in what order.

The mixing mirrors :meth:`repro.sim.rand.Rng.fork`: crc32 of a
namespaced string (never Python's per-process-randomised ``hash``) plus
Knuth multiplicative spreading, masked to the positive 63-bit space.
"""

from __future__ import annotations

import zlib
from typing import List

from repro.core.errors import SimulationError

#: Seeds live in the positive 63-bit space (same mask as ``Rng.fork``).
SEED_SPACE = 0x7FFFFFFFFFFFFFFF


def trial_seed(campaign_seed: int, trial_index: int) -> int:
    """The seed of trial *trial_index* of campaign *campaign_seed*.

    Pure, total over ``trial_index >= 0``, and collision-spread: nearby
    campaign seeds and nearby trial indices land far apart, so campaigns
    never silently share trials.
    """
    if trial_index < 0:
        raise SimulationError(
            f"trial_index must be non-negative, got {trial_index}"
        )
    derived = zlib.crc32(
        f"trial:{campaign_seed}:{trial_index}".encode("utf-8")
    )
    return (
        campaign_seed * 2654435761 + trial_index * 0x9E3779B9 + derived
    ) & SEED_SPACE


def trial_seeds(campaign_seed: int, count: int) -> List[int]:
    """The first *count* trial seeds of campaign *campaign_seed*."""
    if count < 0:
        raise SimulationError(f"count must be non-negative, got {count}")
    return [trial_seed(campaign_seed, index) for index in range(count)]
