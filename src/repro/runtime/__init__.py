"""repro.runtime — the seam between protocol state machines and the world.

:class:`Runtime` is the one interface through which the transaction
layer reaches a clock, timers, a transport, per-stream randomness, and
durability.  Two implementations:

* :class:`SimRuntime` (:mod:`repro.runtime.sim`) — a thin adapter over
  the discrete-event :class:`~repro.sim.engine.Simulator` and
  :class:`~repro.net.network.Network`; bit-for-bit identical to wiring
  the state machines to the simulator directly, so the explorer, chaos
  campaigns, oracles, and committed bench fingerprints are unchanged.
* :class:`AsyncioRuntime` (:mod:`repro.runtime.aio`) — wall-clock
  asyncio: timers on the event loop, length-prefixed JSON frames over
  TCP sockets, and durable per-site JSON state files for crash/restart.

See ``docs/runtime.md`` for the contract and the sim-vs-live
guarantees.
"""

from repro.runtime.base import Periodic, Runtime, TimerHandle
from repro.runtime.sim import SimRuntime
from repro.runtime.aio import AsyncioRuntime

__all__ = [
    "AsyncioRuntime",
    "Periodic",
    "Runtime",
    "SimRuntime",
    "TimerHandle",
]
