"""AsyncioRuntime — the :class:`Runtime` on wall-clock asyncio sockets.

The live transport (stdlib only):

* **Clock** — ``loop.time()`` rebased to 0 at :meth:`start`, so live
  timestamps read like sim timestamps.
* **Timers** — ``loop.call_later``; the returned ``asyncio.TimerHandle``
  already satisfies the :class:`~repro.runtime.base.TimerHandle`
  protocol.
* **Transport** — one TCP server per site on localhost (ephemeral
  ports by default), messages as 4-byte big-endian length-prefixed
  JSON frames (codec in :mod:`repro.live.wire`).  Outbound connections
  are cached per recipient and re-opened once on failure; beyond that
  a send is simply lost, which is exactly the delivery contract the
  protocols are designed for.
* **Durability** — after every timer fire and every inbound dispatch
  for site S, S's registered snapshot is JSON-serialised to
  ``<data_dir>/site-<S>.json`` via atomic write-then-rename.  Sends
  only enqueue an asyncio task, and tasks cannot run before the
  current callback (checkpoint included) returns — so durable state
  always reaches disk *before* any message provoked by it reaches a
  socket.  That ordering is what makes the coordinator's "log the
  outcome, then send complete" and the participant's "stage durably,
  then send ready" hold on the live runtime with no changes to the
  protocol code.
* **Fault injection** — :meth:`mark_down`/:meth:`mark_up` emulate a
  crashed process (all inbound and outbound frames dropped), and
  :meth:`set_fault` installs a predicate that selectively drops
  delivered envelopes — the live analogue of the sim network's message
  faults, used by tests to force the wait-timeout polyvalue path over
  real sockets.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

from repro.core.errors import SimulationError
from repro.net.message import Envelope, SiteId
from repro.runtime.base import Runtime, TimerHandle
from repro.sim.rand import Rng


@dataclass
class TransportStats:
    """Counters for the live transport (mirrors NetworkStats in spirit)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    reconnects: int = 0
    checkpoints: int = 0
    handler_errors: int = 0
    errors: list = field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "reconnects": self.reconnects,
            "checkpoints": self.checkpoints,
            "handler_errors": self.handler_errors,
        }


class AsyncioRuntime(Runtime):
    """Wall-clock runtime: asyncio timers + TCP frames + durable files.

    Usage (from inside a running event loop)::

        rt = AsyncioRuntime(data_dir="/tmp/cluster")
        await rt.start()
        await rt.listen("site-0")       # before registering handlers
        rt.register("site-0", handler)
        ...
        await rt.close()
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        data_dir: Optional[str] = None,
        seed: int = 0,
        encode: Optional[Callable[[Envelope], bytes]] = None,
        decode: Optional[Callable[[bytes], Envelope]] = None,
    ) -> None:
        self.host = host
        self.data_dir = data_dir
        self.durable = data_dir is not None
        self._seed = seed
        if encode is None or decode is None:
            # Default codec; imported lazily because repro.live depends
            # on repro.txn message types, not the other way around.
            from repro.live import wire

            encode = encode if encode is not None else wire.encode_envelope
            decode = decode if decode is not None else wire.decode_envelope
        self._encode = encode
        self._decode = decode
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch = 0.0
        self._handlers: Dict[SiteId, Callable[[Any], None]] = {}
        self._servers: Dict[SiteId, asyncio.AbstractServer] = {}
        self._ports: Dict[SiteId, int] = {}
        self._writers: Dict[SiteId, asyncio.StreamWriter] = {}
        self._conn_locks: Dict[SiteId, asyncio.Lock] = {}
        self._down: Set[SiteId] = set()
        self._snapshots: Dict[SiteId, Callable[[], Dict[str, Any]]] = {}
        self._tasks: Set = set()
        self._fault: Optional[Callable[[Envelope], bool]] = None
        self.stats = TransportStats()
        if self.durable:
            os.makedirs(data_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Bind the runtime to the running event loop and zero the clock."""
        self._loop = asyncio.get_event_loop()
        self._epoch = self._loop.time()

    async def listen(self, site: SiteId) -> int:
        """Open *site*'s TCP server; returns the bound port."""
        if self._loop is None:
            await self.start()
        server = await asyncio.start_server(self._serve_connection, self.host, 0)
        port = server.sockets[0].getsockname()[1]
        self._servers[site] = server
        self._ports[site] = port
        return port

    async def close(self) -> None:
        """Tear down servers, cached connections, and in-flight sends."""
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        for writer in self._writers.values():
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._writers.clear()
        self._servers.clear()

    def port_of(self, site: SiteId) -> Optional[int]:
        """The TCP port *site* listens on (None before :meth:`listen`)."""
        return self._ports.get(site)

    # ------------------------------------------------------------------
    # Runtime interface

    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._epoch

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        label: str = "",
        site: SiteId = "",
    ) -> TimerHandle:
        if self._loop is None:
            raise SimulationError("AsyncioRuntime.schedule before start()")
        return self._loop.call_later(
            max(0.0, delay), self._fire_timer, action, site, label
        )

    def _fire_timer(self, action: Callable[[], None], site: SiteId, label: str) -> None:
        try:
            action()
        except Exception as exc:
            self.stats.handler_errors += 1
            self.stats.errors.append(f"timer {label or '?'}: {exc!r}")
        else:
            self.checkpoint(site)

    def send(self, sender: SiteId, recipient: SiteId, payload: Any) -> None:
        if sender in self._down:
            self.stats.dropped += 1
            return
        if recipient not in self._ports:
            self.stats.dropped += 1
            return
        envelope = Envelope(
            sender=sender, recipient=recipient, payload=payload, sent_at=self.now
        )
        try:
            blob = self._encode(envelope)
        except Exception as exc:
            self.stats.dropped += 1
            self.stats.errors.append(f"encode to {recipient}: {exc!r}")
            return
        frame = len(blob).to_bytes(4, "big") + blob
        self.stats.sent += 1
        self._spawn(self._deliver(recipient, frame))

    def register(self, site: SiteId, handler: Callable[[Any], None]) -> None:
        self._handlers[site] = handler

    def rng(self, stream: str) -> Rng:
        return Rng(self._seed).fork(stream)

    # ------------------------------------------------------------------
    # Durability

    def attach_durability(
        self, site: SiteId, snapshot: Callable[[], Dict[str, Any]]
    ) -> None:
        self._snapshots[site] = snapshot

    def _site_path(self, site: SiteId) -> str:
        return os.path.join(self.data_dir or "", f"site-{site}.json")

    def checkpoint(self, site: SiteId) -> None:
        if not self.durable or site in self._down:
            return
        provider = self._snapshots.get(site)
        if provider is None:
            return
        path = self._site_path(site)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(provider(), fh, separators=(",", ":"))
        os.replace(tmp, path)
        self.stats.checkpoints += 1

    def load_durable(self, site: SiteId) -> Optional[Dict[str, Any]]:
        if not self.durable:
            return None
        try:
            with open(self._site_path(site), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------
    # Fault injection (the live analogue of the sim network's faults)

    def mark_down(self, site: SiteId) -> None:
        """Emulate a crashed process: drop all frames to/from *site*."""
        self._down.add(site)

    def mark_up(self, site: SiteId) -> None:
        self._down.discard(site)

    def set_fault(self, fault: Optional[Callable[[Envelope], bool]]) -> None:
        """Drop every delivered envelope for which *fault* returns True."""
        self._fault = fault

    # ------------------------------------------------------------------
    # Transport internals

    def _spawn(self, coro) -> None:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._reap)

    def _reap(self, task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:  # pragma: no cover - defensive
            self.stats.errors.append(f"task: {exc!r}")

    async def _deliver(self, recipient: SiteId, frame: bytes) -> None:
        lock = self._conn_locks.setdefault(recipient, asyncio.Lock())
        async with lock:
            writer = self._writers.get(recipient)
            for attempt in (0, 1):
                if writer is None:
                    port = self._ports.get(recipient)
                    if port is None:
                        self.stats.dropped += 1
                        return
                    try:
                        _, writer = await asyncio.open_connection(self.host, port)
                    except OSError:
                        self.stats.dropped += 1
                        return
                    if attempt:
                        self.stats.reconnects += 1
                    self._writers[recipient] = writer
                try:
                    writer.write(frame)
                    await writer.drain()
                    return
                except (ConnectionError, OSError):
                    self._writers.pop(recipient, None)
                    try:
                        writer.close()
                    except Exception:  # pragma: no cover - teardown
                        pass
                    writer = None
            self.stats.dropped += 1

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            # Track the connection task so close() cancels it instead of
            # leaving it for noisy event-loop teardown.
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            while True:
                header = await reader.readexactly(4)
                length = int.from_bytes(header, "big")
                body = await reader.readexactly(length)
                self._dispatch(body)
        except asyncio.CancelledError:
            pass  # runtime is closing; end the connection quietly
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown
                pass

    def _dispatch(self, body: bytes) -> None:
        try:
            envelope = self._decode(body)
        except Exception as exc:
            self.stats.dropped += 1
            self.stats.errors.append(f"decode: {exc!r}")
            return
        if envelope.recipient in self._down:
            self.stats.dropped += 1
            return
        if self._fault is not None and self._fault(envelope):
            self.stats.dropped += 1
            return
        handler = self._handlers.get(envelope.recipient)
        if handler is None:
            self.stats.dropped += 1
            return
        self.stats.delivered += 1
        try:
            handler(envelope)
        except Exception as exc:
            self.stats.handler_errors += 1
            self.stats.errors.append(
                f"handler {envelope.recipient}: {exc!r}"
            )
        else:
            self.checkpoint(envelope.recipient)
