"""The :class:`Runtime` interface: clock, timers, transport, durability, RNG.

Everything a protocol state machine needs from the outside world, and
nothing more.  The transaction layer (:mod:`repro.txn`) depends only on
this surface — an API-lint test enforces that no protocol module
imports the simulator or the network directly — so the same
coordinator/participant/paxos code runs on simulated time
(:class:`repro.runtime.sim.SimRuntime`) or on wall-clock sockets
(:class:`repro.runtime.aio.AsyncioRuntime`).

Design notes
------------
* **Timers** return a :class:`TimerHandle`, a structural protocol with
  a single ``cancel()`` method.  The simulator's
  :class:`~repro.sim.events.Event` and asyncio's ``TimerHandle`` both
  already satisfy it, so neither implementation wraps its native
  handle — important for the sim path, where handle identity and
  scheduling order must stay bit-identical to the pre-refactor code.
* **Durability** is a pair of hooks with no-op defaults.  A site
  registers a snapshot provider once (:meth:`Runtime.attach_durability`)
  and the runtime decides when to persist: the sim runtime never does
  (crashes are simulated by discarding volatile attributes), the
  asyncio runtime checkpoints after every timer fire and every message
  delivery, *before* any message scheduled by that action reaches a
  socket — giving the write-ahead ordering the protocol's recovery
  story assumes (e.g. the coordinator's outcome-log record is on disk
  before any *complete* message is sent).
* **RNG** hands out named deterministic streams
  (:meth:`Runtime.rng`) so workload generators and relaxed-policy coin
  flips are reproducible per seed on either runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

try:  # Protocol is typing_extensions-free only on 3.8+
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - 3.7 fallback, not exercised
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.core.errors import SimulationError
from repro.net.message import SiteId


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable timer.  ``sim.events.Event`` and
    ``asyncio.TimerHandle`` both satisfy this structurally."""

    def cancel(self) -> None:  # pragma: no cover - protocol signature
        ...


class Runtime:
    """Abstract clock + timers + transport + durability + RNG.

    Implementations must be driven from a single thread (the simulator
    loop or the asyncio event loop); none of the methods are
    thread-safe.
    """

    #: True when :meth:`checkpoint` actually persists anywhere.  Lets
    #: composition code (and tests) know whether restart-from-disk is a
    #: meaningful operation on this runtime.
    durable: bool = False

    @property
    def now(self) -> float:
        """Current time in runtime seconds (simulated or wall-clock)."""
        raise NotImplementedError

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        label: str = "",
        site: SiteId = "",
    ) -> TimerHandle:
        """Run *action* after *delay* seconds; returns a cancellable handle.

        *label* is diagnostic (the simulator uses it for quiescence
        filtering and traces).  *site* attributes the timer to a site
        so durable runtimes can checkpoint that site's state after the
        action runs.
        """
        raise NotImplementedError

    def send(self, sender: SiteId, recipient: SiteId, payload: Any) -> None:
        """Deliver *payload* to *recipient*'s registered handler, eventually.

        Delivery is asynchronous and unreliable in exactly the ways the
        implementation defines (simulated latency/partitions, or real
        sockets); senders never learn whether delivery happened.
        """
        raise NotImplementedError

    def register(self, site: SiteId, handler: Callable[[Any], None]) -> None:
        """Register *site*'s message handler (called with an Envelope)."""
        raise NotImplementedError

    def rng(self, stream: str):
        """A deterministic named random stream (``repro.sim.rand.Rng``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Durability hooks — no-ops by default (the sim runtime keeps them).

    def attach_durability(
        self, site: SiteId, snapshot: Callable[[], Dict[str, Any]]
    ) -> None:
        """Register *site*'s durable-state snapshot provider."""

    def checkpoint(self, site: SiteId) -> None:
        """Persist *site*'s durable state now (no-op when not durable)."""

    def load_durable(self, site: SiteId) -> Optional[Dict[str, Any]]:
        """The last persisted snapshot for *site*, or None."""
        return None


class Periodic:
    """A repeating timer on any :class:`Runtime`.

    The same fire/re-arm discipline as the simulator's
    :class:`~repro.sim.engine.PeriodicTask` (arm, fire, re-arm after
    the action unless stopped), expressed over :meth:`Runtime.schedule`
    so it behaves identically on simulated and wall-clock time.  On the
    sim runtime the scheduling call sequence — and therefore the event
    heap's (time, seq) order — is exactly what PeriodicTask produced.
    """

    def __init__(
        self,
        runtime: Runtime,
        period: float,
        action: Callable[[], None],
        *,
        label: str = "",
        site: SiteId = "",
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._runtime = runtime
        self.period = period
        self._action = action
        self.label = label
        self._site = site
        self._stopped = False
        self._handle: Optional[TimerHandle] = None
        self._arm()

    def _arm(self) -> None:
        self._handle = self._runtime.schedule(
            self.period, self._fire, label=self.label, site=self._site
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Stop firing.  Safe to call from within the action."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
