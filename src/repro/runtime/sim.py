"""SimRuntime — the :class:`Runtime` over the discrete-event simulator.

A deliberately thin adapter: every method delegates 1:1 to the
:class:`~repro.sim.engine.Simulator` or the
:class:`~repro.net.network.Network`, consuming exactly the same
sequence numbers in exactly the same order as the pre-refactor code
that called them directly.  That is the bit-for-bit guarantee the
explorer fingerprints, chaos replays, and committed bench numbers rely
on (see ``docs/runtime.md``).

Durability hooks stay the base-class no-ops: simulated crashes discard
volatile attributes in place, so there is nothing to persist.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net.message import SiteId
from repro.net.network import Network
from repro.runtime.base import Runtime, TimerHandle
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


class SimRuntime(Runtime):
    """Simulated clock and transport; the default runtime everywhere."""

    durable = False

    def __init__(
        self, sim: Simulator, network: Network, rng: Optional[Rng] = None
    ) -> None:
        self.sim = sim
        self.network = network
        self._rng = rng if rng is not None else Rng(0)

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        label: str = "",
        site: SiteId = "",
    ) -> TimerHandle:
        # *site* is durability attribution only; the simulator does not
        # need it and must not see a signature change (sequence parity).
        return self.sim.schedule(delay, action, label=label)

    def send(self, sender: SiteId, recipient: SiteId, payload: Any) -> None:
        self.network.send(sender, recipient, payload)

    def register(self, site: SiteId, handler: Callable[[Any], None]) -> None:
        self.network.register(site, handler)

    def rng(self, stream: str) -> Rng:
        return self._rng.fork(stream)
