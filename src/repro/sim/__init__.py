"""Discrete-event simulation kernel.

The substrate under both simulators in this reproduction: the
full-system distributed-database simulator (:mod:`repro.net`,
:mod:`repro.db`, :mod:`repro.txn`) and the abstract Monte-Carlo
polyvalue-count simulator of the paper's section 4.2
(:mod:`repro.analysis.montecarlo`).
"""

from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.events import Action, Event, SimTime
from repro.sim.rand import Rng

__all__ = ["Action", "Event", "PeriodicTask", "Rng", "SimTime", "Simulator"]
