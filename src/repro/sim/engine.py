"""The discrete-event simulation engine.

A single :class:`Simulator` owns the virtual clock and the event list.
Components schedule zero-argument actions at relative delays or absolute
times and receive an :class:`~repro.sim.events.Event` handle they can
cancel (e.g. a participant cancels its wait-phase timeout when the
``complete`` message arrives first).

The engine is intentionally minimal — no processes, no coroutines — and
fully deterministic for a fixed schedule: ties in firing time break by
scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.sim.events import Action, Event, SimTime


class Simulator:
    """An event-list discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now: SimTime = 0.0
        self._queue: List[Event] = []
        self._sequence = 0
        self._processed = 0
        self._running = False
        #: Optional observability bus (attached by the system facade).
        #: Checked once per ``run_until`` window, never per event, so an
        #: unobserved simulation pays nothing on the hot loop.
        self.bus = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """The current virtual time, in simulated seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """How many events have fired so far (for progress accounting)."""
        return self._processed

    @property
    def events_pending(self) -> int:
        """How many events are scheduled and not cancelled."""
        return sum(1 for event in self._queue if not event.cancelled)

    def pending_labels(self) -> List[str]:
        """The labels of every pending (non-cancelled) event.

        The correctness harness uses this to decide quiescence: a
        system is quiescent when everything still scheduled belongs to
        background maintenance, not to in-flight protocol work.
        """
        return [event.label for event in self._queue if not event.cancelled]

    def next_time_except(self, ignore_prefixes: Tuple[str, ...]) -> Optional[SimTime]:
        """The firing time of the earliest pending event whose label does
        not start with any of *ignore_prefixes* (None if no such event)."""
        best: Optional[SimTime] = None
        for event in self._queue:
            if event.cancelled:
                continue
            if event.label.startswith(ignore_prefixes):
                continue
            if best is None or event.time < best:
                best = event.time
        return best

    def run_until_quiescent(
        self,
        *,
        ignore_prefixes: Tuple[str, ...] = (),
        max_time: Optional[SimTime] = None,
        max_events: int = 1_000_000,
    ) -> bool:
        """Run until only ignored (maintenance) events remain pending.

        Returns True when quiescence was reached; False when *max_time*
        arrived first (the clock is then left at *max_time*).  Ignored
        events that come due along the way still fire — they are real
        behaviour (and may themselves schedule new non-ignored work,
        which extends the run); they just do not count against
        quiescence.
        """
        fired = 0
        while True:
            pending = self.next_time_except(ignore_prefixes)
            if pending is None:
                return True
            if max_time is not None and pending > max_time:
                self.run_until(max_time)
                return False
            if not self.step():
                return True
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_until_quiescent exceeded {max_events} events; "
                    "likely livelock"
                )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: SimTime, action: Action, *, label: str = "") -> Event:
        """Schedule *action* to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, label=label)

    def schedule_at(self, time: SimTime, action: Action, *, label: str = "") -> Event:
        """Schedule *action* to fire at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current t={self._now}"
            )
        event = Event(time=time, seq=self._sequence, action=action, label=label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.action()
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Run until the event list is empty (or *max_events* fire)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def run_until(self, time: SimTime, *, max_events: Optional[int] = None) -> None:
        """Run all events with firing time ≤ *time*, then set the clock there.

        The clock always ends at exactly *time*, so repeated
        ``run_until`` calls step the simulation in fixed observation
        intervals (the Monte-Carlo harness samples the polyvalue count
        this way).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} from t={self._now}"
            )
        window_start = self._now
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self._now = max(self._now, time)
        bus = self.bus
        if bus:
            bus.emit(
                "sim.window",
                time=self._now,
                since=window_start,
                events=fired,
            )

    def run_while(
        self, predicate: Callable[[], bool], *, max_events: int = 10_000_000
    ) -> None:
        """Run while *predicate* is true and events remain."""
        fired = 0
        while predicate() and self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_while exceeded {max_events} events; likely livelock"
                )


class PeriodicTask:
    """A self-rescheduling action (e.g. metric sampling, retry timers).

    The task fires every *period* seconds starting ``period`` from
    creation, until :meth:`stop` is called.
    """

    def __init__(self, sim: Simulator, period: SimTime, action: Action, *, label: str = "") -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._action = action
        self._label = label
        self._stopped = False
        self._event: Optional[Event] = None
        self._arm()

    def _arm(self) -> None:
        self._event = self._sim.schedule(self._period, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Cancel future firings."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
