"""The discrete-event simulation engine.

A single :class:`Simulator` owns the virtual clock and the event list.
Components schedule zero-argument actions at relative delays or absolute
times and receive an :class:`~repro.sim.events.Event` handle they can
cancel (e.g. a participant cancels its wait-phase timeout when the
``complete`` message arrives first).

The engine is intentionally minimal — no processes, no coroutines — and
fully deterministic for a fixed schedule: ties in firing time break by
scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.sim.events import Action, Event, SimTime


class Simulator:
    """An event-list discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now: SimTime = 0.0
        self._queue: List[Event] = []
        self._sequence = 0
        self._processed = 0
        self._running = False
        #: Secondary index: per label-class min-heaps, used by
        #: ``next_time_except`` to answer "earliest non-background event"
        #: in O(#classes) instead of scanning the whole queue.  Built
        #: lazily, and only once the queue is big enough for the index
        #: to beat a plain scan, so simulations that never ask (e.g. the
        #: Monte-Carlo harness) or stay tiny (the check explorer's short
        #: schedules) pay nothing.
        self._class_heaps: Optional[Dict[str, List[Event]]] = None
        #: Memoized per-class treatment for each distinct ignore-prefix
        #: tuple (the system facade always passes the same one).
        self._class_modes: Dict[Tuple[str, ...], Dict[str, int]] = {}
        #: Optional observability bus (attached by the system facade).
        #: Checked once per ``run_until`` window, never per event, so an
        #: unobserved simulation pays nothing on the hot loop.
        self.bus = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """The current virtual time, in simulated seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """How many events have fired so far (for progress accounting)."""
        return self._processed

    @property
    def next_sequence(self) -> int:
        """The sequence number the next scheduled event will receive.

        Tie-breaking at equal firing times is by sequence, so a component
        that batches work (e.g. the network's same-tick delivery batch)
        can use this to prove no event was interleaved since it last
        scheduled — appending to the batch is then order-equivalent to
        scheduling a fresh event.
        """
        return self._sequence

    @property
    def events_pending(self) -> int:
        """How many events are scheduled and not cancelled."""
        return sum(1 for event in self._queue if not event.cancelled)

    #: Queue size below which ``next_time_except`` answers with a plain
    #: scan instead of building (and then maintaining) the class index.
    _INDEX_THRESHOLD = 64

    @staticmethod
    def _class_of(label: str) -> str:
        """The label class: everything before the first ``:``.

        Labels follow a ``family:detail`` convention ("deliver:…",
        "compute-timeout:T3"), so the class is the family name and the
        number of classes is small and bounded.
        """
        return label.split(":", 1)[0]

    def _build_class_index(self) -> Dict[str, List[Event]]:
        heaps: Dict[str, List[Event]] = {}
        for event in self._queue:
            if not event.cancelled:
                heaps.setdefault(self._class_of(event.label), []).append(event)
        for heap in heaps.values():
            heapq.heapify(heap)
        self._class_heaps = heaps
        return heaps

    def next_time_except(self, ignore_prefixes: Tuple[str, ...]) -> Optional[SimTime]:
        """The firing time of the earliest pending event whose label does
        not start with any of *ignore_prefixes* (None if no such event).

        The quiescence loops (:meth:`run_until_quiescent`, the system
        facade, the check explorer) call this once per fired event, so it
        is served from the per-class index: each class answers from its
        heap head unless an ignore prefix reaches *into* the class (e.g.
        ``deliver:site1`` against class ``deliver``), in which case only
        that class degrades to a scan.  Fired and cancelled events are
        discarded lazily at the heads.
        """
        heaps = self._class_heaps
        if heaps is None:
            if len(self._queue) <= self._INDEX_THRESHOLD:
                # Tiny queue: a straight scan beats index bookkeeping.
                best: Optional[SimTime] = None
                for event in self._queue:
                    if event.cancelled or event.label.startswith(ignore_prefixes):
                        continue
                    if best is None or event.time < best:
                        best = event.time
                return best
            heaps = self._build_class_index()
        modes = self._class_modes.get(ignore_prefixes)
        if modes is None:
            modes = self._class_modes[ignore_prefixes] = {}
        best = None
        empty: List[str] = []
        for cls, heap in heaps.items():
            while heap and (heap[0].cancelled or heap[0].fired):
                heapq.heappop(heap)
            if not heap:
                empty.append(cls)
                continue
            mode = modes.get(cls)
            if mode is None:
                # An ignore prefix that is itself a prefix of the class
                # name ignores every label in the class (all labels start
                # with the class name); a longer prefix that starts with
                # the class name may match only some labels and degrades
                # that one class to a scan.
                if any(cls.startswith(prefix) for prefix in ignore_prefixes):
                    mode = 1
                elif any(
                    prefix.startswith(cls) and len(prefix) > len(cls)
                    for prefix in ignore_prefixes
                ):
                    mode = 2
                else:
                    mode = 0
                modes[cls] = mode
            if mode == 1:
                continue
            if mode == 2:
                for event in heap:
                    if event.cancelled or event.fired:
                        continue
                    if event.label.startswith(ignore_prefixes):
                        continue
                    if best is None or event.time < best:
                        best = event.time
                continue
            if best is None or heap[0].time < best:
                best = heap[0].time
        for cls in empty:
            del heaps[cls]
        return best

    def run_until_quiescent(
        self,
        *,
        ignore_prefixes: Tuple[str, ...] = (),
        max_time: Optional[SimTime] = None,
        max_events: int = 1_000_000,
    ) -> bool:
        """Run until only ignored (maintenance) events remain pending.

        Returns True when quiescence was reached; False when *max_time*
        arrived first (the clock is then left at *max_time*).  Ignored
        events that come due along the way still fire — they are real
        behaviour (and may themselves schedule new non-ignored work,
        which extends the run); they just do not count against
        quiescence.
        """
        fired = 0
        while True:
            pending = self.next_time_except(ignore_prefixes)
            if pending is None:
                return True
            if max_time is not None and pending > max_time:
                self.run_until(max_time)
                return False
            if not self.step():
                return True
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_until_quiescent exceeded {max_events} events; "
                    "likely livelock"
                )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: SimTime, action: Action, *, label: str = "") -> Event:
        """Schedule *action* to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, label=label)

    def schedule_at(self, time: SimTime, action: Action, *, label: str = "") -> Event:
        """Schedule *action* to fire at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current t={self._now}"
            )
        event = Event(time=time, seq=self._sequence, action=action, label=label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        if self._class_heaps is not None:
            heapq.heappush(
                self._class_heaps.setdefault(self._class_of(label), []), event
            )
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.fired = True
            self._now = event.time
            self._processed += 1
            event.action()
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Run until the event list is empty (or *max_events* fire)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def run_until(self, time: SimTime, *, max_events: Optional[int] = None) -> None:
        """Run all events with firing time ≤ *time*, then set the clock there.

        The clock always ends at exactly *time*, so repeated
        ``run_until`` calls step the simulation in fixed observation
        intervals (the Monte-Carlo harness samples the polyvalue count
        this way).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={time} from t={self._now}"
            )
        window_start = self._now
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        self._now = max(self._now, time)
        bus = self.bus
        if bus:
            bus.emit(
                "sim.window",
                time=self._now,
                since=window_start,
                events=fired,
            )

    def run_while(
        self, predicate: Callable[[], bool], *, max_events: int = 10_000_000
    ) -> None:
        """Run while *predicate* is true and events remain."""
        fired = 0
        while predicate() and self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_while exceeded {max_events} events; likely livelock"
                )


class PeriodicTask:
    """A self-rescheduling action (e.g. metric sampling, retry timers).

    The task fires every *period* seconds starting ``period`` from
    creation, until :meth:`stop` is called.
    """

    def __init__(self, sim: Simulator, period: SimTime, action: Action, *, label: str = "") -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._action = action
        self._label = label
        self._stopped = False
        self._event: Optional[Event] = None
        self._arm()

    def _arm(self) -> None:
        self._event = self._sim.schedule(self._period, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:
            self._arm()

    def stop(self) -> None:
        """Cancel future firings."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
