"""Event representation for the discrete-event simulation kernel.

The kernel is a classic event-list simulator: events carry a firing
time, a tie-breaking sequence number, and a zero-argument action.  The
paper's own evaluation (section 4.2) is a discrete-event simulation;
this kernel underlies both our full-system simulator (sites, messages,
2PC) and nothing else needs to know about heap ordering details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Simulated time is a float number of seconds since simulation start.
SimTime = float

Action = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled action.

    Ordering is by ``(time, seq)``: events at the same instant fire in
    scheduling order, which keeps runs deterministic for a fixed seed.
    ``cancelled`` is checked at dispatch (lazy deletion, the standard
    heapq idiom) so cancellation is O(1).
    """

    time: SimTime
    seq: int
    action: Action = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set by the simulator when the event is dispatched.  The label-class
    #: index (``Simulator.next_time_except``) holds references to events
    #: the main queue has already popped; this flag lets it discard them
    #: lazily, exactly like ``cancelled``.
    fired: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing (safe if already fired)."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = " (cancelled)" if self.cancelled else ""
        label = f" {self.label!r}" if self.label else ""
        return f"Event(t={self.time:.6g}, seq={self.seq}{label}{state})"
