"""Seeded randomness for the simulators.

Every stochastic component of the reproduction draws from a
:class:`Rng`, which wraps :class:`random.Random` with the distributions
section 4.2 of the paper uses (exponential inter-arrival, recovery and
dependency-count draws; uniform item selection; Bernoulli failure
choices).  All simulators and workload generators take an explicit seed
so every number in EXPERIMENTS.md is replayable.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, TypeVar

from repro.core.errors import SimulationError

T = TypeVar("T")


class Rng:
    """A seeded random source with the paper's distributions."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def fork(self, stream: str) -> "Rng":
        """Derive an independent, reproducible sub-stream.

        Named sub-streams keep components (arrivals, failures, network
        jitter ...) statistically independent while remaining functions
        of the master seed, so adding draws to one component does not
        perturb another.  The derivation uses crc32, not Python's
        ``hash`` — string hashing is randomised per process, which
        would silently break cross-run reproducibility.
        """
        derived = zlib.crc32(f"{self._seed}:{stream}".encode("utf-8"))
        return Rng((self._seed * 2654435761 + derived) & 0x7FFFFFFFFFFFFFFF)

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """An exponential variate with the given *mean* (not rate).

        Section 4.2 draws the dependency count ``d`` and the failure
        recovery time from exponential distributions specified by their
        means (``D`` and ``1/R``).
        """
        if mean <= 0:
            raise SimulationError(f"exponential mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def uniform(self, low: float, high: float) -> float:
        """A uniform variate on ``[low, high)``."""
        return self._random.uniform(low, high)

    def bernoulli(self, probability: float) -> bool:
        """True with the given *probability*."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(
                f"probability must be in [0, 1], got {probability}"
            )
        return self._random.random() < probability

    def randint(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """A uniformly chosen element of *options*."""
        if not options:
            raise SimulationError("cannot choose from an empty sequence")
        return self._random.choice(options)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        """*count* distinct elements chosen uniformly from *options*.

        If *count* exceeds ``len(options)`` the whole population is
        returned (shuffled) — section 4.2 selects "a set of d items ...
        at random" and d can exceed a small database.
        """
        count = min(count, len(options))
        return self._random.sample(options, count)

    def shuffled(self, options: Sequence[T]) -> List[T]:
        """A new list with the elements of *options* in random order."""
        shuffled = list(options)
        self._random.shuffle(shuffled)
        return shuffled

    def zipf_like(self, size: int, skew: float) -> int:
        """An index in ``[0, size)`` with a Zipf-like skew.

        Used by the hot-spot workload variants: the paper notes that
        non-uniform item selection "has the effect of reducing the
        effective size of the database".  ``skew = 0`` degenerates to
        uniform.
        """
        if size <= 0:
            raise SimulationError(f"size must be positive, got {size}")
        if skew <= 0:
            return self._random.randrange(size)
        # Inverse-CDF sampling of p(i) ~ 1/(i+1)^skew via rejection-free
        # power-law approximation: u^(1/(1-skew)) for skew < 1, else a
        # bounded Zipf by rejection.
        while True:
            u = self._random.random()
            index = int(size * u ** (1.0 + skew)) % size
            return index
