"""The transaction layer: two-phase commit with polyvalue wait-timeouts."""

from repro.txn.baselines import blocking_system, polyvalue_system, relaxed_system
from repro.txn.coordinator import Coordinator
from repro.txn.participant import Participant
from repro.txn.preanalysis import (
    TransactionClass,
    TransactionProfile,
    WorkloadMix,
    classify,
    conflict_graph,
    conflicts,
    parallel_batches,
    profile,
    workload_mix,
)
from repro.txn.snapshot import export_snapshot, import_snapshot
from repro.txn.tracing import ProtocolTracer, TraceRecord
from repro.txn.runtime import (
    CommitPolicy,
    ProtocolConfig,
    SiteRuntime,
    SiteState,
    Transition,
    TransitionLog,
)
from repro.txn.site import DatabaseSite
from repro.txn.system import DistributedSystem
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnStatus,
    coordinator_of,
    make_txn_id,
)

__all__ = [
    "CommitPolicy",
    "Coordinator",
    "DatabaseSite",
    "DistributedSystem",
    "Participant",
    "ProtocolConfig",
    "ProtocolTracer",
    "SiteRuntime",
    "SiteState",
    "TraceRecord",
    "Transaction",
    "TransactionClass",
    "TransactionHandle",
    "TransactionProfile",
    "Transition",
    "TransitionLog",
    "TxnStatus",
    "WorkloadMix",
    "blocking_system",
    "classify",
    "conflict_graph",
    "conflicts",
    "coordinator_of",
    "export_snapshot",
    "import_snapshot",
    "make_txn_id",
    "parallel_batches",
    "polyvalue_system",
    "profile",
    "relaxed_system",
    "workload_mix",
]
