"""The transaction layer: two-phase commit with polyvalue wait-timeouts.

.. deprecated::
    Importing the supported surface (``DistributedSystem``,
    ``Transaction``, ``ProtocolConfig``, the policy constructors, …)
    from this package emits :class:`DeprecationWarning`; import it from
    :mod:`repro.api` (or the :mod:`repro` top level) instead.  Protocol
    internals (``Coordinator``, ``Participant``, ``SiteRuntime``, …)
    and all submodules stay importable from here without a warning.
"""

import importlib
import warnings

from repro.txn.coordinator import Coordinator
from repro.txn.participant import Participant
from repro.txn.preanalysis import (
    TransactionClass,
    TransactionProfile,
    WorkloadMix,
    classify,
    conflict_graph,
    conflicts,
    parallel_batches,
    profile,
    workload_mix,
)
from repro.txn.snapshot import export_snapshot, import_snapshot
from repro.txn.tracing import TraceRecord
from repro.txn.runtime import SiteRuntime, SiteState, Transition, TransitionLog
from repro.txn.site import DatabaseSite
from repro.txn.transaction import coordinator_of, make_txn_id

#: Names the :mod:`repro.api` facade replaces, served lazily by
#: :func:`__getattr__` below with a :class:`DeprecationWarning`.
_DEPRECATED = {
    "blocking_system": ("repro.txn.baselines", "blocking_system"),
    "polyvalue_system": ("repro.txn.baselines", "polyvalue_system"),
    "relaxed_system": ("repro.txn.baselines", "relaxed_system"),
    "CommitPolicy": ("repro.txn.config", "CommitPolicy"),
    "ProtocolConfig": ("repro.txn.config", "ProtocolConfig"),
    "ProtocolTracer": ("repro.txn.tracing", "ProtocolTracer"),
    "DistributedSystem": ("repro.txn.system", "DistributedSystem"),
    "Transaction": ("repro.txn.transaction", "Transaction"),
    "TransactionHandle": ("repro.txn.transaction", "TransactionHandle"),
    "TxnStatus": ("repro.txn.transaction", "TxnStatus"),
}


def __getattr__(name):
    # PEP 562 shim: resolve deprecated names lazily, and do not cache
    # them on the package, so every deep import keeps warning.
    try:
        module_name, attr = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"importing {name!r} from 'repro.txn' is deprecated; import it "
        f"from 'repro.api' (stable facade) or {module_name!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "CommitPolicy",
    "Coordinator",
    "DatabaseSite",
    "DistributedSystem",
    "Participant",
    "ProtocolConfig",
    "ProtocolTracer",
    "SiteRuntime",
    "SiteState",
    "TraceRecord",
    "Transaction",
    "TransactionClass",
    "TransactionHandle",
    "TransactionProfile",
    "Transition",
    "TransitionLog",
    "TxnStatus",
    "WorkloadMix",
    "blocking_system",
    "classify",
    "conflict_graph",
    "conflicts",
    "coordinator_of",
    "export_snapshot",
    "import_snapshot",
    "make_txn_id",
    "parallel_batches",
    "polyvalue_system",
    "profile",
    "relaxed_system",
    "workload_mix",
]
