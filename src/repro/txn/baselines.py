"""Convenience constructors for the commit-protocol bake-off peers.

The paper positions polyvalues against the approaches of section 2; the
ablation benchmarks compare the wait-timeout policies on identical
workloads, seeds and failure schedules:

* :func:`polyvalue_system` — the paper's mechanism (section 2.4/3);
* :func:`blocking_system` — window minimisation (section 2.2): a
  participant caught in the in-doubt window keeps its locks and blocks;
* :func:`relaxed_system` — relaxed consistency (section 2.3): a
  participant caught in the window decides unilaterally, risking an
  incorrectly performed transaction.

Two protocols from the later literature join the bake-off as full
peers, sharing the simulation kernel and fault surface:

* :func:`paxos_commit_system` — Gray & Lamport's Paxos Commit
  (:mod:`repro.txn.paxos`): non-blocking at F faults via 2F+1 acceptors
  per transaction;
* :func:`path_sensitive_system` — coordination avoidance by
  pre-analysis (:mod:`repro.txn.pathsensitive`): order-invariant
  transactions commit locally without any commit protocol.

All constructors share every other parameter, so measured differences
are attributable to the protocol alone.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from repro.core.polyvalue import Value
from repro.txn.config import (
    CommitPolicy,
    ProtocolConfig,
    config_for_protocol,
)
from repro.txn.system import DistributedSystem

ItemId = str


def _build(
    policy: CommitPolicy,
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int,
    config: Optional[ProtocolConfig],
    **network_kwargs,
) -> DistributedSystem:
    base = config or ProtocolConfig()
    configured = dataclasses.replace(base, policy=policy)
    return DistributedSystem.build(
        sites=sites, items=items, seed=seed, config=configured, **network_kwargs
    )


def polyvalue_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """A system using the paper's polyvalue wait-timeout policy."""
    return _build(
        CommitPolicy.POLYVALUE,
        sites=sites,
        items=items,
        seed=seed,
        config=config,
        **network_kwargs,
    )


def blocking_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """The window-minimisation baseline: in-doubt participants block."""
    return _build(
        CommitPolicy.BLOCKING,
        sites=sites,
        items=items,
        seed=seed,
        config=config,
        **network_kwargs,
    )


def relaxed_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """The relaxed-consistency baseline: in-doubt participants guess."""
    return _build(
        CommitPolicy.RELAXED,
        sites=sites,
        items=items,
        seed=seed,
        config=config,
        **network_kwargs,
    )


def paxos_commit_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    fault_tolerance: Optional[int] = None,
    **network_kwargs,
) -> DistributedSystem:
    """A system running Paxos Commit (Gray & Lamport).

    *fault_tolerance* is F — the number of simultaneous acceptor faults
    a commit survives (2F+1 acceptors per transaction); None picks the
    largest F the site count supports.
    """
    configured = config_for_protocol("paxos", base=config)
    if fault_tolerance is not None:
        configured = dataclasses.replace(
            configured, paxos_fault_tolerance=fault_tolerance
        )
    return DistributedSystem.build(
        sites=sites, items=items, seed=seed, config=configured, **network_kwargs
    )


def path_sensitive_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """A system running path-sensitive commit (coordination avoidance).

    Order-invariant transactions bypass the commit protocol entirely;
    the rest fall back to the paper's polyvalue two-phase protocol.
    """
    configured = config_for_protocol("pathsensitive", base=config)
    return DistributedSystem.build(
        sites=sites, items=items, seed=seed, config=configured, **network_kwargs
    )
