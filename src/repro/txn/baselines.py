"""Convenience constructors for the three commit policies.

The paper positions polyvalues against the approaches of section 2; the
ablation benchmarks compare all three on identical workloads, seeds and
failure schedules:

* :func:`polyvalue_system` — the paper's mechanism (section 2.4/3);
* :func:`blocking_system` — window minimisation (section 2.2): a
  participant caught in the in-doubt window keeps its locks and blocks;
* :func:`relaxed_system` — relaxed consistency (section 2.3): a
  participant caught in the window decides unilaterally, risking an
  incorrectly performed transaction.

All three share every other parameter, so measured differences are
attributable to the wait-timeout policy alone.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from repro.core.polyvalue import Value
from repro.txn.runtime import CommitPolicy, ProtocolConfig
from repro.txn.system import DistributedSystem

ItemId = str


def _build(
    policy: CommitPolicy,
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int,
    config: Optional[ProtocolConfig],
    **network_kwargs,
) -> DistributedSystem:
    base = config or ProtocolConfig()
    configured = dataclasses.replace(base, policy=policy)
    return DistributedSystem.build(
        sites=sites, items=items, seed=seed, config=configured, **network_kwargs
    )


def polyvalue_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """A system using the paper's polyvalue wait-timeout policy."""
    return _build(
        CommitPolicy.POLYVALUE,
        sites=sites,
        items=items,
        seed=seed,
        config=config,
        **network_kwargs,
    )


def blocking_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """The window-minimisation baseline: in-doubt participants block."""
    return _build(
        CommitPolicy.BLOCKING,
        sites=sites,
        items=items,
        seed=seed,
        config=config,
        **network_kwargs,
    )


def relaxed_system(
    *,
    sites: int,
    items: Mapping[ItemId, Value],
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """The relaxed-consistency baseline: in-doubt participants guess."""
    return _build(
        CommitPolicy.RELAXED,
        sites=sites,
        items=items,
        seed=seed,
        config=config,
        **network_kwargs,
    )
