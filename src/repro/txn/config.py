"""Commit-protocol configuration: policies, protocols, and tunables.

:class:`ProtocolConfig` gathers every tunable of the commit protocol —
most importantly the *commit policy*, which selects between the paper's
mechanism and the two baseline behaviours of section 2:

* ``POLYVALUE`` — a participant whose wait phase times out installs
  polyvalues and releases its locks (section 3.1);
* ``BLOCKING`` — the classic window-minimisation baseline: the
  participant keeps its locks and blocks the items until the outcome is
  learned (section 2.2);
* ``RELAXED`` — the relaxed-consistency baseline: the participant makes
  an arbitrary unilateral decision (section 2.3); the simulator records
  when that decision disagrees with the coordinator's.

Configuration is pure data: nothing here touches a clock, a network, or
a runtime, which is why the runtime redesign split it out of
:mod:`repro.txn.runtime` (the old import path still works through a
:class:`DeprecationWarning` shim).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional

from repro.txn.timeouts import RetryPolicy, TimeoutPolicy


class CommitPolicy(enum.Enum):
    """What a participant does when its wait phase times out."""

    POLYVALUE = "polyvalue"
    BLOCKING = "blocking"
    RELAXED = "relaxed"


class CommitProtocol(enum.Enum):
    """Which atomic-commitment protocol the system runs.

    * ``TWO_PHASE`` — the paper's two-phase commit; the
      :class:`CommitPolicy` selects what a participant does when its
      wait phase times out (polyvalues, blocking, or relaxed).
    * ``PAXOS`` — Paxos Commit (Gray & Lamport, "Consensus on
      Transaction Commit"): each participant's prepared/aborted vote is
      decided by its own Paxos instance over 2F+1 acceptors, so the
      commit decision survives any F simultaneous faults and no site
      ever blocks on a single coordinator.
    * ``PATH_SENSITIVE`` — path-sensitive commit (after Soethout et
      al.'s local coordination avoidance): transactions whose outcome
      is invariant across serialization orders are detected by
      pre-analysis (:mod:`repro.txn.preanalysis` plus finite-difference
      probing) and decided locally without any coordination round;
      only the coordination-requiring residue runs two-phase commit.
    """

    TWO_PHASE = "two-phase"
    PAXOS = "paxos"
    PATH_SENSITIVE = "path-sensitive"


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the update protocol.

    All durations are in runtime seconds — simulated seconds on the sim
    kernel, wall-clock seconds on the live asyncio runtime.  The
    defaults suit a LAN-ish network (10 ms base latency): the protocol
    normally finishes in a few tens of milliseconds, so "promptly" —
    the paper's word for both participant and coordinator patience —
    defaults to half a second.
    """

    policy: CommitPolicy = CommitPolicy.POLYVALUE
    #: Participant patience in the compute phase: how long a site that
    #: acquired read locks waits for the coordinator's stage request (or
    #: abort) before discarding the transaction (Figure 1, compute→idle).
    compute_timeout: float = 0.5
    #: Participant patience in the wait phase: how long after sending
    #: *ready* a site waits for complete/abort before applying its
    #: policy (Figure 1, wait→idle with polyvalue installation).
    wait_timeout: float = 0.5
    #: Coordinator patience: how long it waits for all read replies, and
    #: then for all ready messages, before deciding to abort.
    ready_timeout: float = 0.4
    #: How often a site holding unresolved polyvalues (or blocked
    #: transactions) re-queries coordinators for outcomes.
    outcome_query_interval: float = 1.0
    #: RELAXED policy only: probability the unilateral decision is
    #: "complete" (the paper calls the choice arbitrary).
    relaxed_commit_probability: float = 1.0
    #: POLYVALUE policy: how many times a wait-phase participant asks
    #: the coordinator for the outcome (re-arming its timer) before
    #: giving up and installing polyvalues.  This implements the
    #: paper's §6 remark that "the polyvalue mechanism can be combined
    #: with other atomic distributed update protocols to decrease the
    #: chance that polyvalues will be created": transient hiccups (a
    #: lost complete message, a short partition) resolve within a retry
    #: or two, and only genuine outages produce polyvalues.  0 installs
    #: immediately at the first timeout, as in section 3.1.
    wait_query_retries: int = 0
    #: Cap on polytransaction fan-out (section 3.2 alternatives).
    max_alternatives: int = 1024
    #: How the three patience constants above are interpreted: the
    #: default fixed policy uses them verbatim (bit-for-bit replayable);
    #: an adaptive policy treats them as pre-sample fallbacks and feeds
    #: per-peer Jacobson RTT estimators into every timeout (see
    #: :mod:`repro.txn.timeouts`).
    timeout_policy: TimeoutPolicy = TimeoutPolicy()
    #: Bounded retransmission for the outcome-maintenance loop:
    #: per-destination exponential backoff with deterministic jitter
    #: and a down-peer suppression window.
    retry: RetryPolicy = RetryPolicy()
    #: Graceful-degradation valve (the paper's §6 hybrid): when set, a
    #: site already holding this many unresolved polyvalues answers new
    #: wait-phase timeouts with the BLOCKING policy instead of
    #: installing more — bounding in-doubt state under overload at the
    #: cost of availability on the affected items.  None disables.
    polyvalue_budget: Optional[int] = None
    #: Fault injection for the correctness harness (repro.check) ONLY.
    #: None in any real configuration.  When set to a fault name (see
    #: :data:`repro.check.mutation.FAULTS`), the participant's
    #: wait-phase branch deliberately misbehaves so the mutation smoke
    #: test can prove the invariant oracles detect protocol bugs.
    wait_phase_fault: Optional[str] = None
    #: Which commit protocol the system runs.  ``TWO_PHASE`` keeps the
    #: paper's protocol (modulated by :attr:`policy`); ``PAXOS`` and
    #: ``PATH_SENSITIVE`` select the bake-off peers.
    protocol: CommitProtocol = CommitProtocol.TWO_PHASE
    #: PAXOS only: the number of simultaneous acceptor faults the
    #: commit must survive.  The acceptor set has 2F+1 members drawn
    #: round-robin from the sites; None sizes F to the largest value
    #: the site count supports, ``(n_sites - 1) // 2``.
    paxos_fault_tolerance: Optional[int] = None
    #: PAXOS only: how long a wait-phase participant waits for the
    #: leader's decision before starting leader failover (running
    #: Phase 1 itself with a higher ballot).
    paxos_failover_timeout: float = 0.5
    #: Fault injection for the Paxos state machine (repro.check ONLY):
    #: ``"acceptor-no-persist"`` makes acceptors acknowledge Phase 2a
    #: without persisting, so failover can resurrect a forgotten vote
    #: and contradict the fast-path decision.
    paxos_fault: Optional[str] = None
    #: Fault injection for the path-sensitive analyser (repro.check
    #: ONLY): ``"misclassify-one"`` forces the first
    #: coordination-requiring transaction onto the local fast path, so
    #: the effect oracles can prove they catch a wrong classification.
    path_fault: Optional[str] = None

    @property
    def protocol_kind(self) -> str:
        """The oracle-dispatch name of this configuration's protocol.

        One of ``{"polyvalue", "blocking", "relaxed", "paxos",
        "pathsensitive"}`` — the same vocabulary the CLI's
        ``--protocol`` flag uses.  Oracles dispatch on this rather
        than on (protocol, policy) pairs.
        """
        if self.protocol is CommitProtocol.PAXOS:
            return "paxos"
        if self.protocol is CommitProtocol.PATH_SENSITIVE:
            return "pathsensitive"
        return self.policy.value


#: The CLI's ``--protocol`` vocabulary, in presentation order.
PROTOCOL_NAMES = (
    "polyvalue",
    "blocking",
    "relaxed",
    "paxos",
    "pathsensitive",
)


def config_for_protocol(
    name: str, base: Optional[ProtocolConfig] = None
) -> ProtocolConfig:
    """A :class:`ProtocolConfig` for one of the five ``--protocol`` names.

    *base* supplies every other tunable (timeouts, retry policy, fault
    hooks); only the (protocol, policy) pair is rewritten.  The
    path-sensitive residue path runs the polyvalue policy so its
    coordinated transactions inherit the paper's availability story.
    """
    base = base if base is not None else ProtocolConfig()
    if name == "polyvalue":
        return dataclasses.replace(
            base, protocol=CommitProtocol.TWO_PHASE,
            policy=CommitPolicy.POLYVALUE,
        )
    if name == "blocking":
        return dataclasses.replace(
            base, protocol=CommitProtocol.TWO_PHASE,
            policy=CommitPolicy.BLOCKING,
        )
    if name == "relaxed":
        return dataclasses.replace(
            base, protocol=CommitProtocol.TWO_PHASE,
            policy=CommitPolicy.RELAXED,
        )
    if name == "paxos":
        return dataclasses.replace(
            base, protocol=CommitProtocol.PAXOS,
            policy=CommitPolicy.BLOCKING,
        )
    if name == "pathsensitive":
        return dataclasses.replace(
            base, protocol=CommitProtocol.PATH_SENSITIVE,
            policy=CommitPolicy.POLYVALUE,
        )
    raise ValueError(
        f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}"
    )
