"""The coordinator role: driving one transaction through the protocol.

The coordinator implements the paper's simple decision rule: "After the
transaction coordinator has received ready messages from all sites
involved in the transaction, it sends out complete messages to all of
those sites.  If ready messages are not promptly received by the
coordinator, then the coordinator sends out abort messages to all
sites."

Our compute phase has two sub-steps (both inside the paper's "compute"):

1. **read** — the coordinator asks every involved site for the current
   values of the transaction's declared items; sites answer with values
   that may include polyvalues.
2. **stage** — the coordinator executes the transaction body through the
   polytransaction engine (:mod:`repro.core.polytransaction`), ships the
   computed updates to the sites that store them, and waits for *ready*
   from every involved site.

Commit decisions are recorded in the durable
:class:`~repro.core.outcome.OutcomeLog` *before* complete messages are
sent, and garbage-collected once every participant acknowledges — abort
decisions are not logged at all (presumed abort): a query about an
unknown transaction is answered "aborted".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core import polytransaction
from repro.core.errors import ConditionError, PolyvalueError, TransactionError
from repro.core.polytransaction import TooManyAlternativesError
from repro.core.polyvalue import depends_on, is_polyvalue, reduce_value
from repro.runtime.base import TimerHandle
from repro.txn import protocol
from repro.txn.runtime import SiteRuntime
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnId,
    make_txn_id,
)

ItemId = str


class _Phase(enum.Enum):
    READING = "reading"
    STAGING = "staging"
    DECIDED = "decided"


@dataclass
class _CoordTxn:
    """Volatile per-transaction coordinator state."""

    txn: TxnId
    transaction: Transaction
    handle: TransactionHandle
    involved: Dict[str, List[ItemId]]
    phase: _Phase = _Phase.READING
    awaiting: Set[str] = field(default_factory=set)
    values: Dict[ItemId, Any] = field(default_factory=dict)
    outputs: Dict[str, Any] = field(default_factory=dict)
    timer: Optional[TimerHandle] = None
    #: When the current phase's request went out to each site — the
    #: reply closes a per-peer round-trip sample for adaptive patience.
    sent_at: Dict[str, float] = field(default_factory=dict)

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class Coordinator:
    """One site's coordinator role across the transactions it initiates."""

    def __init__(self, runtime: SiteRuntime) -> None:
        self._rt = runtime
        self._active: Dict[TxnId, _CoordTxn] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def active_transactions(self) -> Set[TxnId]:
        """Transactions this coordinator is currently driving."""
        return set(self._active)

    @property
    def sequence(self) -> int:
        """The durable transaction-id counter (checkpointed so a
        restarted live coordinator never reuses a txn id)."""
        return self._sequence

    def restore_sequence(self, sequence: int) -> None:
        """Overwrite the txn-id counter from a checkpoint."""
        self._sequence = sequence

    def phase_of(self, txn: TxnId) -> Optional[str]:
        """The protocol phase *txn* is in at this coordinator.

        ``"reading"`` / ``"staging"`` while active, None once decided
        (or never known here).  The schedule explorer's small-scope
        enumeration uses this to label which phase a crash landed in.
        """
        record = self._active.get(txn)
        return record.phase.value if record is not None else None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def begin(self, transaction: Transaction, handle: TransactionHandle) -> TxnId:
        """Start coordinating *transaction*; returns its new identifier."""
        rt = self._rt
        self._sequence += 1
        txn = make_txn_id(self._sequence, rt.site_id)
        handle.txn = txn
        involved = rt.catalog.group_by_site(transaction.items)
        record = _CoordTxn(
            txn=txn,
            transaction=transaction,
            handle=handle,
            involved=involved,
            awaiting=set(involved),
        )
        self._active[txn] = record
        rt.metrics.txn_submitted(site=rt.site_id)
        if rt.bus:
            rt.bus.emit(
                "txn.submitted",
                time=rt.now,
                txn=txn,
                site=rt.site_id,
                items=tuple(transaction.items),
                sites=tuple(sorted(involved)),
            )
            rt.bus.emit("phase.read.start", time=rt.now, txn=txn, site=rt.site_id)
        for site, items in involved.items():
            record.sent_at[site] = rt.now
            rt.send(site, protocol.ReadRequest(txn=txn, items=tuple(items)))
        record.timer = rt.schedule(
            rt.patience.timeout_over(involved, rt.config.ready_timeout),
            lambda: self._phase_timeout(txn),
            label=f"coord-read-timeout:{txn}",
        )
        return txn

    # ------------------------------------------------------------------
    # Compute phase, step 1: reads
    # ------------------------------------------------------------------

    def handle_read_reply(self, message: protocol.ReadReply) -> None:
        record = self._active.get(message.txn)
        if record is None or record.phase is not _Phase.READING:
            return
        if message.site in record.awaiting:
            sent = record.sent_at.get(message.site)
            if sent is not None:
                self._rt.patience.observe(message.site, self._rt.now - sent)
        if not message.ok:
            self._decide_abort(record, f"read refused by {message.site}: {message.reason}")
            return
        if message.site not in record.awaiting:
            return  # duplicate
        # Reduce incoming polyvalues with outcomes this site already
        # knows — closes the race where a forwarded notification beat
        # the data it concerns.
        for item, value in message.values.items():
            record.values[item] = reduce_value(value, self._rt.known_outcomes)
        record.awaiting.discard(message.site)
        if not record.awaiting:
            self._execute_and_stage(record)

    def _execute_and_stage(self, record: _CoordTxn) -> None:
        rt = self._rt
        record.cancel_timer()
        # Everything that can blow up on pathological in-doubt fan-out
        # lives inside this try: ``execute`` raises
        # TooManyAlternativesError past ``max_alternatives``, and the
        # merge steps re-validate the combined condition sets, which can
        # raise PolyvalueError/ConditionError on the same inputs.  All
        # of it must become a clean abort — an exception escaping here
        # would unwind the site's message handler out of the simulator.
        try:
            result = polytransaction.execute(
                record.transaction.body,
                record.values,
                max_alternatives=rt.config.max_alternatives,
            )
            writes = result.merged_writes(record.values)
            outputs = result.merged_outputs()
        except TooManyAlternativesError as error:
            rt.metrics.fanout_overflow(site=rt.site_id)
            if rt.bus:
                rt.bus.emit(
                    "txn.overflow",
                    time=rt.now,
                    txn=record.txn,
                    site=rt.site_id,
                    limit=rt.config.max_alternatives,
                )
            self._decide_abort(record, f"fan-out overflow: {error}")
            return
        except (TransactionError, PolyvalueError, ConditionError) as error:
            self._decide_abort(record, f"body failed: {error}")
            return
        if not result.is_simple():
            record.handle.was_polytransaction = True
            rt.metrics.txn_was_poly(
                fanout=len(result.alternatives), site=rt.site_id
            )
        record.outputs = outputs
        by_site = rt.catalog.group_by_site(writes)
        record.phase = _Phase.STAGING
        if rt.bus:
            rt.bus.emit(
                "phase.stage.start",
                time=rt.now,
                txn=record.txn,
                site=rt.site_id,
                writes=tuple(sorted(writes)),
            )
        record.awaiting = set(record.involved)
        record.sent_at = {}
        for site in record.involved:
            site_writes = {
                item: writes[item] for item in by_site.get(site, ())
            }
            # Section 3.3 forwarding: this site is about to hand
            # polyvalues to another site and becomes responsible for
            # relaying the relevant outcomes there.
            for value in site_writes.values():
                for in_doubt in depends_on(value):
                    if site != rt.site_id:
                        rt.outcomes.record_forward(in_doubt, site)
            record.sent_at[site] = rt.now
            rt.send(
                site,
                protocol.StageRequest(
                    txn=record.txn, coordinator=rt.site_id, writes=site_writes
                ),
            )
        record.timer = rt.schedule(
            rt.patience.timeout_over(record.involved, rt.config.ready_timeout),
            lambda: self._phase_timeout(record.txn),
            label=f"coord-ready-timeout:{record.txn}",
        )

    # ------------------------------------------------------------------
    # Compute phase, step 2: readiness
    # ------------------------------------------------------------------

    def handle_ready(self, message: protocol.Ready) -> None:
        record = self._active.get(message.txn)
        if record is None or record.phase is not _Phase.STAGING:
            return
        if message.site in record.awaiting:
            sent = record.sent_at.get(message.site)
            if sent is not None:
                self._rt.patience.observe(message.site, self._rt.now - sent)
        record.awaiting.discard(message.site)
        if not record.awaiting:
            self._decide_complete(record)

    def handle_refuse(self, message: protocol.Refuse) -> None:
        record = self._active.get(message.txn)
        if record is None or record.phase is _Phase.DECIDED:
            return
        self._decide_abort(
            record, f"stage refused by {message.site}: {message.reason}"
        )

    def _phase_timeout(self, txn: TxnId) -> None:
        record = self._active.get(txn)
        if record is None or record.phase is _Phase.DECIDED:
            return
        # Karn backoff: the peers that failed to answer within the
        # adaptive timeout never produce the sample that would stretch
        # it, so stretch it explicitly or a latency step up aborts
        # every subsequent transaction too.
        for site in record.awaiting:
            self._rt.patience.penalize(site)
        missing = ", ".join(sorted(record.awaiting))
        record.handle.was_delayed_by_failure = True
        self._decide_abort(
            record,
            f"timeout in {record.phase.value} phase waiting for: {missing}",
        )

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide_complete(self, record: _CoordTxn) -> None:
        rt = self._rt
        record.cancel_timer()
        record.phase = _Phase.DECIDED
        # Durable commit record first, then the complete messages: a
        # crash between the two leaves participants able to learn the
        # true outcome by querying.
        rt.outcome_log.decide(record.txn, True, participants=record.involved)
        rt.known_outcomes[record.txn] = True
        for site in record.involved:
            rt.send(site, protocol.Complete(txn=record.txn))
        record.handle.mark_committed(rt.now, record.outputs)
        rt.metrics.txn_committed(record.handle.latency or 0.0, site=rt.site_id)
        for value in record.outputs.values():
            rt.metrics.output_produced(certain=not is_polyvalue(value))
        if rt.bus:
            rt.bus.emit(
                "txn.committed",
                time=rt.now,
                txn=record.txn,
                site=rt.site_id,
                latency=record.handle.latency or 0.0,
            )
        del self._active[record.txn]

    def _decide_abort(self, record: _CoordTxn, reason: str) -> None:
        rt = self._rt
        record.cancel_timer()
        record.phase = _Phase.DECIDED
        # Presumed abort: nothing is logged; queries about unknown
        # transactions are answered "aborted".
        rt.known_outcomes[record.txn] = False
        for site in record.involved:
            rt.send(site, protocol.Abort(txn=record.txn))
        record.handle.mark_aborted(rt.now, reason)
        rt.metrics.txn_aborted(site=rt.site_id)
        if rt.bus:
            rt.bus.emit(
                "txn.aborted",
                time=rt.now,
                txn=record.txn,
                site=rt.site_id,
                reason=reason,
            )
        del self._active[record.txn]

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def on_crash(self) -> List[TransactionHandle]:
        """Lose all in-flight coordination state.

        Returns the handles of the transactions that were still
        undecided; the system facade marks them aborted (presumed
        abort — participants converge to the same outcome by querying).
        """
        undecided = [record.handle for record in self._active.values()]
        for record in self._active.values():
            record.cancel_timer()
        self._active.clear()
        return undecided
