"""The participant role: one site's side of the update protocol.

This class realises the Figure-1 state machine.  For each transaction a
site is involved in, the site is in one of three states:

* **idle** — no work for that transaction;
* **compute** — the site has received the coordinator's read request,
  holds read locks, and (after the stage request arrives) stages the
  computed updates;
* **wait** — the site has sent *ready* and awaits *complete* or *abort*.

Every edge of the figure is implemented and logged to the shared
:class:`~repro.txn.runtime.TransitionLog`:

* idle → compute on the coordinator's read request (``begin``);
* compute → wait when staging succeeds (``ready``);
* compute → idle on an abort or a compute-phase timeout (discarding
  "as if the transaction ... had never occurred", section 3.1);
* wait → idle on *complete* (install), on *abort* (discard), or on the
  wait-phase timeout — whose behaviour is the whole point of the paper
  and is selected by the :class:`~repro.txn.runtime.CommitPolicy`:

  - POLYVALUE installs ``{<new, T>, <old, ~T>}`` for every staged item
    and **releases the locks**;
  - BLOCKING keeps the locks and stays in wait until the outcome is
    learned (the window-minimisation baseline);
  - RELAXED decides unilaterally (the relaxed-consistency baseline) and
    the simulator later scores the decision against the coordinator's.

Staged updates become durable when *ready* is sent (the participant
must survive its own crash while in doubt); all other per-transaction
state is volatile and lost on a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.polyvalue import Polyvalue
from repro.db.locks import LockMode
from repro.runtime.base import TimerHandle
from repro.txn import protocol
from repro.txn.config import CommitPolicy
from repro.txn.runtime import SiteRuntime, SiteState
from repro.txn.transaction import TxnId, coordinator_of

ItemId = str


@dataclass
class _ParticipantTxn:
    """Volatile per-transaction participant state."""

    txn: TxnId
    coordinator: str
    state: SiteState = SiteState.COMPUTE
    read_items: Tuple[ItemId, ...] = ()
    staged: Optional[Dict[ItemId, Any]] = None
    timer: Optional[TimerHandle] = None
    #: BLOCKING policy: when this record started holding its locks past
    #: the wait-phase timeout (for blocked-item-seconds accounting).
    blocked_since: Optional[float] = None
    #: POLYVALUE policy: outcome-query retries already spent in the
    #: wait phase (§6 combination; see ProtocolConfig.wait_query_retries).
    wait_retries_used: int = 0
    #: When this site answered the read request / sent ready — closed by
    #: the stage request / decision arrival into the phase-interval
    #: samples that feed adaptive patience.
    reply_sent_at: Optional[float] = None
    ready_sent_at: Optional[float] = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class Participant:
    """One site's participant role across all transactions."""

    def __init__(self, runtime: SiteRuntime) -> None:
        self._rt = runtime
        #: Volatile: live per-transaction records (compute/wait states).
        self._active: Dict[TxnId, _ParticipantTxn] = {}
        #: Durable: updates staged at ready time, kept until the
        #: transaction is decided or its polyvalues are installed.
        self._durable_staged: Dict[TxnId, Dict[ItemId, Any]] = {}
        #: Durable (RELAXED policy): unilateral decisions awaiting audit
        #: against the coordinator's actual outcome.
        self._unilateral: Dict[TxnId, bool] = {}
        #: Durable (BLOCKING policy): transactions blocked in wait,
        #: polled by the outcome-query loop.
        self._blocked: Set[TxnId] = set()

    # ------------------------------------------------------------------
    # Introspection (used by tests and benches)
    # ------------------------------------------------------------------

    def state_of(self, txn: TxnId) -> SiteState:
        """The Figure-1 state of this site for *txn* (IDLE if unknown)."""
        record = self._active.get(txn)
        return record.state if record is not None else SiteState.IDLE

    def blocked_transactions(self) -> Set[TxnId]:
        """BLOCKING policy: transactions currently holding their locks
        past a wait-phase timeout."""
        return set(self._blocked)

    def unaudited_unilateral(self) -> Dict[TxnId, bool]:
        """RELAXED policy: unilateral decisions not yet audited."""
        return dict(self._unilateral)

    def durable_staged(self) -> Dict[TxnId, Dict[ItemId, Any]]:
        """The staged-at-ready updates held durably (for checkpoints)."""
        return dict(self._durable_staged)

    def restore_durable(
        self,
        staged: Dict[TxnId, Dict[ItemId, Any]],
        unilateral: Dict[TxnId, bool],
    ) -> None:
        """Overwrite durable state from a checkpoint (site is down)."""
        self._durable_staged = dict(staged)
        self._unilateral = dict(unilateral)

    # ------------------------------------------------------------------
    # Compute phase
    # ------------------------------------------------------------------

    def handle_read_request(self, message: protocol.ReadRequest, sender: str) -> None:
        """Begin the compute phase: lock and return the requested values."""
        rt = self._rt
        txn = message.txn
        if txn in self._active:
            return  # duplicate delivery
        record = _ParticipantTxn(
            txn=txn, coordinator=sender, read_items=tuple(message.items)
        )
        self._active[txn] = record
        self._transition(record, SiteState.IDLE, SiteState.COMPUTE, "begin")
        for item in message.items:
            if not rt.locks.try_acquire(txn, item, LockMode.READ):
                rt.metrics.lock_conflict(site=rt.site_id)
                if rt.bus:
                    rt.bus.emit(
                        "lock.conflict",
                        time=rt.now,
                        txn=txn,
                        site=rt.site_id,
                        item=item,
                        mode="read",
                    )
                self._discard(record, "abort")
                rt.send(
                    sender,
                    protocol.ReadReply(
                        txn=txn,
                        site=rt.site_id,
                        ok=False,
                        reason=f"read-lock conflict on {item!r}",
                    ),
                )
                return
        values = rt.store.snapshot(message.items)
        # Section 3.3: polyvalues are about to leave this site — record
        # the coordinator as a destination to notify for every in-doubt
        # transaction they depend on.
        if sender != rt.site_id:
            for value in values.values():
                # Simple values depend on nothing; only polyvalues carry
                # in-doubt transactions that need forwarding.
                if isinstance(value, Polyvalue):
                    for in_doubt in value.depends_on():
                        rt.outcomes.record_forward(in_doubt, sender)
        rt.send(
            sender,
            protocol.ReadReply(txn=txn, site=rt.site_id, ok=True, values=values),
        )
        record.reply_sent_at = rt.now
        record.timer = rt.schedule(
            rt.patience.timeout_for(sender, rt.config.compute_timeout),
            lambda: self._compute_timeout(txn),
            label=f"compute-timeout:{txn}",
        )

    def handle_stage_request(self, message: protocol.StageRequest, sender: str) -> None:
        """Stage the coordinator's computed updates and send *ready*."""
        rt = self._rt
        txn = message.txn
        record = self._active.get(txn)
        if record is None or record.state is not SiteState.COMPUTE:
            # Already discarded (timeout) or duplicate; the coordinator's
            # own timeout will handle it.
            return
        record.cancel_timer()
        if record.reply_sent_at is not None:
            # One compute-phase interval: reply sent -> stage request
            # arrived.  This is exactly the span the compute timeout
            # must cover, coordinator processing included.
            rt.patience.observe(sender, rt.now - record.reply_sent_at)
            record.reply_sent_at = None
        for item in message.writes:
            if not rt.locks.try_acquire(txn, item, LockMode.WRITE):
                rt.metrics.lock_conflict(site=rt.site_id)
                if rt.bus:
                    rt.bus.emit(
                        "lock.conflict",
                        time=rt.now,
                        txn=txn,
                        site=rt.site_id,
                        item=item,
                        mode="write",
                    )
                self._discard(record, "abort")
                rt.send(
                    sender,
                    protocol.Refuse(
                        txn=txn,
                        site=rt.site_id,
                        reason=f"write-lock conflict on {item!r}",
                    ),
                )
                return
        staged = dict(message.writes)
        record.staged = staged
        self._durable_staged[txn] = staged
        record.state = SiteState.WAIT
        self._transition(record, SiteState.COMPUTE, SiteState.WAIT, "ready")
        rt.send(sender, protocol.Ready(txn=txn, site=rt.site_id))
        record.ready_sent_at = rt.now
        record.timer = rt.schedule(
            rt.patience.timeout_for(sender, rt.config.wait_timeout),
            lambda: self._wait_timeout(txn),
            label=f"wait-timeout:{txn}",
        )

    # ------------------------------------------------------------------
    # Decision messages
    # ------------------------------------------------------------------

    def handle_complete(self, message: protocol.Complete) -> None:
        """Install the staged updates; the transaction completed."""
        record = self._active.get(message.txn)
        if record is None or record.state is not SiteState.WAIT:
            return  # late/duplicate; outcome handling at the site level applies
        record.cancel_timer()
        self._observe_decision_interval(record)
        self._install_staged(message.txn, record.staged or {})
        self._transition(record, SiteState.WAIT, SiteState.IDLE, "complete")
        self._forget(message.txn)

    def handle_abort(self, message: protocol.Abort) -> None:
        """Discard any computation done for the transaction."""
        record = self._active.get(message.txn)
        if record is None:
            return
        record.cancel_timer()
        if record.state is SiteState.WAIT:
            self._observe_decision_interval(record)
        source = record.state
        self._transition(record, source, SiteState.IDLE, "abort")
        self._forget(message.txn)

    def _observe_decision_interval(self, record: _ParticipantTxn) -> None:
        """Close the wait-phase sample: ready sent -> decision arrived.

        This interval includes the *slowest other participant's* stage
        round — exactly what this site's wait patience must outlast, so
        it is the right sample even though it is not a pure network RTT.
        """
        if record.ready_sent_at is not None:
            self._rt.patience.observe(
                record.coordinator, self._rt.now - record.ready_sent_at
            )
            record.ready_sent_at = None

    # ------------------------------------------------------------------
    # Timeouts (the interesting part)
    # ------------------------------------------------------------------

    def _compute_timeout(self, txn: TxnId) -> None:
        record = self._active.get(txn)
        if record is None or record.state is not SiteState.COMPUTE:
            return
        # Karn backoff, mirroring the coordinator's: the stage request
        # that failed to arrive in time is the censored sample.
        self._rt.patience.penalize(record.coordinator)
        # Section 3.1: "that site simply discards the computation
        # performed for the transaction and continues processing
        # transactions as if the transaction interrupted by the failure
        # had never occurred."
        self._discard(record, "compute-timeout")

    def _wait_timeout(self, txn: TxnId) -> None:
        record = self._active.get(txn)
        if record is None or record.state is not SiteState.WAIT:
            return
        policy = self._rt.config.policy
        # Karn backoff: the decision that failed to arrive in time is
        # the censored sample (see Patience.penalize).
        self._rt.patience.penalize(record.coordinator)
        if policy is CommitPolicy.POLYVALUE:
            if record.wait_retries_used < self._rt.config.wait_query_retries:
                # §6 combination: ask the coordinator once more before
                # resorting to polyvalues — a lost complete message or a
                # healed blip resolves here without creating uncertainty.
                record.wait_retries_used += 1
                self._rt.send(
                    record.coordinator,
                    protocol.OutcomeQuery(txn=txn, requester=self._rt.site_id),
                )
                record.timer = self._rt.schedule(
                    self._rt.patience.timeout_for(
                        record.coordinator, self._rt.config.wait_timeout
                    ),
                    lambda: self._wait_timeout(txn),
                    label=f"wait-retry:{txn}",
                )
                return
            budget = self._rt.config.polyvalue_budget
            if (
                budget is not None
                and self._rt.store.polyvalue_count() >= budget
            ):
                # §6 hybrid, overload valve: this site already carries
                # its budget of unresolved polyvalues — fall back to the
                # blocking policy for this transaction instead of adding
                # uncertainty.  Availability on these items is traded
                # for a bound on in-doubt state; the outcome-query loop
                # resolves it like any blocked transaction.
                self._rt.metrics.overload_blocked(site=self._rt.site_id)
                if self._rt.bus:
                    self._rt.bus.emit(
                        "overload.block",
                        time=self._rt.now,
                        txn=txn,
                        site=self._rt.site_id,
                        budget=budget,
                        polyvalues=self._rt.store.polyvalue_count(),
                    )
                self._blocked.add(txn)
                record.blocked_since = self._rt.now
                return
            self._install_polyvalues(txn, record.staged or {})
            self._transition(record, SiteState.WAIT, SiteState.IDLE, "wait-timeout")
            self._forget(txn)
        elif policy is CommitPolicy.BLOCKING:
            # Keep the locks; the items stay unavailable until the
            # outcome is learned via the outcome-query loop.  No state
            # transition: the site remains in wait.
            self._blocked.add(txn)
            record.blocked_since = self._rt.now
        elif policy is CommitPolicy.RELAXED:
            commit = self._rt.config.relaxed_commit_probability >= 1.0
            if not commit:
                commit = self._relaxed_choice()
            self._rt.metrics.unilateral_decision()
            self._unilateral[txn] = commit
            if commit:
                self._install_staged(txn, record.staged or {})
            self._transition(record, SiteState.WAIT, SiteState.IDLE, "wait-timeout")
            self._forget(txn)

    def _relaxed_choice(self) -> bool:
        # The relaxed baseline's "arbitrary decision": deterministic
        # per-call alternation would bias experiments, so derive from the
        # configured probability via the shared metrics counter (cheap,
        # reproducible, and adequate for a baseline the paper dismisses).
        probability = self._rt.config.relaxed_commit_probability
        tick = self._rt.metrics.unilateral_decisions + 1
        return (tick * 0.6180339887498949) % 1.0 < probability

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Lose all volatile state (timers fire harmlessly via the guard).

        A compute-phase transaction dies with the crash — exactly the
        Figure-1 "failure discards the computation" edge, logged as
        such.  A wait-phase transaction survives in the durable staging
        log; its wait->idle transition is logged when recovery applies
        the wait-timeout policy.
        """
        for record in self._active.values():
            record.cancel_timer()
            if record.state is SiteState.COMPUTE:
                self._transition(
                    record, SiteState.COMPUTE, SiteState.IDLE, "compute-timeout"
                )
        self._active.clear()
        self._blocked.clear()

    def on_recover(self) -> None:
        """Re-handle transactions that were staged-and-in-doubt at crash.

        The durable staging log plays the role of Gray's participant
        log: for each staged transaction whose outcome this site never
        learned, apply the configured wait-timeout policy now (the
        outcome was certainly not received — the site was down).
        """
        policy = self._rt.config.policy
        for txn, staged in list(self._durable_staged.items()):
            if policy is CommitPolicy.POLYVALUE:
                self._install_polyvalues(txn, staged, live=False)
                self._log_recovery_timeout(txn)
                self._forget(txn)
            elif policy is CommitPolicy.BLOCKING:
                # Re-acquire the write locks (nothing else can have
                # locked the items while the site was down) and stay
                # blocked until the outcome query resolves it.
                for item in staged:
                    self._rt.locks.try_acquire(txn, item, LockMode.WRITE)
                record = _ParticipantTxn(
                    txn=txn,
                    coordinator=coordinator_of(txn),
                    state=SiteState.WAIT,
                    staged=dict(staged),
                    blocked_since=self._rt.now,
                )
                self._active[txn] = record
                self._blocked.add(txn)
            elif policy is CommitPolicy.RELAXED:
                self._rt.metrics.unilateral_decision()
                commit = self._relaxed_choice()
                self._unilateral[txn] = commit
                if commit:
                    self._install_staged(txn, staged)
                else:
                    self._forget(txn)
                self._log_recovery_timeout(txn)

    # ------------------------------------------------------------------
    # Outcome learned later (blocking/relaxed resolution, audits)
    # ------------------------------------------------------------------

    def handle_outcome_known(self, txn: TxnId, committed: bool) -> None:
        """React to an outcome learned outside the normal wait phase.

        * BLOCKING: finally install/discard and release the locks.
        * RELAXED: audit the earlier unilateral decision.
        * POLYVALUE: nothing to do here — polyvalue reduction happens at
          the site level through the outcome table.
        """
        self._blocked.discard(txn)
        record = self._active.get(txn)
        if record is not None and record.state is SiteState.WAIT:
            # Covers both the BLOCKING policy (locks held across the
            # window) and a POLYVALUE participant still in its §6
            # query-retry loop: the outcome arrived, so finish normally.
            record.cancel_timer()
            if record.blocked_since is not None:
                blocked_for = self._rt.now - record.blocked_since
                item_count = len(record.staged or {})
                self._rt.metrics.add_blocked_item_seconds(
                    blocked_for * item_count
                )
            if committed:
                self._install_staged(txn, record.staged or {})
                self._transition(record, SiteState.WAIT, SiteState.IDLE, "complete")
            else:
                self._transition(record, SiteState.WAIT, SiteState.IDLE, "abort")
            self._forget(txn)
        if txn in self._unilateral:
            decided = self._unilateral.pop(txn)
            if decided != committed:
                self._rt.metrics.inconsistent_decision()
            self._durable_staged.pop(txn, None)

    def pending_outcome_queries(self) -> Set[TxnId]:
        """Transactions whose outcome this participant still needs."""
        return set(self._blocked) | set(self._unilateral)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _install_staged(self, txn: TxnId, staged: Dict[ItemId, Any]) -> None:
        rt = self._rt
        for item, value in staged.items():
            rt.apply_write(item, value)
        rt.locks.release_all(txn)
        self._durable_staged.pop(txn, None)

    def _install_polyvalues(
        self, txn: TxnId, staged: Dict[ItemId, Any], *, live: bool = True
    ) -> None:
        """The paper's wait-timeout action: ``{<new, T>, <old, ~T>}``.

        The staged ``new`` value may itself be a polyvalue (the
        transaction ran as a polytransaction); flattening in the
        Polyvalue constructor produces the combined conditions.  Locks
        are released — the items become available immediately.

        *live* distinguishes a wait-timeout on a running site (the §4
        model's failure event: uncertainty persists until the remote
        failure recovers) from a crash-recovery replay (where recovery
        has already happened and the outcome resolves moments later);
        only live windows feed the measured-F cross-validation.
        """
        rt = self._rt
        fault = rt.config.wait_phase_fault
        if fault is not None and staged:
            # Deliberately-wrong branches, reachable only when the
            # correctness harness arms ProtocolConfig.wait_phase_fault.
            # They exist to prove the repro.check oracles catch real
            # protocol bugs (mutation smoke test); see
            # repro.check.mutation for the catalogue.
            if fault == "unilateral-commit":
                # BUG (intentional): treat the timeout as a commit and
                # install the new values as simple values.  If the
                # coordinator in fact aborted, the update survives —
                # serial equivalence is violated.
                self._install_staged(txn, staged)
                return
            if fault == "overlapping-conditions":
                # BUG (intentional): install ``{<new, T>, <old, TRUE>}``
                # instead of ``{<new, T>, <old, ~T>}`` — the condition
                # set is no longer disjoint.
                from repro.core.conditions import Condition

                for item, new_value in staged.items():
                    old_value = rt.store.read(item)
                    malformed = Polyvalue(
                        [
                            (new_value, Condition.of(txn)),
                            (old_value, Condition.true()),
                        ],
                        validate=False,
                    )
                    rt.store.write(item, malformed)
                rt.locks.release_all(txn)
                self._durable_staged.pop(txn, None)
                rt.direct_doubts.add(txn)
                return
            if fault == "keep-locks":
                # BUG (intentional): install the polyvalues but leak the
                # write locks (re-acquired under a phantom owner no code
                # path ever releases) — the paper's availability claim
                # (polyvalued items stay writable) is violated.
                for item, new_value in staged.items():
                    old_value = rt.store.read(item)
                    rt.apply_write(
                        item, Polyvalue.in_doubt(txn, new_value, old_value)
                    )
                rt.locks.release_all(txn)
                for item in staged:
                    rt.locks.try_acquire(f"fault:{txn}", item, LockMode.WRITE)
                self._durable_staged.pop(txn, None)
                rt.direct_doubts.add(txn)
                return
            raise ValueError(f"unknown wait_phase_fault {fault!r}")
        if staged and live:
            # Read-only participants have nothing at stake; only a
            # participant with staged updates experienced a real
            # in-doubt window in the §4 model's sense.
            rt.metrics.in_doubt_opened(rt.now, site=rt.site_id, txn=txn)
        if staged and rt.bus:
            rt.bus.emit(
                "indoubt.open",
                time=rt.now,
                txn=txn,
                site=rt.site_id,
                items=tuple(sorted(staged)),
                live=live,
            )
        for item, new_value in staged.items():
            old_value = rt.store.read(item)
            in_doubt = Polyvalue.in_doubt(txn, new_value, old_value)
            rt.apply_write(item, in_doubt)
        rt.locks.release_all(txn)
        self._durable_staged.pop(txn, None)
        # This site was a direct participant of the in-doubt transaction:
        # it is entitled to query the coordinator for the outcome (and,
        # unlike sites that merely received forwarded polyvalues, it is
        # covered by the coordinator's outcome-log retention).
        rt.direct_doubts.add(txn)

    def _log_recovery_timeout(self, txn: TxnId) -> None:
        """Log the wait->idle edge for a transaction resolved at recovery.

        The site conceptually stayed in its wait phase across the
        outage (the staging log is durable); applying the policy at
        recovery is the Figure-1 wait-timeout transition.
        """
        self._rt.transitions.record(
            time=self._rt.now,
            site=self._rt.site_id,
            txn=txn,
            source=SiteState.WAIT,
            target=SiteState.IDLE,
            trigger="wait-timeout",
        )

    def _discard(self, record: _ParticipantTxn, trigger: str) -> None:
        record.cancel_timer()
        self._transition(record, record.state, SiteState.IDLE, trigger)
        self._forget(record.txn)

    def _forget(self, txn: TxnId) -> None:
        self._rt.locks.release_all(txn)
        self._active.pop(txn, None)
        self._durable_staged.pop(txn, None)

    def _transition(
        self,
        record: _ParticipantTxn,
        source: SiteState,
        target: SiteState,
        trigger: str,
    ) -> None:
        record.state = target
        self._rt.transitions.record(
            time=self._rt.now,
            site=self._rt.site_id,
            txn=record.txn,
            source=source,
            target=target,
            trigger=trigger,
        )
