"""Path-sensitive commit — coordination avoidance by pre-analysis.

The second bake-off peer, after Soethout et al.'s path-sensitive
LoCA ("local coordination avoidance") line of work: instead of running
an atomic-commitment protocol for every transaction, **pre-analyse the
transaction's possible execution paths** and skip coordination whenever
the outcome provably cannot depend on the serialization order.  Three
routes, decided at submit time:

* **local** — every declared item lives at the submitting site
  (:func:`repro.txn.preanalysis.classify`): execute and commit in
  place, zero protocol messages;
* **decomposable** — the transaction's effect on every written item is
  a *state-independent delta* (discovered by finite-difference probing
  of the body, see :func:`decompose`): commit immediately at the
  submitting site and ship one idempotent ``LocalApply(item, delta)``
  effect per remote item — deltas commute, so no serialization point
  is needed (this is the paper-family's "sum-splitting" of transfers
  and increments);
* **coordinated** — anything whose writes or outputs are path-sensitive
  (a copy, a threshold branch) falls back to the unchanged polyvalue
  two-phase protocol of the base site.

The trade is explicit and measured rather than hidden: decomposable
transactions give up strict serializability (a coordinated reader can
observe a state where a transfer's debit has landed but its credit has
not) in exchange for immediate commit and per-item message cost.  The
correctness contract the harness checks is therefore not serial
equivalence but **effect conservation**: every declared delta of every
committed fast-path transaction is applied exactly once, nowhere twice,
and the system converges with no pending effects.  The classification
itself is re-audited by the oracles (a misclassified path is a protocol
bug, exercised by the ``misclassify-one`` mutation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core import polytransaction
from repro.core.errors import (
    ConditionError,
    PolyvalueError,
    TransactionError,
)
from repro.core.polytransaction import TooManyAlternativesError
from repro.core.polyvalue import is_polyvalue
from repro.db.locks import LockMode
from repro.net.message import SiteId
from repro.txn import preanalysis, protocol
from repro.txn.runtime import SiteRuntime
from repro.txn.site import DatabaseSite
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnId,
    make_txn_id,
)

ItemId = str


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LocalApply(protocol.ProtocolMessage):
    """One decomposed effect: add *delta* to *item* (idempotent per txn)."""

    item: ItemId
    delta: Any
    origin: SiteId


@dataclass(frozen=True)
class LocalApplyAck(protocol.ProtocolMessage):
    """The receiving site durably applied (or already had) the effect."""

    item: ItemId
    site: SiteId


# ----------------------------------------------------------------------
# Pre-analysis: the path-sensitivity probe
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Decomposition:
    """A successful probe: state-independent per-item deltas."""

    deltas: Dict[ItemId, Any]
    outputs: Dict[str, Any]


def _probe_snapshots(items: Tuple[ItemId, ...]) -> List[Dict[ItemId, Any]]:
    """Synthetic database states that try to flip any hidden branch.

    One base state, per-item positive and large-negative perturbations
    (to cross plausible thresholds in either direction), and a global
    shift.  All deterministic: classification must not depend on run
    order or randomness.
    """
    base = {item: 1009 + 97 * index for index, item in enumerate(items)}
    snapshots = [dict(base)]
    for item in items:
        for perturbation in (211, -100003):
            perturbed = dict(base)
            perturbed[item] += perturbation
            snapshots.append(perturbed)
    snapshots.append({item: value + 557 for item, value in base.items()})
    return snapshots


def _probe_once(
    transaction: Transaction, snapshot: Dict[ItemId, Any]
) -> Optional[Tuple[frozenset, Dict[ItemId, Any], Dict[str, Any]]]:
    """One trial run: (written set, deltas, outputs), or None if the
    body fails or writes anything non-numeric."""
    try:
        result = polytransaction.execute(transaction.body, snapshot)
        writes = result.merged_writes(snapshot)
        outputs = result.merged_outputs()
    except (
        TransactionError,
        PolyvalueError,
        ConditionError,
        TooManyAlternativesError,
    ):
        return None
    deltas: Dict[ItemId, Any] = {}
    for item, value in writes.items():
        old = snapshot.get(item)
        for number in (value, old):
            if isinstance(number, bool) or not isinstance(number, (int, float)):
                return None
        deltas[item] = value - old
    return frozenset(writes), deltas, outputs


def decompose(transaction: Transaction) -> Optional[Decomposition]:
    """Finite-difference probe for order-invariance.

    A transaction is decomposable iff, across every probe snapshot, it
    writes the same item set, with the same per-item delta, and the
    same outputs.  Then its effect anywhere in any serialization order
    is exactly "add these deltas" — the condition under which skipping
    coordination cannot change the final state.  Conservative by
    construction: a single divergent probe (a branch taken, a copy, a
    value-dependent output) disqualifies the transaction.
    """
    items = tuple(sorted(transaction.items))
    reference = None
    for snapshot in _probe_snapshots(items):
        probe = _probe_once(transaction, snapshot)
        if probe is None:
            return None
        if reference is None:
            reference = probe
        elif probe != reference:
            return None
    if reference is None:
        return None
    return Decomposition(deltas=dict(reference[1]), outputs=dict(reference[2]))


def _decompose_unsound(transaction: Transaction) -> Optional[Decomposition]:
    """BUG (intentional, mutation smoke only): a single-snapshot probe.

    This is the classic pre-analysis mistake — profiling one path and
    believing it.  Used by the ``misclassify-one`` fault to force a
    genuinely path-sensitive transaction onto the fast path, so the
    harness can prove the classification-audit oracle catches it.
    """
    items = tuple(sorted(transaction.items))
    probe = _probe_once(transaction, _probe_snapshots(items)[0])
    if probe is None:
        return None
    return Decomposition(deltas=dict(probe[1]), outputs=dict(probe[2]))


# ----------------------------------------------------------------------
# System-level routing registry (for clients, tests, and oracles)
# ----------------------------------------------------------------------


@dataclass
class PathDecision:
    """How one transaction was routed, and with what claimed effect."""

    kind: str  # "local" | "decomposable" | "coordinated"
    transaction: Transaction
    deltas: Dict[ItemId, Any] = field(default_factory=dict)


class PathRegistry:
    """Shared record of every routing decision the system made.

    The oracles audit this after the fact: decomposable claims are
    re-probed, and every claimed delta is reconciled against the sites'
    durable apply logs (effect conservation).
    """

    def __init__(self) -> None:
        self.routed: Dict[TxnId, PathDecision] = {}
        #: The transaction the ``misclassify-one`` fault forced onto the
        #: fast path (bookkeeping so tests can assert the mutant fired).
        self.forced: Optional[TxnId] = None
        #: The effect the ``drop-remote-apply`` fault swallowed.
        self.dropped: Optional[Tuple[TxnId, ItemId]] = None

    def decided(self, txn: TxnId) -> Optional[PathDecision]:
        return self.routed.get(txn)

    def by_kind(self, kind: str) -> Dict[TxnId, PathDecision]:
        return {
            txn: decision
            for txn, decision in self.routed.items()
            if decision.kind == kind
        }


class PathSensitiveSite(DatabaseSite):
    """A database site with submit-time path-sensitive routing.

    Coordinated transactions run the inherited polyvalue protocol
    untouched; local and decomposable ones never enter it.  Apply-log
    state (durable): ``applied`` — every effect this site installed,
    the idempotence and audit record; ``pending_applies`` — effects
    owed to other sites, retransmitted until acknowledged; the apply
    queue — effects waiting behind a write lock or an in-doubt
    polyvalue.
    """

    def __init__(self, runtime: SiteRuntime, registry: PathRegistry) -> None:
        self.registry = registry
        #: Durable: (txn, item) -> delta for every effect applied here.
        self.applied: Dict[Tuple[TxnId, ItemId], Any] = {}
        #: Durable: effects owed to remote sites, until acknowledged.
        self.pending_applies: Dict[Tuple[TxnId, ItemId], Tuple[SiteId, Any]] = {}
        #: Durable: local effects blocked behind a lock or polyvalue.
        self._apply_queue: Dict[Tuple[TxnId, ItemId], Any] = {}
        super().__init__(runtime)

    # ------------------------------------------------------------------
    # Submit-time routing
    # ------------------------------------------------------------------

    def _mint(self) -> TxnId:
        # Share the coordinator's sequence so fast-path and coordinated
        # transaction ids never collide.
        self.coordinator._sequence += 1
        return make_txn_id(self.coordinator._sequence, self.site_id)

    def submit(self, transaction: Transaction, handle: TransactionHandle) -> TxnId:
        rt = self.runtime
        classification = preanalysis.classify(transaction, rt.catalog)
        if (
            classification.is_single_site
            and classification.home_site == self.site_id
        ):
            return self._run_local(transaction, handle)
        decomposition = decompose(transaction)
        forced = False
        if (
            decomposition is None
            and rt.config.path_fault == "misclassify-one"
            and self.registry.forced is None
        ):
            decomposition = _decompose_unsound(transaction)
            forced = decomposition is not None
        if decomposition is None:
            txn = super().submit(transaction, handle)
            self.registry.routed[txn] = PathDecision("coordinated", transaction)
            if rt.bus:
                rt.bus.emit(
                    "path.classify",
                    time=rt.now,
                    txn=txn,
                    site=self.site_id,
                    kind="coordinated",
                )
            return txn
        return self._run_decomposable(transaction, handle, decomposition, forced)

    def _run_local(
        self, transaction: Transaction, handle: TransactionHandle
    ) -> TxnId:
        """§2.1 lock avoidance, realised: a purely local atomic update."""
        rt = self.runtime
        txn = self._mint()
        handle.txn = txn
        rt.metrics.txn_submitted(site=self.site_id)
        if rt.bus:
            rt.bus.emit(
                "txn.submitted",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                items=tuple(transaction.items),
                sites=(self.site_id,),
            )
            rt.bus.emit(
                "path.classify",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                kind="local",
            )
        self.registry.routed[txn] = PathDecision("local", transaction)
        for item in transaction.items:
            if not rt.locks.try_acquire(txn, item, LockMode.WRITE):
                rt.metrics.lock_conflict(site=self.site_id)
                if rt.bus:
                    rt.bus.emit(
                        "lock.conflict",
                        time=rt.now,
                        txn=txn,
                        site=self.site_id,
                        item=item,
                        mode="write",
                    )
                return self._abort_fast(
                    txn, handle, f"local lock conflict on {item!r}"
                )
        try:
            snapshot = rt.store.snapshot(transaction.items)
            result = polytransaction.execute(
                transaction.body,
                snapshot,
                max_alternatives=rt.config.max_alternatives,
            )
            writes = result.merged_writes(snapshot)
            outputs = result.merged_outputs()
        except (
            TransactionError,
            PolyvalueError,
            ConditionError,
            TooManyAlternativesError,
        ) as error:
            return self._abort_fast(txn, handle, f"body failed: {error}")
        for item, value in writes.items():
            rt.apply_write(item, value)
        rt.locks.release_all(txn)
        handle.mark_committed(rt.now, outputs)
        rt.metrics.txn_committed(handle.latency or 0.0, site=self.site_id)
        if rt.bus:
            rt.bus.emit(
                "txn.committed",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                latency=handle.latency or 0.0,
            )
        return txn

    def _run_decomposable(
        self,
        transaction: Transaction,
        handle: TransactionHandle,
        decomposition: Decomposition,
        forced: bool,
    ) -> TxnId:
        """Commit now; ship commuting per-item effects asynchronously."""
        rt = self.runtime
        txn = self._mint()
        handle.txn = txn
        rt.metrics.txn_submitted(site=self.site_id)
        sites = tuple(
            sorted({rt.catalog.site_of(item) for item in decomposition.deltas})
        )
        if rt.bus:
            rt.bus.emit(
                "txn.submitted",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                items=tuple(transaction.items),
                sites=sites,
            )
            rt.bus.emit(
                "path.classify",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                kind="decomposable",
                forced=forced,
            )
        self.registry.routed[txn] = PathDecision(
            "decomposable", transaction, deltas=dict(decomposition.deltas)
        )
        if forced:
            self.registry.forced = txn
        handle.mark_committed(rt.now, decomposition.outputs)
        rt.metrics.txn_committed(handle.latency or 0.0, site=self.site_id)
        if rt.bus:
            rt.bus.emit(
                "txn.committed",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                latency=handle.latency or 0.0,
            )
        for item in sorted(decomposition.deltas):
            delta = decomposition.deltas[item]
            target = rt.catalog.site_of(item)
            if target == self.site_id:
                self._apply_delta(txn, item, delta)
                continue
            if (
                rt.config.path_fault == "drop-remote-apply"
                and self.registry.dropped is None
            ):
                # BUG (intentional, mutation smoke only): the effect is
                # silently swallowed — never sent, never retried.  The
                # effect-conservation oracle must notice the claimed
                # delta missing from every apply log.
                self.registry.dropped = (txn, item)
                continue
            self.pending_applies[(txn, item)] = (target, delta)
            rt.send(
                target,
                LocalApply(txn=txn, item=item, delta=delta, origin=self.site_id),
            )
        return txn

    def _abort_fast(
        self, txn: TxnId, handle: TransactionHandle, reason: str
    ) -> TxnId:
        rt = self.runtime
        rt.locks.release_all(txn)
        handle.mark_aborted(rt.now, reason)
        rt.metrics.txn_aborted(site=self.site_id)
        if rt.bus:
            rt.bus.emit(
                "txn.aborted",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                reason=reason,
            )
        return txn

    # ------------------------------------------------------------------
    # Effect application (durable, idempotent)
    # ------------------------------------------------------------------

    def _apply_delta(self, txn: TxnId, item: ItemId, delta: Any) -> bool:
        """Install one effect; returns True iff it is durably applied.

        Effects wait politely: behind a coordinated transaction's write
        lock (the delta lands after that transaction resolves, which is
        what keeps effect conservation compatible with the 2PC subset)
        and behind an in-doubt polyvalue (adding to an uncertain value
        is deferred until the uncertainty resolves).
        """
        key = (txn, item)
        if key in self.applied:
            return True
        rt = self.runtime
        owner = f"apply:{txn}"
        if not rt.locks.try_acquire(owner, item, LockMode.WRITE):
            self._apply_queue[key] = delta
            return False
        value = rt.store.read(item)
        if is_polyvalue(value):
            rt.locks.release_all(owner)
            self._apply_queue[key] = delta
            return False
        rt.apply_write(item, value + delta)
        rt.locks.release_all(owner)
        self.applied[key] = delta
        self._apply_queue.pop(key, None)
        if rt.bus:
            rt.bus.emit(
                "path.apply",
                time=rt.now,
                txn=txn,
                site=self.site_id,
                item=item,
                delta=delta,
            )
        return True

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, envelope) -> None:
        if not self.runtime.up:
            return
        message = envelope.payload
        if isinstance(message, LocalApply):
            if envelope.sender != self.site_id:
                self._note_peer_alive(envelope.sender)
            if self._apply_delta(message.txn, message.item, message.delta):
                self.runtime.send(
                    message.origin,
                    LocalApplyAck(
                        txn=message.txn, item=message.item, site=self.site_id
                    ),
                )
            # else: queued — no ack yet; the origin keeps retrying and a
            # later duplicate will be acknowledged once the queue drains.
        elif isinstance(message, LocalApplyAck):
            self.pending_applies.pop((message.txn, message.item), None)
        else:
            super().on_message(envelope)

    # ------------------------------------------------------------------
    # Maintenance / convergence / crash
    # ------------------------------------------------------------------

    def protocol_residue(self) -> int:
        return len(self.pending_applies) + len(self._apply_queue)

    def _outcome_maintenance(self) -> None:
        super()._outcome_maintenance()
        rt = self.runtime
        if not rt.up:
            return
        for (txn, item), delta in list(self._apply_queue.items()):
            self._apply_delta(txn, item, delta)
        for (txn, item), (target, delta) in list(self.pending_applies.items()):
            rt.send(
                target,
                LocalApply(txn=txn, item=item, delta=delta, origin=self.site_id),
            )
    # Crash/recovery need no override: ``applied``, ``pending_applies``
    # and the apply queue are all durable, locks reset to free, and the
    # base ``recover`` kicks the maintenance loop, which drains the
    # queue and resumes retransmission.
