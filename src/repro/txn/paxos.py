"""Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit").

The bake-off peer that replaces the single 2PC coordinator decision
with one Paxos consensus instance per participant: each participant's
prepared/aborted vote is chosen by 2F+1 acceptors, so the global
decision (commit iff every instance chose *prepared*) survives any F
simultaneous faults.  The protocol is non-blocking where 2PC blocks —
a coordinator crash inside the in-doubt window is resolved by **leader
failover**: any participant whose decision timer expires runs Phase 1
with a higher ballot, learns the accepted votes from a quorum, and
completes the commit (or aborts the free instances) itself.

Mapping onto the repo's machinery:

* the **compute phase is reused verbatim** — reads and staging run the
  existing :class:`~repro.txn.coordinator.Coordinator` code paths, so
  the message-cost comparison against 2PC isolates the decision layer;
* the fast path is **Phase-2a-by-participant**: instead of *ready* to
  the coordinator, a participant sends its vote at ballot 0 directly
  to every acceptor, which persists it and relays Phase 2b to the
  ballot's leader (one message delay saved, as in the paper);
* ballots are globally partitioned (``round * n_sites + site_index``)
  so two proposers can never collide on a ballot number;
* the durable state is exactly Gray & Lamport's: staged writes and the
  (participants, acceptors) registration at the participant, promises
  and accepted votes at the acceptors, the commit record at whichever
  site decides.

The :class:`DecisionBoard` is the client's-eye registry of transaction
handles: whichever site completes the protocol marks the handle there,
and contradictory decisions — impossible with correct acceptors, and
exactly what the ``acceptor-no-persist`` mutation produces — are
recorded for the protocol-aware decision-consistency oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.core import polytransaction
from repro.core.errors import ConditionError, PolyvalueError, TransactionError
from repro.core.polytransaction import TooManyAlternativesError
from repro.db.locks import LockMode
from repro.net.message import SiteId
from repro.txn import protocol
from repro.txn.coordinator import Coordinator, _CoordTxn, _Phase
from repro.txn.participant import Participant, _ParticipantTxn
from repro.txn.runtime import SiteRuntime, SiteState
from repro.txn.site import DatabaseSite
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnId,
    TxnStatus,
    coordinator_of,
)

ItemId = str

#: The two values a participant's Paxos instance can choose.
PREPARED = "prepared"
ABORTED = "aborted"


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PaxosStage(protocol.StageRequest):
    """The coordinator's stage request, Paxos flavour.

    Beyond the staged writes it registers the transaction: the full
    participant set, the acceptor set, and the ballot-0 leader — the
    durable knowledge a participant needs to run failover on its own.
    """

    participants: Tuple[SiteId, ...] = ()
    acceptors: Tuple[SiteId, ...] = ()
    leader: SiteId = ""


@dataclass(frozen=True)
class Phase2a(protocol.ProtocolMessage):
    """Propose *vote* for *instance* at *ballot* (fast path: ballot 0,
    sent by the instance's own participant)."""

    instance: SiteId
    ballot: int
    vote: str
    leader: SiteId


@dataclass(frozen=True)
class Phase2b(protocol.ProtocolMessage):
    """An acceptor's acceptance of a Phase 2a proposal."""

    instance: SiteId
    ballot: int
    vote: str
    acceptor: SiteId


@dataclass(frozen=True)
class Phase1a(protocol.ProtocolMessage):
    """A failover proposer's prepare request at *ballot* (all instances)."""

    ballot: int
    proposer: SiteId


@dataclass(frozen=True)
class Phase1b(protocol.ProtocolMessage):
    """An acceptor's promise: its accepted (ballot, vote) per instance."""

    ballot: int
    acceptor: SiteId
    accepted: Mapping[SiteId, Tuple[int, str]] = field(default_factory=dict)


@dataclass(frozen=True)
class PaxosDecision(protocol.ProtocolMessage):
    """The consensus outcome, broadcast by whichever site completed it."""

    committed: bool


# ----------------------------------------------------------------------
# The client's-eye transaction registry
# ----------------------------------------------------------------------


class DecisionBoard:
    """System-level registry mapping transactions to client handles.

    Paxos Commit has no single site that always survives to mark the
    client's handle — the decider may be the original coordinator or
    any failover leader.  The board is the client's stable mailbox:
    :meth:`decide` marks the handle exactly once, and records any
    contradictory later decision (a protocol-safety violation) for the
    decision-consistency oracle.
    """

    def __init__(self) -> None:
        self.handles: Dict[TxnId, TransactionHandle] = {}
        self.decisions: Dict[TxnId, bool] = {}
        #: Coordinator-computed outputs, delivered with a commit.
        self.outputs: Dict[TxnId, Dict[str, Any]] = {}
        #: (txn, first, second, site) for every contradictory decision.
        self.conflicts: List[Tuple[TxnId, bool, bool, SiteId]] = []

    def register(self, txn_handle: TransactionHandle) -> None:
        if txn_handle.txn:
            self.handles[txn_handle.txn] = txn_handle

    def decided(self, txn: TxnId) -> Optional[bool]:
        return self.decisions.get(txn)

    def decide(
        self,
        txn: TxnId,
        committed: bool,
        *,
        time: float,
        site: SiteId,
        metrics,
        bus=None,
        reason: str = "",
    ) -> bool:
        """Record one decision; returns True iff this was the first.

        A second, contradictory decision is the bug class Paxos exists
        to prevent — it is recorded (never applied to the handle) so
        the oracle layer can flag it.
        """
        handle = self.handles.get(txn)
        previous = self.decisions.get(txn)
        if previous is None and handle is not None:
            if handle.status is TxnStatus.COMMITTED:
                previous = True
            elif handle.status is TxnStatus.ABORTED:
                previous = False
        if previous is not None:
            if previous != committed:
                self.conflicts.append((txn, previous, committed, site))
                metrics.inconsistent_decision()
            return False
        self.decisions[txn] = committed
        if handle is not None and handle.status is TxnStatus.PENDING:
            if committed:
                handle.mark_committed(time, self.outputs.pop(txn, {}))
                metrics.txn_committed(handle.latency or 0.0, site=site)
                if bus:
                    bus.emit(
                        "txn.committed",
                        time=time,
                        txn=txn,
                        site=site,
                        latency=handle.latency or 0.0,
                    )
            else:
                self.outputs.pop(txn, None)
                handle.mark_aborted(time, reason or "paxos consensus aborted")
                metrics.txn_aborted(site=site)
                if bus:
                    bus.emit(
                        "txn.aborted",
                        time=time,
                        txn=txn,
                        site=site,
                        reason=reason or "paxos consensus aborted",
                    )
        return True


# ----------------------------------------------------------------------
# Proposer / ballot-leader state
# ----------------------------------------------------------------------


@dataclass
class _Proposal:
    """Volatile state of one ballot this site is leading."""

    txn: TxnId
    ballot: int
    participants: Tuple[SiteId, ...]
    acceptors: Tuple[SiteId, ...]
    #: ``"p1"`` while collecting promises, ``"p2"`` while collecting
    #: acceptances (the ballot-0 fast path starts directly in p2).
    phase: str = "p2"
    promises: Dict[SiteId, Dict[SiteId, Tuple[int, str]]] = field(
        default_factory=dict
    )
    #: Phase-2b acceptances at this ballot: instance -> acceptor -> vote.
    votes: Dict[SiteId, Dict[SiteId, str]] = field(default_factory=dict)
    #: Instances whose consensus value this ballot has established.
    chosen: Dict[SiteId, str] = field(default_factory=dict)


class PaxosCoordinator(Coordinator):
    """The 2PC coordinator's compute phase with a Paxos decision layer.

    Reads and transaction-body execution are inherited unchanged; only
    staging differs (a :class:`PaxosStage` registers the participant
    and acceptor sets) and the decision never happens here directly —
    the site's ballot-0 leadership (or any failover leader) completes
    the commit through the acceptors.
    """

    def __init__(self, runtime: SiteRuntime, site: "PaxosSite") -> None:
        super().__init__(runtime)
        self._site = site

    def _execute_and_stage(self, record: _CoordTxn) -> None:
        rt = self._rt
        record.cancel_timer()
        try:
            result = polytransaction.execute(
                record.transaction.body,
                record.values,
                max_alternatives=rt.config.max_alternatives,
            )
            writes = result.merged_writes(record.values)
            outputs = result.merged_outputs()
        except TooManyAlternativesError as error:
            rt.metrics.fanout_overflow(site=rt.site_id)
            if rt.bus:
                rt.bus.emit(
                    "txn.overflow",
                    time=rt.now,
                    txn=record.txn,
                    site=rt.site_id,
                    limit=rt.config.max_alternatives,
                )
            self._decide_abort(record, f"fan-out overflow: {error}")
            return
        except (TransactionError, PolyvalueError, ConditionError) as error:
            self._decide_abort(record, f"body failed: {error}")
            return
        record.outputs = outputs
        by_site = rt.catalog.group_by_site(writes)
        record.phase = _Phase.STAGING
        if rt.bus:
            rt.bus.emit(
                "phase.stage.start",
                time=rt.now,
                txn=record.txn,
                site=rt.site_id,
                writes=tuple(sorted(writes)),
            )
        participants = tuple(sorted(record.involved))
        acceptors = self._site.acceptor_set()
        # Durable registration (Gray & Lamport's registrar record): the
        # participant set must survive a coordinator crash so recovery
        # can drive failover for the transaction.
        self._site.registrar[record.txn] = participants
        self._site.board.outputs[record.txn] = outputs
        record.awaiting = set(record.involved)
        for site in record.involved:
            site_writes = {
                item: writes[item] for item in by_site.get(site, ())
            }
            rt.send(
                site,
                PaxosStage(
                    txn=record.txn,
                    coordinator=rt.site_id,
                    writes=site_writes,
                    participants=participants,
                    acceptors=acceptors,
                    leader=rt.site_id,
                ),
            )
        # Ballot-0 leadership: the participants send Phase 2a straight
        # to the acceptors; this site only collects the Phase 2b flow.
        self._site.start_ballot0(record.txn, participants, acceptors)
        record.timer = rt.schedule(
            rt.config.paxos_failover_timeout,
            lambda: self._site.failover(record.txn),
            label=f"paxos-lead-timeout:{record.txn}",
        )

    def _decide_abort(self, record: _CoordTxn, reason: str) -> None:
        # Read-phase failures (lock refusals, read timeouts) abort the
        # classic way — no vote exists anywhere yet, so presumed abort
        # is safe.  Route the decision through the board so a later
        # (buggy) consensus decision for the same transaction is
        # detected as a conflict rather than silently double-marked.
        if record.phase is _Phase.READING:
            self._site.board.decisions.setdefault(record.txn, False)
        super()._decide_abort(record, reason)

    def on_crash(self) -> List[TransactionHandle]:
        """Lose volatile coordination state; only read-phase handles die.

        A transaction that reached staging has durable registration and
        (possibly) accepted votes — failover can still commit it, so
        its handle must stay pending.  Read-phase transactions have no
        vote anywhere and are presumed aborted, as in 2PC.
        """
        reading = [
            record.handle
            for record in self._active.values()
            if record.phase is _Phase.READING
        ]
        for record in self._active.values():
            record.cancel_timer()
        self._active.clear()
        return reading

    def forget(self, txn: TxnId) -> None:
        """Drop the volatile record once consensus decided *txn*."""
        record = self._active.pop(txn, None)
        if record is not None:
            record.cancel_timer()
            record.phase = _Phase.DECIDED


class PaxosParticipant(Participant):
    """The participant role with Phase-2a-by-participant voting.

    Staging is the same no-wait 2PL acquisition as 2PC, but the vote
    goes to the acceptors (ballot 0) instead of a *ready* to the
    coordinator, and the wait phase ends with the consensus decision —
    or with this site running leader failover itself.
    """

    def __init__(self, runtime: SiteRuntime, site: "PaxosSite") -> None:
        super().__init__(runtime)
        self._site = site
        #: Durable: (participants, acceptors) per staged transaction —
        #: everything a recovering participant needs to run failover.
        self._meta: Dict[TxnId, Tuple[Tuple[SiteId, ...], Tuple[SiteId, ...]]] = {}

    def registration(
        self, txn: TxnId
    ) -> Optional[Tuple[Tuple[SiteId, ...], Tuple[SiteId, ...]]]:
        return self._meta.get(txn)

    def durable_meta(
        self,
    ) -> Dict[TxnId, Tuple[Tuple[SiteId, ...], Tuple[SiteId, ...]]]:
        """The durable (participants, acceptors) records (checkpoints)."""
        return dict(self._meta)

    def restore_meta(
        self,
        meta: Dict[TxnId, Tuple[Tuple[SiteId, ...], Tuple[SiteId, ...]]],
    ) -> None:
        """Overwrite the durable registration records from a checkpoint."""
        self._meta = dict(meta)

    def handle_paxos_stage(self, message: PaxosStage, sender: SiteId) -> None:
        rt = self._rt
        txn = message.txn
        record = self._active.get(txn)
        if record is None or record.state is not SiteState.COMPUTE:
            return  # duplicate, or the compute phase already timed out
        record.cancel_timer()
        if record.reply_sent_at is not None:
            rt.patience.observe(sender, rt.now - record.reply_sent_at)
            record.reply_sent_at = None
        for item in message.writes:
            if not rt.locks.try_acquire(txn, item, LockMode.WRITE):
                rt.metrics.lock_conflict(site=rt.site_id)
                if rt.bus:
                    rt.bus.emit(
                        "lock.conflict",
                        time=rt.now,
                        txn=txn,
                        site=rt.site_id,
                        item=item,
                        mode="write",
                    )
                self._discard(record, "abort")
                # The vote is Aborted — sent to the acceptors, not the
                # coordinator: consensus, not the leader, aborts.
                for acceptor in message.acceptors:
                    rt.send(
                        acceptor,
                        Phase2a(
                            txn=txn,
                            instance=rt.site_id,
                            ballot=0,
                            vote=ABORTED,
                            leader=message.leader,
                        ),
                    )
                return
        staged = dict(message.writes)
        record.staged = staged
        # Durable before the vote leaves this site: a prepared
        # participant must survive its own crash still prepared.
        self._durable_staged[txn] = staged
        self._meta[txn] = (tuple(message.participants), tuple(message.acceptors))
        record.state = SiteState.WAIT
        self._transition(record, SiteState.COMPUTE, SiteState.WAIT, "ready")
        for acceptor in message.acceptors:
            rt.send(
                acceptor,
                Phase2a(
                    txn=txn,
                    instance=rt.site_id,
                    ballot=0,
                    vote=PREPARED,
                    leader=message.leader,
                ),
            )
        record.ready_sent_at = rt.now
        record.timer = rt.schedule(
            rt.patience.timeout_for(
                message.leader, rt.config.paxos_failover_timeout
            ),
            lambda: self._site.failover(txn),
            label=f"paxos-wait:{txn}",
        )

    def handle_outcome_known(self, txn: TxnId, committed: bool) -> None:
        record = self._active.get(txn)
        if record is None and txn in self._durable_staged:
            # Decided while this site had no live record (e.g. the
            # outcome arrived through the notify chain right after
            # recovery): apply straight from the durable staging log.
            if committed:
                self._install_staged(txn, self._durable_staged[txn])
            else:
                self._durable_staged.pop(txn, None)
                self._rt.locks.release_all(txn)
        super().handle_outcome_known(txn, committed)
        self._meta.pop(txn, None)

    def on_recover(self) -> None:
        """Re-enter the wait phase for every undecided staged transaction.

        Unlike the 2PC policies there is nothing unilateral to do: the
        participant stays prepared and re-initiates leader failover —
        the acceptors (not this site) hold the authoritative state.
        """
        for txn, staged in list(self._durable_staged.items()):
            outcome = self._rt.known_outcomes.get(txn)
            if outcome is not None:
                self.handle_outcome_known(txn, outcome)
                continue
            for item in staged:
                self._rt.locks.try_acquire(txn, item, LockMode.WRITE)
            record = _ParticipantTxn(
                txn=txn,
                coordinator=coordinator_of(txn),
                state=SiteState.WAIT,
                staged=dict(staged),
            )
            self._active[txn] = record
            record.timer = self._rt.schedule(
                self._rt.config.paxos_failover_timeout,
                lambda txn=txn: self._site.failover(txn),
                label=f"paxos-recover-failover:{txn}",
            )


class PaxosSite(DatabaseSite):
    """A database site speaking Paxos Commit.

    Every site carries three roles: the inherited participant (with
    Paxos voting), the inherited coordinator (with Paxos staging), and
    an **acceptor** — promises and accepted votes are durable, the
    whole point of the protocol.  Any site can additionally become a
    failover leader.
    """

    def __init__(self, runtime: SiteRuntime, board: DecisionBoard) -> None:
        self.board = board
        #: Durable registrar records: txn -> participant set, kept from
        #: staging until the decision is learned here.
        self.registrar: Dict[TxnId, Tuple[SiteId, ...]] = {}
        #: Durable acceptor state: highest ballot promised per txn, and
        #: accepted (ballot, vote) per (txn, instance).
        self._promised: Dict[TxnId, int] = {}
        self._accepted: Dict[Tuple[TxnId, SiteId], Tuple[int, str]] = {}
        #: Volatile: ballots this site is currently leading.
        self._proposals: Dict[TxnId, _Proposal] = {}
        #: Volatile: next failover round per txn (restarts at 1 after a
        #: crash — ballots stay unique because rounds only move up per
        #: proposer and the site index partitions the ballot space).
        self._round: Dict[TxnId, int] = {}
        super().__init__(runtime)
        self.participant = PaxosParticipant(runtime, self)
        self.coordinator = PaxosCoordinator(runtime, self)

    # ------------------------------------------------------------------
    # Configuration-derived sets
    # ------------------------------------------------------------------

    def _all_sites(self) -> List[SiteId]:
        return sorted(self.runtime.catalog.all_sites())

    def fault_tolerance(self) -> int:
        """F: how many simultaneous acceptor faults commit survives."""
        sites = self._all_sites()
        max_f = (len(sites) - 1) // 2
        configured = self.runtime.config.paxos_fault_tolerance
        if configured is None:
            return max_f
        return max(0, min(configured, max_f))

    def acceptor_set(self) -> Tuple[SiteId, ...]:
        """The 2F+1 acceptors (deterministic: the lowest site ids)."""
        sites = self._all_sites()
        return tuple(sites[: 2 * self.fault_tolerance() + 1])

    def quorum(self) -> int:
        return self.fault_tolerance() + 1

    def protocol_residue(self) -> int:
        """Undecided Paxos state still held at this site."""
        return (
            len(self.participant._durable_staged)
            + len(self.registrar)
            + len(self._proposals)
            + len(self._promised)
            + len(self._accepted)
        )

    # ------------------------------------------------------------------
    # Client entry point
    # ------------------------------------------------------------------

    def submit(self, transaction: Transaction, handle: TransactionHandle) -> TxnId:
        txn = super().submit(transaction, handle)
        self.board.register(handle)
        return txn

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, envelope) -> None:
        if not self.runtime.up:
            return
        message = envelope.payload
        if isinstance(message, PaxosStage):
            if envelope.sender != self.site_id:
                self._note_peer_alive(envelope.sender)
            self.participant.handle_paxos_stage(message, envelope.sender)
        elif isinstance(message, Phase2a):
            self._accept_phase2a(message, envelope.sender)
        elif isinstance(message, Phase2b):
            self._collect_phase2b(message)
        elif isinstance(message, Phase1a):
            self._accept_phase1a(message, envelope.sender)
        elif isinstance(message, Phase1b):
            self._collect_phase1b(message)
        elif isinstance(message, PaxosDecision):
            if envelope.sender != self.site_id:
                self._note_peer_alive(envelope.sender)
            self._learn_outcome(message.txn, message.committed)
            if envelope.sender != self.site_id:
                self.runtime.send(
                    envelope.sender,
                    protocol.OutcomeAck(txn=message.txn, site=self.site_id),
                )
        else:
            super().on_message(envelope)

    # ------------------------------------------------------------------
    # Acceptor role (durable)
    # ------------------------------------------------------------------

    def _accept_phase2a(self, message: Phase2a, sender: SiteId) -> None:
        rt = self.runtime
        txn = message.txn
        known = rt.known_outcomes.get(txn)
        if known is not None:
            rt.send(message.leader, PaxosDecision(txn=txn, committed=known))
            return
        promised = self._promised.get(txn, -1)
        if message.ballot < promised:
            return  # promised a higher ballot: silently reject
        self._promised[txn] = message.ballot
        if rt.config.paxos_fault != "acceptor-no-persist":
            self._accepted[(txn, message.instance)] = (
                message.ballot,
                message.vote,
            )
        # else: BUG (intentional, mutation smoke only) — acknowledge
        # the vote without persisting it, so a failover leader can
        # later contradict a fast-path decision.
        rt.send(
            message.leader,
            Phase2b(
                txn=txn,
                instance=message.instance,
                ballot=message.ballot,
                vote=message.vote,
                acceptor=rt.site_id,
            ),
        )

    def _accept_phase1a(self, message: Phase1a, sender: SiteId) -> None:
        rt = self.runtime
        txn = message.txn
        known = rt.known_outcomes.get(txn)
        if known is not None:
            rt.send(message.proposer, PaxosDecision(txn=txn, committed=known))
            return
        if message.ballot <= self._promised.get(txn, -1):
            return
        self._promised[txn] = message.ballot
        accepted = {
            instance: entry
            for (entry_txn, instance), entry in self._accepted.items()
            if entry_txn == txn
        }
        rt.send(
            message.proposer,
            Phase1b(
                txn=txn,
                ballot=message.ballot,
                acceptor=rt.site_id,
                accepted=accepted,
            ),
        )

    # ------------------------------------------------------------------
    # Leader / proposer role (volatile)
    # ------------------------------------------------------------------

    def start_ballot0(
        self,
        txn: TxnId,
        participants: Tuple[SiteId, ...],
        acceptors: Tuple[SiteId, ...],
    ) -> None:
        """Collect the fast path's Phase 2b flow as ballot-0 leader."""
        self._proposals[txn] = _Proposal(
            txn=txn,
            ballot=0,
            participants=participants,
            acceptors=acceptors,
            phase="p2",
        )

    def failover(self, txn: TxnId) -> None:
        """Become the leader for *txn* at a fresh, higher ballot.

        Called on decision timeout (participant or ballot-0 leader), on
        recovery, and from the maintenance loop.  Stops itself once the
        outcome is known locally; otherwise retries with ever-higher
        ballots, so the transaction decides as soon as a quorum of
        acceptors is reachable — the non-blocking property.
        """
        rt = self.runtime
        if not rt.up or txn in rt.known_outcomes:
            return
        registration = self.participant.registration(txn)
        if registration is not None:
            participants, acceptors = registration
        elif txn in self.registrar:
            participants = self.registrar[txn]
            acceptors = self.acceptor_set()
        else:
            return  # nothing durable to act on
        sites = self._all_sites()
        round_ = self._round.get(txn, 0) + 1
        self._round[txn] = round_
        ballot = round_ * len(sites) + sites.index(rt.site_id)
        self._proposals[txn] = _Proposal(
            txn=txn,
            ballot=ballot,
            participants=participants,
            acceptors=acceptors,
            phase="p1",
        )
        if rt.bus:
            rt.bus.emit(
                "paxos.ballot",
                time=rt.now,
                txn=txn,
                site=rt.site_id,
                ballot=ballot,
            )
        for acceptor in acceptors:
            rt.send(acceptor, Phase1a(txn=txn, ballot=ballot, proposer=rt.site_id))
        # Re-arm: if this ballot stalls (acceptors down, messages lost)
        # try again at a higher one.  The chain stops once decided.
        rt.schedule(
            rt.config.paxos_failover_timeout,
            lambda: self.failover(txn),
            label=f"paxos-failover:{txn}",
        )

    def _collect_phase1b(self, message: Phase1b) -> None:
        proposal = self._proposals.get(message.txn)
        if (
            proposal is None
            or proposal.phase != "p1"
            or proposal.ballot != message.ballot
        ):
            return
        proposal.promises[message.acceptor] = dict(message.accepted)
        if len(proposal.promises) < self.quorum():
            return
        # Quorum promised: per instance, propose the highest-ballot
        # accepted vote, or Aborted for a free instance (Gray &
        # Lamport: a free instance means that participant never voted —
        # aborting it is always safe and makes the protocol non-blocking).
        proposal.phase = "p2"
        rt = self.runtime
        for instance in proposal.participants:
            best: Optional[Tuple[int, str]] = None
            for accepted in proposal.promises.values():
                entry = accepted.get(instance)
                if entry is not None and (best is None or entry[0] > best[0]):
                    best = entry
            vote = best[1] if best is not None else ABORTED
            for acceptor in proposal.acceptors:
                rt.send(
                    acceptor,
                    Phase2a(
                        txn=message.txn,
                        instance=instance,
                        ballot=proposal.ballot,
                        vote=vote,
                        leader=rt.site_id,
                    ),
                )

    def _collect_phase2b(self, message: Phase2b) -> None:
        proposal = self._proposals.get(message.txn)
        if (
            proposal is None
            or proposal.phase != "p2"
            or proposal.ballot != message.ballot
        ):
            return
        votes = proposal.votes.setdefault(message.instance, {})
        votes[message.acceptor] = message.vote
        counts: Dict[str, int] = {}
        for vote in votes.values():
            counts[vote] = counts.get(vote, 0) + 1
        for vote, count in counts.items():
            if count >= self.quorum():
                proposal.chosen[message.instance] = vote
        chosen = proposal.chosen
        if any(vote == ABORTED for vote in chosen.values()):
            self._decide(proposal, committed=False)
        elif all(
            chosen.get(instance) == PREPARED
            for instance in proposal.participants
        ):
            self._decide(proposal, committed=True)

    def _decide(self, proposal: _Proposal, *, committed: bool) -> None:
        rt = self.runtime
        txn = proposal.txn
        if txn in rt.known_outcomes:
            return
        if rt.bus:
            rt.bus.emit(
                "paxos.decide",
                time=rt.now,
                txn=txn,
                site=rt.site_id,
                committed=committed,
                ballot=proposal.ballot,
            )
        # Durable decision record before any message leaves.  Unlike
        # 2PC, aborts are logged too: the acceptors hold durable votes
        # for this transaction and must all learn the outcome to
        # garbage-collect them — the site layer's unacknowledged-
        # participants retry loop redelivers the outcome reliably.
        learners = (
            set(proposal.participants)
            | set(proposal.acceptors)
            | {coordinator_of(txn)}
        )
        rt.outcome_log.decide(
            txn, committed, participants=sorted(learners - {rt.site_id})
        )
        self.board.decide(
            txn,
            committed,
            time=rt.now,
            site=rt.site_id,
            metrics=rt.metrics,
            bus=rt.bus,
        )
        recipients = (
            set(proposal.participants)
            | set(proposal.acceptors)
            | {coordinator_of(txn)}
        ) - {rt.site_id}
        for recipient in sorted(recipients):
            rt.send(recipient, PaxosDecision(txn=txn, committed=committed))
        self._learn_outcome(txn, committed)

    # ------------------------------------------------------------------
    # Outcome learning / garbage collection
    # ------------------------------------------------------------------

    def _learn_outcome(self, txn: TxnId, committed: bool) -> None:
        super()._learn_outcome(txn, committed)
        self.registrar.pop(txn, None)
        self._proposals.pop(txn, None)
        self._round.pop(txn, None)
        self._promised.pop(txn, None)
        for key in [key for key in self._accepted if key[0] == txn]:
            del self._accepted[key]
        self.coordinator.forget(txn)

    def _answer_outcome_query(self, message: protocol.OutcomeQuery) -> None:
        # An undecided registered transaction must not be presumed
        # aborted — failover (not presumption) resolves it.
        if message.txn in self.registrar:
            return
        super()._answer_outcome_query(message)

    def _outcome_maintenance(self) -> None:
        super()._outcome_maintenance()
        rt = self.runtime
        if not rt.up:
            return
        for txn in list(self.registrar):
            known = rt.known_outcomes.get(txn)
            if known is not None:
                self._learn_outcome(txn, known)
            elif txn not in self.coordinator.active_transactions():
                self.failover(txn)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> List[TransactionHandle]:
        undecided = super().crash()
        # Leadership and failover pacing are volatile; promises,
        # accepted votes and registrar records are durable.
        self._proposals.clear()
        self._round.clear()
        # Recovery needs no override: the base ``recover`` kicks the
        # maintenance loop, whose paxos extension runs failover for
        # every undecided registrar entry.
        return undecided

    # ------------------------------------------------------------------
    # Durable state (live runtime checkpoint/restore)
    # ------------------------------------------------------------------

    def durable_snapshot(self) -> Dict[str, object]:
        snapshot = super().durable_snapshot()
        snapshot["paxos"] = {
            "registrar": {
                txn: list(sites) for txn, sites in self.registrar.items()
            },
            "promised": dict(self._promised),
            "accepted": [
                [txn, instance, ballot, vote]
                for (txn, instance), (ballot, vote) in sorted(
                    self._accepted.items()
                )
            ],
            "meta": {
                txn: [list(participants), list(acceptors)]
                for txn, (participants, acceptors) in self.participant
                .durable_meta()
                .items()
            },
        }
        return snapshot

    def restore_durable(self, snapshot: Dict[str, object]) -> None:
        super().restore_durable(snapshot)
        paxos = snapshot.get("paxos", {})
        self.registrar = {
            txn: tuple(sites)
            for txn, sites in paxos.get("registrar", {}).items()
        }
        self._promised = {
            txn: int(ballot)
            for txn, ballot in paxos.get("promised", {}).items()
        }
        self._accepted = {
            (txn, instance): (int(ballot), str(vote))
            for txn, instance, ballot, vote in paxos.get("accepted", [])
        }
        self.participant.restore_meta(
            {
                txn: (tuple(participants), tuple(acceptors))
                for txn, (participants, acceptors) in paxos.get(
                    "meta", {}
                ).items()
            }
        )
        self._proposals.clear()
        self._round.clear()
