"""Transaction pre-analysis — the lock-avoidance approach of section 2.1.

    "One approach that has been used is to structure the implementation
    of the transactions such that it avoids the need to make atomic
    updates wherever possible.  This can be done by pre-analyzing the
    transactions to be performed to determine whether or not they
    require an atomic update."  (The paper cites SDD-1.)

Transactions in this library declare their item sets up front, which is
precisely what makes SDD-1-style pre-analysis possible.  This module
provides:

* :func:`classify` — does this transaction require a *distributed*
  atomic update at all?  Single-site transactions can never be caught
  in a cross-site in-doubt window (their commit is local), and
  read-only transactions never create polyvalues.
* :func:`profile` — a trial execution against a sample snapshot that
  discovers the actually-read and actually-written subsets of the
  declared items (bodies are pure functions of their reads, so a trial
  run is an honest profile *for that snapshot*; the declared set
  remains the sound over-approximation).
* :func:`conflict_graph` / :func:`parallel_batches` — the classic
  conflict analysis over declared item sets: two transactions conflict
  when they share an item at least one of them may write; non-adjacent
  transactions can run concurrently without lock aborts under the
  no-wait 2PL used here.

The mix statistics (:func:`workload_mix`) quantify the paper's claim
that lock avoidance helps "wherever possible" — and, dually, how much
of a workload still needs the full protocol, which is the population
polyvalues protect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core import polytransaction
from repro.core.polyvalue import Value
from repro.db.catalog import Catalog
from repro.net.message import SiteId
from repro.txn.transaction import Transaction

ItemId = str


@dataclass(frozen=True)
class TransactionClass:
    """The static classification of one transaction."""

    sites: FrozenSet[SiteId]
    declared_items: FrozenSet[ItemId]

    @property
    def is_single_site(self) -> bool:
        """True iff every declared item lives at one site."""
        return len(self.sites) == 1

    @property
    def requires_distributed_commit(self) -> bool:
        """True iff the transaction spans sites (the §2.1 question)."""
        return len(self.sites) > 1

    @property
    def home_site(self) -> Optional[SiteId]:
        """The single involved site, when there is exactly one."""
        if self.is_single_site:
            return next(iter(self.sites))
        return None


def classify(transaction: Transaction, catalog: Catalog) -> TransactionClass:
    """Statically classify *transaction* against a data placement."""
    return TransactionClass(
        sites=catalog.sites_for(transaction.items),
        declared_items=frozenset(transaction.items),
    )


@dataclass(frozen=True)
class TransactionProfile:
    """What a trial execution of the body actually did.

    Valid for the profiled snapshot; the declared set stays the sound
    bound (a different database state may exercise different branches).
    """

    items_read: FrozenSet[ItemId]
    items_written: FrozenSet[ItemId]
    outputs: Tuple[str, ...]

    @property
    def is_read_only(self) -> bool:
        """No writes on this snapshot — cannot create polyvalues."""
        return not self.items_written


def profile(
    transaction: Transaction, snapshot: Mapping[ItemId, Value]
) -> TransactionProfile:
    """Trial-execute the body against *snapshot* and report its footprint."""
    result = polytransaction.execute(transaction.body, snapshot)
    return TransactionProfile(
        items_read=frozenset(result.read_items()),
        items_written=frozenset(result.written_items()),
        outputs=tuple(sorted(result.merged_outputs())),
    )


# ----------------------------------------------------------------------
# Conflict analysis
# ----------------------------------------------------------------------


def conflicts(first: Transaction, second: Transaction) -> bool:
    """Declared-set conflict: a shared item that either may write.

    Without per-item read/write declarations, any shared declared item
    is a potential write-write or read-write conflict; this is the
    sound test for the no-wait 2PL in :mod:`repro.db.locks` — two
    conflicting transactions run concurrently risk aborting each other.
    """
    return bool(set(first.items) & set(second.items))


def conflict_graph(
    transactions: Sequence[Transaction],
) -> Dict[int, FrozenSet[int]]:
    """Adjacency (by index) of the conflict relation."""
    adjacency: Dict[int, set] = {index: set() for index in range(len(transactions))}
    for i, first in enumerate(transactions):
        for j in range(i + 1, len(transactions)):
            if conflicts(first, transactions[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)
    return {index: frozenset(neighbours) for index, neighbours in adjacency.items()}


def parallel_batches(transactions: Sequence[Transaction]) -> List[List[int]]:
    """Partition transactions into conflict-free batches (greedy colouring).

    Transactions in one batch share no declared items, so submitting a
    batch concurrently cannot produce lock-conflict aborts.  Greedy
    colouring in submission order keeps the result deterministic and
    near-optimal for the sparse conflict graphs real workloads have.
    """
    adjacency = conflict_graph(transactions)
    colour: Dict[int, int] = {}
    for index in range(len(transactions)):
        taken = {
            colour[neighbour]
            for neighbour in adjacency[index]
            if neighbour in colour
        }
        assigned = 0
        while assigned in taken:
            assigned += 1
        colour[index] = assigned
    batches: Dict[int, List[int]] = {}
    for index, assigned in colour.items():
        batches.setdefault(assigned, []).append(index)
    return [sorted(batches[key]) for key in sorted(batches)]


# ----------------------------------------------------------------------
# Workload-level statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadMix:
    """How much of a workload needs the full distributed machinery."""

    total: int
    single_site: int
    distributed: int

    @property
    def distributed_fraction(self) -> float:
        """The share of transactions exposed to cross-site in-doubt
        windows — the population the polyvalue mechanism protects."""
        return self.distributed / self.total if self.total else 0.0


def workload_mix(
    transactions: Sequence[Transaction], catalog: Catalog
) -> WorkloadMix:
    """Classify a whole workload (the §2.1 pre-analysis, in aggregate)."""
    single = 0
    distributed = 0
    for transaction in transactions:
        if classify(transaction, catalog).is_single_site:
            single += 1
        else:
            distributed += 1
    return WorkloadMix(
        total=len(transactions), single_site=single, distributed=distributed
    )
