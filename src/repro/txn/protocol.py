"""Wire messages of the update protocol (section 3.1) and outcome
propagation (section 3.3).

The protocol is the two-phase commit of Gray that the paper builds on:
a *compute* phase in which each involved site computes (here: reads for
the coordinator, then stages the writes shipped back to it) and reports
**ready**, and a *wait* phase ended by the coordinator's **complete** or
**abort** — or by a timeout, which in the polyvalue policy installs
polyvalues instead of blocking.

Outcome propagation adds three messages: a recovered (or polyvalue-
holding) site *queries* a transaction's coordinator, the coordinator or
any site that knows the outcome *notifies* dependents, and recipients
*acknowledge* so the coordinator's outcome log can be garbage-collected.

All messages are frozen dataclasses; values inside ``StageRequest`` and
``ReadReply`` may be :class:`~repro.core.polyvalue.Polyvalue` instances
(that is how uncertainty propagates between sites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Tuple

from repro.net.message import SiteId

TxnId = str
ItemId = str


@dataclass(frozen=True)
class ProtocolMessage:
    """Base class for every commit-protocol message."""

    txn: TxnId


# ----------------------------------------------------------------------
# Compute phase
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReadRequest(ProtocolMessage):
    """Coordinator asks a site for the current values of local *items*."""

    items: Tuple[ItemId, ...]


@dataclass(frozen=True)
class ReadReply(ProtocolMessage):
    """A site's response to :class:`ReadRequest`.

    ``ok`` is False when a lock conflict prevented the read (the
    coordinator will abort).  ``values`` may contain polyvalues; per
    section 3.3 the sending site records the coordinator as a forwarded
    destination for every in-doubt transaction those polyvalues depend
    on.
    """

    site: SiteId
    ok: bool
    values: Mapping[ItemId, Any] = field(default_factory=dict)
    reason: str = ""


@dataclass(frozen=True)
class StageRequest(ProtocolMessage):
    """Coordinator ships computed updates for a site to stage.

    Read-only participants receive an empty ``writes`` so that they too
    enter the wait phase and release their read locks on completion.
    """

    coordinator: SiteId
    writes: Mapping[ItemId, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Ready(ProtocolMessage):
    """A site has staged its updates and enters the wait phase."""

    site: SiteId


@dataclass(frozen=True)
class Refuse(ProtocolMessage):
    """A site could not stage (lock conflict); the coordinator must abort."""

    site: SiteId
    reason: str = ""


# ----------------------------------------------------------------------
# Decision
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Complete(ProtocolMessage):
    """The coordinator's decision to complete (commit) the transaction."""


@dataclass(frozen=True)
class Abort(ProtocolMessage):
    """The coordinator's decision to abort the transaction."""


# ----------------------------------------------------------------------
# Outcome propagation (section 3.3)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OutcomeQuery(ProtocolMessage):
    """Ask the recipient (normally the coordinator) for *txn*'s outcome."""

    requester: SiteId


@dataclass(frozen=True)
class OutcomeNotify(ProtocolMessage):
    """Inform the recipient that *txn* committed or aborted."""

    committed: bool
    origin: SiteId


@dataclass(frozen=True)
class OutcomeAck(ProtocolMessage):
    """Acknowledge an :class:`OutcomeNotify` so the sender can GC."""

    site: SiteId
