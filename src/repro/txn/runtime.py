"""Shared runtime plumbing for the transaction layer.

:class:`SiteRuntime` bundles the per-site services (clock, transport,
store, locks, outcome table, metrics) that the participant and
coordinator roles both need, and :class:`TransitionLog` records the
Figure-1 state transitions that the protocol bench replays.

The clock/timer/transport surface is the :class:`repro.runtime.Runtime`
interface — the protocol state machines never touch the simulator or
the network directly, which is what lets the same code run on the
discrete-event kernel (:class:`repro.runtime.SimRuntime`) or on
wall-clock asyncio sockets (:class:`repro.runtime.AsyncioRuntime`).

Configuration (:class:`CommitPolicy`, :class:`ProtocolConfig`, …) moved
to :mod:`repro.txn.config`; importing those names from here still works
but emits :class:`DeprecationWarning`.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Set, Tuple

from typing import Optional

from repro.core.outcome import OutcomeLog, OutcomeTable
from repro.core.polyvalue import Value, depends_on, is_polyvalue, simplify
from repro.db.catalog import Catalog
from repro.db.locks import LockManager
from repro.db.store import ItemStore
from repro.metrics.collector import MetricsCollector
from repro.net.message import SiteId
from repro.obs.events import EventBus
from repro.runtime.base import Runtime, TimerHandle
from repro.txn.timeouts import Patience

if TYPE_CHECKING:  # the runtime value lives in repro.txn.config now
    from repro.txn.config import ProtocolConfig


#: Participant states, exactly the three of Figure 1.
class SiteState(enum.Enum):
    IDLE = "idle"
    COMPUTE = "compute"
    WAIT = "wait"


@dataclass(frozen=True)
class Transition:
    """One observed Figure-1 state transition at one site."""

    time: float
    site: SiteId
    txn: str
    source: SiteState
    target: SiteState
    trigger: str


class TransitionLog:
    """An append-only record of participant state transitions.

    The Figure 1 bench uses this to demonstrate that the implementation
    realises exactly the paper's state diagram: every observed
    (source, trigger, target) triple must be one of the six edges.
    """

    #: The six edges of Figure 1 as (source, trigger, target).
    FIGURE_1_EDGES = frozenset(
        [
            (SiteState.IDLE, "begin", SiteState.COMPUTE),
            (SiteState.COMPUTE, "ready", SiteState.WAIT),
            (SiteState.COMPUTE, "abort", SiteState.IDLE),
            (SiteState.COMPUTE, "compute-timeout", SiteState.IDLE),
            (SiteState.WAIT, "complete", SiteState.IDLE),
            (SiteState.WAIT, "abort", SiteState.IDLE),
            (SiteState.WAIT, "wait-timeout", SiteState.IDLE),
        ]
    )

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.records: List[Transition] = []
        self._bus = bus

    def record(
        self,
        time: float,
        site: SiteId,
        txn: str,
        source: SiteState,
        target: SiteState,
        trigger: str,
    ) -> None:
        """Append one transition (and mirror it onto the event bus)."""
        self.records.append(
            Transition(
                time=time,
                site=site,
                txn=txn,
                source=source,
                target=target,
                trigger=trigger,
            )
        )
        bus = self._bus
        if bus:
            bus.emit(
                "site.state",
                time=time,
                txn=txn,
                site=site,
                source=source.value,
                target=target.value,
                trigger=trigger,
            )

    def edge_counts(self) -> Dict[Tuple[str, str, str], int]:
        """How many times each (source, trigger, target) edge fired."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for record in self.records:
            key = (record.source.value, record.trigger, record.target.value)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def observed_edges(self) -> frozenset:
        """The distinct (source, trigger, target) triples observed."""
        return frozenset(
            (record.source, record.trigger, record.target)
            for record in self.records
        )

    def all_edges_valid(self) -> bool:
        """True iff every observed transition is an edge of Figure 1."""
        return self.observed_edges() <= self.FIGURE_1_EDGES

    def to_dot(self, *, observed_only: bool = True) -> str:
        """Render the state diagram as Graphviz DOT.

        With *observed_only* (default) edges carry the empirically
        observed counts and unobserved Figure-1 edges are drawn dashed;
        otherwise all seven edges are drawn plain.  Paste the output
        into any DOT renderer to get Figure 1 with live annotations.
        """
        counts = self.edge_counts()
        lines = [
            "digraph update_protocol {",
            "  rankdir=LR;",
            '  node [shape=ellipse, fontname="Helvetica"];',
            "  idle; compute; wait;",
        ]
        for source, trigger, target in sorted(
            self.FIGURE_1_EDGES, key=lambda e: (e[0].value, e[1])
        ):
            key = (source.value, trigger, target.value)
            count = counts.get(key, 0)
            if observed_only:
                style = "solid" if count else "dashed"
                label = f"{trigger} (x{count})" if count else trigger
            else:
                style = "solid"
                label = trigger
            lines.append(
                f'  {source.value} -> {target.value} '
                f'[label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


@dataclass
class SiteRuntime:
    """The services one database site's protocol roles share.

    All clock, timer, and transport access funnels through :attr:`rt`
    — a :class:`repro.runtime.Runtime`.  Swapping that one field is
    what moves a site between simulated time and wall-clock sockets.
    """

    site_id: SiteId
    rt: Runtime
    catalog: Catalog
    store: ItemStore
    locks: LockManager
    outcomes: OutcomeTable
    outcome_log: OutcomeLog
    config: ProtocolConfig
    metrics: MetricsCollector
    transitions: TransitionLog
    #: Durable cache of transaction outcomes this site has learned
    #: (its own decisions as coordinator plus notifications received).
    #: Incoming and installed values are eagerly reduced against it,
    #: which closes the race where an outcome notification arrives
    #: before a polyvalue that depends on it.  The paper's "quickly
    #: deleted" bookkeeping is the per-item OutcomeTable; this cache is
    #: an implementation convenience documented in DESIGN.md.
    known_outcomes: Dict[str, bool] = field(default_factory=dict)
    #: Durable set of in-doubt transactions this site was a *direct*
    #: participant of (it installed wait-timeout polyvalues for them).
    #: Only these are actively queried at the coordinator; sites holding
    #: merely-forwarded polyvalues are resolved through the section 3.3
    #: notification chain instead.
    direct_doubts: Set[str] = field(default_factory=set)
    up: bool = True
    #: The system-wide observability bus (None in standalone use; every
    #: emission is guarded so the unobserved cost is a truthiness check).
    bus: Optional[EventBus] = None
    #: Per-peer RTT estimators + timeout policy (auto-built from the
    #: config; volatile — survives crashes only because rebuilding from
    #: scratch is exactly what a recovering site would do anyway).
    patience: Optional[Patience] = None

    def __post_init__(self) -> None:
        if self.patience is None:
            self.patience = Patience(self.config.timeout_policy)

    def send(self, recipient: SiteId, payload: Any) -> None:
        """Send a protocol message from this site."""
        self.rt.send(self.site_id, recipient, payload)

    def schedule(self, delay: float, action: Callable[[], None], *, label: str = "") -> TimerHandle:
        """Schedule an action, guarded so it is dropped if the site is down.

        A crashed site's timers must not fire: the site's volatile state
        is gone and the action would act on stale state.
        """

        def guarded() -> None:
            if self.up:
                action()

        return self.rt.schedule(delay, guarded, label=label, site=self.site_id)

    @property
    def now(self) -> float:
        """Current runtime time (simulated or wall-clock seconds)."""
        return self.rt.now

    def apply_write(self, item: str, value: Value) -> None:
        """Write *value* to the local store with full polyvalue bookkeeping.

        This is the single funnel through which every installation goes
        (commit installs, wait-timeout polyvalue installs, and recovery
        reductions), so the outcome table and the metrics stay exactly
        in step with the store:

        * installing a polyvalue records a dependency on each in-doubt
          transaction it mentions (section 3.3's table);
        * overwriting a polyvalue with a simple value removes the item
          from every table entry (the uncertainty was overwritten, one
          of the paper's four polyvalue-removal paths).
        """
        value = simplify(value)
        if is_polyvalue(value) and self.known_outcomes:
            value = value.reduce(self.known_outcomes)
        was_poly = is_polyvalue(self.store.read(item))
        self.store.write(item, value)
        if is_polyvalue(value):
            self.outcomes.remove_all_dependencies(item)
            self.outcomes.record_dependencies(value.depends_on(), item)
            if not was_poly:
                self.metrics.polyvalue_installed(
                    self.now, site=self.site_id, item=item
                )
                if self.bus:
                    self.bus.emit(
                        "polyvalue.install",
                        time=self.now,
                        site=self.site_id,
                        item=item,
                        depends_on=sorted(value.depends_on()),
                    )
        else:
            if was_poly:
                self.outcomes.remove_all_dependencies(item)
                self.metrics.polyvalue_resolved(
                    self.now, site=self.site_id, item=item
                )
                if self.bus:
                    self.bus.emit(
                        "polyvalue.resolve",
                        time=self.now,
                        site=self.site_id,
                        item=item,
                    )


#: Names the runtime redesign moved to repro.txn.config; the old import
#: path keeps working through the PEP 562 shim below (the PR 3 pattern).
_MOVED_TO_CONFIG = (
    "CommitPolicy",
    "CommitProtocol",
    "ProtocolConfig",
    "PROTOCOL_NAMES",
    "config_for_protocol",
)


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_CONFIG:
        warnings.warn(
            f"importing {name!r} from repro.txn.runtime is deprecated; "
            f"use repro.txn.config (or repro.api)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.txn.config as _config

        return getattr(_config, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
