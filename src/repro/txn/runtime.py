"""Shared runtime plumbing for the transaction layer.

:class:`ProtocolConfig` gathers every tunable of the commit protocol —
most importantly the *commit policy*, which selects between the paper's
mechanism and the two baseline behaviours of section 2:

* ``POLYVALUE`` — a participant whose wait phase times out installs
  polyvalues and releases its locks (section 3.1);
* ``BLOCKING`` — the classic window-minimisation baseline: the
  participant keeps its locks and blocks the items until the outcome is
  learned (section 2.2);
* ``RELAXED`` — the relaxed-consistency baseline: the participant makes
  an arbitrary unilateral decision (section 2.3); the simulator records
  when that decision disagrees with the coordinator's.

:class:`SiteRuntime` bundles the per-site services (clock, network,
store, locks, outcome table, metrics) that the participant and
coordinator roles both need, and :class:`TransitionLog` records the
Figure-1 state transitions that the protocol bench replays.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set, Tuple

from typing import Optional

from repro.core.outcome import OutcomeLog, OutcomeTable
from repro.core.polyvalue import Value, depends_on, is_polyvalue, simplify
from repro.db.catalog import Catalog
from repro.db.locks import LockManager
from repro.db.store import ItemStore
from repro.metrics.collector import MetricsCollector
from repro.net.message import SiteId
from repro.net.network import Network
from repro.obs.events import EventBus
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.txn.timeouts import Patience, RetryPolicy, TimeoutPolicy


class CommitPolicy(enum.Enum):
    """What a participant does when its wait phase times out."""

    POLYVALUE = "polyvalue"
    BLOCKING = "blocking"
    RELAXED = "relaxed"


class CommitProtocol(enum.Enum):
    """Which atomic-commitment protocol the system runs.

    * ``TWO_PHASE`` — the paper's two-phase commit; the
      :class:`CommitPolicy` selects what a participant does when its
      wait phase times out (polyvalues, blocking, or relaxed).
    * ``PAXOS`` — Paxos Commit (Gray & Lamport, "Consensus on
      Transaction Commit"): each participant's prepared/aborted vote is
      decided by its own Paxos instance over 2F+1 acceptors, so the
      commit decision survives any F simultaneous faults and no site
      ever blocks on a single coordinator.
    * ``PATH_SENSITIVE`` — path-sensitive commit (after Soethout et
      al.'s local coordination avoidance): transactions whose outcome
      is invariant across serialization orders are detected by
      pre-analysis (:mod:`repro.txn.preanalysis` plus finite-difference
      probing) and decided locally without any coordination round;
      only the coordination-requiring residue runs two-phase commit.
    """

    TWO_PHASE = "two-phase"
    PAXOS = "paxos"
    PATH_SENSITIVE = "path-sensitive"


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the update protocol.

    All durations are simulated seconds.  The defaults suit a LAN-ish
    network (10 ms base latency): the protocol normally finishes in a
    few tens of milliseconds, so "promptly" — the paper's word for both
    participant and coordinator patience — defaults to half a second.
    """

    policy: CommitPolicy = CommitPolicy.POLYVALUE
    #: Participant patience in the compute phase: how long a site that
    #: acquired read locks waits for the coordinator's stage request (or
    #: abort) before discarding the transaction (Figure 1, compute→idle).
    compute_timeout: float = 0.5
    #: Participant patience in the wait phase: how long after sending
    #: *ready* a site waits for complete/abort before applying its
    #: policy (Figure 1, wait→idle with polyvalue installation).
    wait_timeout: float = 0.5
    #: Coordinator patience: how long it waits for all read replies, and
    #: then for all ready messages, before deciding to abort.
    ready_timeout: float = 0.4
    #: How often a site holding unresolved polyvalues (or blocked
    #: transactions) re-queries coordinators for outcomes.
    outcome_query_interval: float = 1.0
    #: RELAXED policy only: probability the unilateral decision is
    #: "complete" (the paper calls the choice arbitrary).
    relaxed_commit_probability: float = 1.0
    #: POLYVALUE policy: how many times a wait-phase participant asks
    #: the coordinator for the outcome (re-arming its timer) before
    #: giving up and installing polyvalues.  This implements the
    #: paper's §6 remark that "the polyvalue mechanism can be combined
    #: with other atomic distributed update protocols to decrease the
    #: chance that polyvalues will be created": transient hiccups (a
    #: lost complete message, a short partition) resolve within a retry
    #: or two, and only genuine outages produce polyvalues.  0 installs
    #: immediately at the first timeout, as in section 3.1.
    wait_query_retries: int = 0
    #: Cap on polytransaction fan-out (section 3.2 alternatives).
    max_alternatives: int = 1024
    #: How the three patience constants above are interpreted: the
    #: default fixed policy uses them verbatim (bit-for-bit replayable);
    #: an adaptive policy treats them as pre-sample fallbacks and feeds
    #: per-peer Jacobson RTT estimators into every timeout (see
    #: :mod:`repro.txn.timeouts`).
    timeout_policy: TimeoutPolicy = TimeoutPolicy()
    #: Bounded retransmission for the outcome-maintenance loop:
    #: per-destination exponential backoff with deterministic jitter
    #: and a down-peer suppression window.
    retry: RetryPolicy = RetryPolicy()
    #: Graceful-degradation valve (the paper's §6 hybrid): when set, a
    #: site already holding this many unresolved polyvalues answers new
    #: wait-phase timeouts with the BLOCKING policy instead of
    #: installing more — bounding in-doubt state under overload at the
    #: cost of availability on the affected items.  None disables.
    polyvalue_budget: Optional[int] = None
    #: Fault injection for the correctness harness (repro.check) ONLY.
    #: None in any real configuration.  When set to a fault name (see
    #: :data:`repro.check.mutation.FAULTS`), the participant's
    #: wait-phase branch deliberately misbehaves so the mutation smoke
    #: test can prove the invariant oracles detect protocol bugs.
    wait_phase_fault: Optional[str] = None
    #: Which commit protocol the system runs.  ``TWO_PHASE`` keeps the
    #: paper's protocol (modulated by :attr:`policy`); ``PAXOS`` and
    #: ``PATH_SENSITIVE`` select the bake-off peers.
    protocol: CommitProtocol = CommitProtocol.TWO_PHASE
    #: PAXOS only: the number of simultaneous acceptor faults the
    #: commit must survive.  The acceptor set has 2F+1 members drawn
    #: round-robin from the sites; None sizes F to the largest value
    #: the site count supports, ``(n_sites - 1) // 2``.
    paxos_fault_tolerance: Optional[int] = None
    #: PAXOS only: how long a wait-phase participant waits for the
    #: leader's decision before starting leader failover (running
    #: Phase 1 itself with a higher ballot).
    paxos_failover_timeout: float = 0.5
    #: Fault injection for the Paxos state machine (repro.check ONLY):
    #: ``"acceptor-no-persist"`` makes acceptors acknowledge Phase 2a
    #: without persisting, so failover can resurrect a forgotten vote
    #: and contradict the fast-path decision.
    paxos_fault: Optional[str] = None
    #: Fault injection for the path-sensitive analyser (repro.check
    #: ONLY): ``"misclassify-one"`` forces the first
    #: coordination-requiring transaction onto the local fast path, so
    #: the effect oracles can prove they catch a wrong classification.
    path_fault: Optional[str] = None

    @property
    def protocol_kind(self) -> str:
        """The oracle-dispatch name of this configuration's protocol.

        One of ``{"polyvalue", "blocking", "relaxed", "paxos",
        "pathsensitive"}`` — the same vocabulary the CLI's
        ``--protocol`` flag uses.  Oracles dispatch on this rather
        than on (protocol, policy) pairs.
        """
        if self.protocol is CommitProtocol.PAXOS:
            return "paxos"
        if self.protocol is CommitProtocol.PATH_SENSITIVE:
            return "pathsensitive"
        return self.policy.value


#: The CLI's ``--protocol`` vocabulary, in presentation order.
PROTOCOL_NAMES = (
    "polyvalue",
    "blocking",
    "relaxed",
    "paxos",
    "pathsensitive",
)


def config_for_protocol(
    name: str, base: Optional[ProtocolConfig] = None
) -> ProtocolConfig:
    """A :class:`ProtocolConfig` for one of the five ``--protocol`` names.

    *base* supplies every other tunable (timeouts, retry policy, fault
    hooks); only the (protocol, policy) pair is rewritten.  The
    path-sensitive residue path runs the polyvalue policy so its
    coordinated transactions inherit the paper's availability story.
    """
    base = base if base is not None else ProtocolConfig()
    if name == "polyvalue":
        return dataclasses.replace(
            base, protocol=CommitProtocol.TWO_PHASE,
            policy=CommitPolicy.POLYVALUE,
        )
    if name == "blocking":
        return dataclasses.replace(
            base, protocol=CommitProtocol.TWO_PHASE,
            policy=CommitPolicy.BLOCKING,
        )
    if name == "relaxed":
        return dataclasses.replace(
            base, protocol=CommitProtocol.TWO_PHASE,
            policy=CommitPolicy.RELAXED,
        )
    if name == "paxos":
        return dataclasses.replace(
            base, protocol=CommitProtocol.PAXOS,
            policy=CommitPolicy.BLOCKING,
        )
    if name == "pathsensitive":
        return dataclasses.replace(
            base, protocol=CommitProtocol.PATH_SENSITIVE,
            policy=CommitPolicy.POLYVALUE,
        )
    raise ValueError(
        f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}"
    )


#: Participant states, exactly the three of Figure 1.
class SiteState(enum.Enum):
    IDLE = "idle"
    COMPUTE = "compute"
    WAIT = "wait"


@dataclass(frozen=True)
class Transition:
    """One observed Figure-1 state transition at one site."""

    time: float
    site: SiteId
    txn: str
    source: SiteState
    target: SiteState
    trigger: str


class TransitionLog:
    """An append-only record of participant state transitions.

    The Figure 1 bench uses this to demonstrate that the implementation
    realises exactly the paper's state diagram: every observed
    (source, trigger, target) triple must be one of the six edges.
    """

    #: The six edges of Figure 1 as (source, trigger, target).
    FIGURE_1_EDGES = frozenset(
        [
            (SiteState.IDLE, "begin", SiteState.COMPUTE),
            (SiteState.COMPUTE, "ready", SiteState.WAIT),
            (SiteState.COMPUTE, "abort", SiteState.IDLE),
            (SiteState.COMPUTE, "compute-timeout", SiteState.IDLE),
            (SiteState.WAIT, "complete", SiteState.IDLE),
            (SiteState.WAIT, "abort", SiteState.IDLE),
            (SiteState.WAIT, "wait-timeout", SiteState.IDLE),
        ]
    )

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.records: List[Transition] = []
        self._bus = bus

    def record(
        self,
        time: float,
        site: SiteId,
        txn: str,
        source: SiteState,
        target: SiteState,
        trigger: str,
    ) -> None:
        """Append one transition (and mirror it onto the event bus)."""
        self.records.append(
            Transition(
                time=time,
                site=site,
                txn=txn,
                source=source,
                target=target,
                trigger=trigger,
            )
        )
        bus = self._bus
        if bus:
            bus.emit(
                "site.state",
                time=time,
                txn=txn,
                site=site,
                source=source.value,
                target=target.value,
                trigger=trigger,
            )

    def edge_counts(self) -> Dict[Tuple[str, str, str], int]:
        """How many times each (source, trigger, target) edge fired."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for record in self.records:
            key = (record.source.value, record.trigger, record.target.value)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def observed_edges(self) -> frozenset:
        """The distinct (source, trigger, target) triples observed."""
        return frozenset(
            (record.source, record.trigger, record.target)
            for record in self.records
        )

    def all_edges_valid(self) -> bool:
        """True iff every observed transition is an edge of Figure 1."""
        return self.observed_edges() <= self.FIGURE_1_EDGES

    def to_dot(self, *, observed_only: bool = True) -> str:
        """Render the state diagram as Graphviz DOT.

        With *observed_only* (default) edges carry the empirically
        observed counts and unobserved Figure-1 edges are drawn dashed;
        otherwise all seven edges are drawn plain.  Paste the output
        into any DOT renderer to get Figure 1 with live annotations.
        """
        counts = self.edge_counts()
        lines = [
            "digraph update_protocol {",
            "  rankdir=LR;",
            '  node [shape=ellipse, fontname="Helvetica"];',
            "  idle; compute; wait;",
        ]
        for source, trigger, target in sorted(
            self.FIGURE_1_EDGES, key=lambda e: (e[0].value, e[1])
        ):
            key = (source.value, trigger, target.value)
            count = counts.get(key, 0)
            if observed_only:
                style = "solid" if count else "dashed"
                label = f"{trigger} (x{count})" if count else trigger
            else:
                style = "solid"
                label = trigger
            lines.append(
                f'  {source.value} -> {target.value} '
                f'[label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


@dataclass
class SiteRuntime:
    """The services one database site's protocol roles share."""

    site_id: SiteId
    sim: Simulator
    network: Network
    catalog: Catalog
    store: ItemStore
    locks: LockManager
    outcomes: OutcomeTable
    outcome_log: OutcomeLog
    config: ProtocolConfig
    metrics: MetricsCollector
    transitions: TransitionLog
    #: Durable cache of transaction outcomes this site has learned
    #: (its own decisions as coordinator plus notifications received).
    #: Incoming and installed values are eagerly reduced against it,
    #: which closes the race where an outcome notification arrives
    #: before a polyvalue that depends on it.  The paper's "quickly
    #: deleted" bookkeeping is the per-item OutcomeTable; this cache is
    #: an implementation convenience documented in DESIGN.md.
    known_outcomes: Dict[str, bool] = field(default_factory=dict)
    #: Durable set of in-doubt transactions this site was a *direct*
    #: participant of (it installed wait-timeout polyvalues for them).
    #: Only these are actively queried at the coordinator; sites holding
    #: merely-forwarded polyvalues are resolved through the section 3.3
    #: notification chain instead.
    direct_doubts: Set[str] = field(default_factory=set)
    up: bool = True
    #: The system-wide observability bus (None in standalone use; every
    #: emission is guarded so the unobserved cost is a truthiness check).
    bus: Optional[EventBus] = None
    #: Per-peer RTT estimators + timeout policy (auto-built from the
    #: config; volatile — survives crashes only because rebuilding from
    #: scratch is exactly what a recovering site would do anyway).
    patience: Optional[Patience] = None

    def __post_init__(self) -> None:
        if self.patience is None:
            self.patience = Patience(self.config.timeout_policy)

    def send(self, recipient: SiteId, payload: Any) -> None:
        """Send a protocol message from this site."""
        self.network.send(self.site_id, recipient, payload)

    def schedule(self, delay: float, action: Callable[[], None], *, label: str = "") -> Event:
        """Schedule an action, guarded so it is dropped if the site is down.

        A crashed site's timers must not fire: the site's volatile state
        is gone and the action would act on stale state.
        """

        def guarded() -> None:
            if self.up:
                action()

        return self.sim.schedule(delay, guarded, label=label)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def apply_write(self, item: str, value: Value) -> None:
        """Write *value* to the local store with full polyvalue bookkeeping.

        This is the single funnel through which every installation goes
        (commit installs, wait-timeout polyvalue installs, and recovery
        reductions), so the outcome table and the metrics stay exactly
        in step with the store:

        * installing a polyvalue records a dependency on each in-doubt
          transaction it mentions (section 3.3's table);
        * overwriting a polyvalue with a simple value removes the item
          from every table entry (the uncertainty was overwritten, one
          of the paper's four polyvalue-removal paths).
        """
        value = simplify(value)
        if is_polyvalue(value) and self.known_outcomes:
            value = value.reduce(self.known_outcomes)
        was_poly = is_polyvalue(self.store.read(item))
        self.store.write(item, value)
        if is_polyvalue(value):
            self.outcomes.remove_all_dependencies(item)
            self.outcomes.record_dependencies(value.depends_on(), item)
            if not was_poly:
                self.metrics.polyvalue_installed(
                    self.now, site=self.site_id, item=item
                )
                if self.bus:
                    self.bus.emit(
                        "polyvalue.install",
                        time=self.now,
                        site=self.site_id,
                        item=item,
                        depends_on=sorted(value.depends_on()),
                    )
        else:
            if was_poly:
                self.outcomes.remove_all_dependencies(item)
                self.metrics.polyvalue_resolved(
                    self.now, site=self.site_id, item=item
                )
                if self.bus:
                    self.bus.emit(
                        "polyvalue.resolve",
                        time=self.now,
                        site=self.site_id,
                        item=item,
                    )
