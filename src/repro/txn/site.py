"""A database site: storage + participant + coordinator + outcome relay.

:class:`DatabaseSite` is the unit of failure in the simulated system.
It owns one :class:`~repro.db.store.ItemStore` (stable storage), one
lock manager (volatile), the section 3.3 outcome table (stable — it
describes stable polyvalues), and the two protocol roles.

Message dispatch, outcome learning/propagation with reliable retry, and
crash/recovery behaviour all live here:

* **crash** — volatile state (locks, in-flight coordination, compute/
  wait records) is lost; stable state (item values, staged-at-ready
  updates, the outcome table, the outcome log, pending outcome
  notifications) survives.
* **recover** — the participant re-applies its wait-timeout policy to
  staged-in-doubt transactions, undecided locally-coordinated
  transactions are presumed aborted, and the outcome-maintenance loop
  resumes querying and re-notifying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.errors import ProtocolError
from repro.core.polyvalue import is_polyvalue
from repro.net.message import Envelope, SiteId
from repro.runtime.base import Periodic
from repro.txn import protocol
from repro.txn.coordinator import Coordinator
from repro.txn.participant import Participant
from repro.txn.runtime import SiteRuntime
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnId,
    coordinator_of,
)


@dataclass
class _RetryState:
    """Volatile backoff bookkeeping for one owed notification."""

    attempts: int = 0
    next_at: float = 0.0


class DatabaseSite:
    """One site of the distributed database."""

    def __init__(self, runtime: SiteRuntime) -> None:
        self.runtime = runtime
        self.participant = Participant(runtime)
        self.coordinator = Coordinator(runtime)
        #: Durable: outcome notifications owed to other sites, retried
        #: until acknowledged.  Maps (txn, site) -> committed.
        self._pending_notifies: Dict[Tuple[TxnId, SiteId], bool] = {}
        #: Volatile: per-owed-entry exponential backoff state.  Losing
        #: it on a crash is correct — a recovering site should resend
        #: promptly, exactly what empty state produces.
        self._retry: Dict[Tuple[TxnId, SiteId], _RetryState] = {}
        #: Volatile: consecutive unacknowledged sends per destination;
        #: reaching the policy threshold suppresses the destination.
        self._peer_strikes: Dict[SiteId, int] = {}
        # Raw (unguarded) runtime schedule on purpose: the periodic
        # keeps re-arming while the site is down — exactly the old
        # PeriodicTask-on-the-simulator behaviour — and the action
        # itself checks `runtime.up`.
        self._maintenance = Periodic(
            runtime.rt,
            runtime.config.outcome_query_interval,
            self._outcome_maintenance,
            label=f"outcome-maintenance:{runtime.site_id}",
            site=runtime.site_id,
        )
        runtime.rt.register(runtime.site_id, self.on_message)
        runtime.rt.attach_durability(runtime.site_id, self.durable_snapshot)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def site_id(self) -> SiteId:
        return self.runtime.site_id

    @property
    def store(self):
        return self.runtime.store

    @property
    def is_up(self) -> bool:
        return self.runtime.up

    def polyvalue_count(self) -> int:
        """How many local items currently hold polyvalues."""
        return self.runtime.store.polyvalue_count()

    def protocol_residue(self) -> int:
        """Protocol-specific undecided state held at this site.

        The base protocol keeps all of its convergence-relevant state in
        the structures the system facade already counts (polyvalues,
        outcome tables, outcome logs, pending handles); subclasses with
        extra durable machinery (Paxos acceptor state, path-sensitive
        apply queues) report it here so :meth:`DistributedSystem.settle`
        and the convergence oracle include it.
        """
        return 0

    # ------------------------------------------------------------------
    # Client entry point (the system facade calls this)
    # ------------------------------------------------------------------

    def submit(self, transaction: Transaction, handle: TransactionHandle) -> TxnId:
        """Begin coordinating *transaction* at this site."""
        if not self.runtime.up:
            raise ProtocolError(
                f"cannot submit to crashed site {self.site_id!r}"
            )
        return self.coordinator.begin(transaction, handle)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        """Handle one delivered protocol message."""
        if not self.runtime.up:
            return  # the network normally drops these; belt and braces
        if envelope.sender != self.site_id:
            self._note_peer_alive(envelope.sender)
        message = envelope.payload
        if isinstance(message, protocol.ReadRequest):
            self.participant.handle_read_request(message, envelope.sender)
        elif isinstance(message, protocol.ReadReply):
            self.coordinator.handle_read_reply(message)
        elif isinstance(message, protocol.StageRequest):
            self.participant.handle_stage_request(message, envelope.sender)
        elif isinstance(message, protocol.Ready):
            self.coordinator.handle_ready(message)
        elif isinstance(message, protocol.Refuse):
            self.coordinator.handle_refuse(message)
        elif isinstance(message, protocol.Complete):
            self.participant.handle_complete(message)
            self._learn_outcome(message.txn, committed=True)
            self.runtime.send(
                envelope.sender,
                protocol.OutcomeAck(txn=message.txn, site=self.site_id),
            )
        elif isinstance(message, protocol.Abort):
            self.participant.handle_abort(message)
            self._learn_outcome(message.txn, committed=False)
        elif isinstance(message, protocol.OutcomeQuery):
            self._answer_outcome_query(message)
        elif isinstance(message, protocol.OutcomeNotify):
            self._learn_outcome(message.txn, message.committed)
            self.runtime.send(
                message.origin,
                protocol.OutcomeAck(txn=message.txn, site=self.site_id),
            )
        elif isinstance(message, protocol.OutcomeAck):
            self.runtime.outcome_log.acknowledge(message.txn, message.site)
            self._pending_notifies.pop((message.txn, message.site), None)
            self._retry.pop((message.txn, message.site), None)
        else:
            raise ProtocolError(f"unhandled message type: {message!r}")

    # ------------------------------------------------------------------
    # Outcome learning and propagation (section 3.3)
    # ------------------------------------------------------------------

    def _learn_outcome(self, txn: TxnId, committed: bool) -> None:
        """Absorb one transaction outcome: reduce, relay, audit, forget."""
        rt = self.runtime
        rt.known_outcomes[txn] = committed
        if txn in rt.direct_doubts:
            # This site installed wait-timeout polyvalues for txn and has
            # only now learned its fate: the in-doubt window closes here.
            rt.metrics.in_doubt_closed(rt.now, site=self.site_id, txn=txn)
            if rt.bus:
                rt.bus.emit(
                    "indoubt.close",
                    time=rt.now,
                    txn=txn,
                    site=self.site_id,
                    committed=committed,
                )
        rt.direct_doubts.discard(txn)
        self.participant.handle_outcome_known(txn, committed)
        resolution = rt.outcomes.resolve(txn, committed)
        for item in resolution.items_to_reduce:
            value = rt.store.read(item)
            if is_polyvalue(value):
                rt.apply_write(item, value.reduce({txn: committed}))
        for site in resolution.sites_to_notify:
            if site == self.site_id:
                continue
            self._pending_notifies[(txn, site)] = committed
            rt.send(
                site,
                protocol.OutcomeNotify(
                    txn=txn, committed=committed, origin=self.site_id
                ),
            )

    def _answer_outcome_query(self, message: protocol.OutcomeQuery) -> None:
        """Answer "what happened to T?" as T's coordinator.

        Known commits come from the durable outcome log (or the local
        outcome cache); an unknown, non-active transaction is presumed
        aborted.  A still-undecided transaction gets no answer — the
        requester retries.
        """
        rt = self.runtime
        txn = message.txn
        if coordinator_of(txn) != self.site_id:
            return  # misdirected; only the coordinator answers queries
        if txn in self.coordinator.active_transactions():
            return  # undecided: stay silent, the requester will retry
        if rt.outcome_log.knows(txn):
            committed = rt.outcome_log.outcome_of(txn)
        elif txn in rt.known_outcomes:
            committed = rt.known_outcomes[txn]
        else:
            committed = False  # presumed abort
        rt.send(
            message.requester,
            protocol.OutcomeNotify(
                txn=txn, committed=committed, origin=self.site_id
            ),
        )

    def _note_peer_alive(self, peer: SiteId) -> None:
        """Any inbound message is liveness evidence: end suppression and
        re-arm owed entries for *peer* at the base delay, so a recovered
        peer is caught up within roughly one maintenance period instead
        of waiting out a capped backoff."""
        if self._peer_strikes.get(peer):
            self._peer_strikes[peer] = 0
        if not self._retry:
            return
        rt = self.runtime
        base = rt.config.retry.base(rt.config.outcome_query_interval)
        horizon = rt.now + base
        for (txn, site), state in self._retry.items():
            if site == peer and state.next_at > horizon:
                state.next_at = horizon
                state.attempts = 0

    def _owed_notifications(self) -> Dict[Tuple[TxnId, SiteId], bool]:
        """Every (txn, site) this site owes an OutcomeNotify, deduplicated.

        ``_pending_notifies`` (relay duties from the section 3.3 tables)
        and the durable outcome log's unacknowledged participants can
        both list the same pair — the log retry exists because the first
        Complete can be delivered while this coordinator is down for the
        returning OutcomeAck (the repro.check convergence oracle caught
        that leak).  Merging them here sends one message per pair per
        pass instead of two.
        """
        rt = self.runtime
        owed: Dict[Tuple[TxnId, SiteId], bool] = dict(self._pending_notifies)
        for txn, entry in rt.outcome_log.entries().items():
            for site in entry.unacknowledged:
                if site == self.site_id:
                    rt.outcome_log.acknowledge(txn, site)
                    continue
                owed[(txn, site)] = entry.committed
        return owed

    def _outcome_maintenance(self) -> None:
        """Periodic: retry owed notifications, query for needed outcomes.

        Notification retries back off exponentially per destination
        entry (deterministic jitter, suppression window for peers that
        never answer) — a long outage costs O(log) sends per entry, not
        one per tick.  Outcome *queries* stay flat-interval: they are
        the liveness path for this site's own polyvalues and their cost
        is bounded by the number of in-doubt transactions.
        """
        rt = self.runtime
        if not rt.up:
            return
        policy = rt.config.retry
        base = policy.base(rt.config.outcome_query_interval)
        now = rt.now
        owed = self._owed_notifications()
        # Drop retry state for entries no longer owed (acknowledged).
        for key in [key for key in self._retry if key not in owed]:
            del self._retry[key]
        for (txn, site), committed in owed.items():
            state = self._retry.get((txn, site))
            if state is None:
                state = _RetryState()
                if self._peer_strikes.get(site, 0) >= policy.suppression_threshold:
                    # The destination has repeatedly failed to ack:
                    # start new entries inside the suppression window
                    # instead of probing from the base again.
                    state.next_at = now + policy.suppression_window
                    self._retry[(txn, site)] = state
                    continue
                self._retry[(txn, site)] = state
            elif now < state.next_at:
                continue
            state.attempts += 1
            state.next_at = now + policy.delay(
                state.attempts, default_base=base, key=f"{txn}->{site}"
            )
            self._peer_strikes[site] = self._peer_strikes.get(site, 0) + 1
            rt.metrics.notify_retransmitted(site=self.site_id)
            rt.send(
                site,
                protocol.OutcomeNotify(
                    txn=txn, committed=committed, origin=self.site_id
                ),
            )
        needed = set(rt.direct_doubts) | self.participant.pending_outcome_queries()
        for txn in needed:
            coordinator = coordinator_of(txn)
            if coordinator == self.site_id:
                # Local coordinator: resolve directly (presumed abort if
                # the decision is not in the durable log).
                if txn in self.coordinator.active_transactions():
                    continue
                if rt.outcome_log.knows(txn):
                    self._learn_outcome(txn, rt.outcome_log.outcome_of(txn))
                elif txn in rt.known_outcomes:
                    self._learn_outcome(txn, rt.known_outcomes[txn])
                else:
                    self._learn_outcome(txn, committed=False)
            else:
                rt.send(
                    coordinator,
                    protocol.OutcomeQuery(txn=txn, requester=self.site_id),
                )

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> List[TransactionHandle]:
        """Fail-stop: lose volatile state, return undecided local handles."""
        rt = self.runtime
        rt.up = False
        undecided = self.coordinator.on_crash()
        self.participant.on_crash()
        # Locks are volatile, as is the retransmission bookkeeping.
        rt.locks = type(rt.locks)()
        self._retry.clear()
        self._peer_strikes.clear()
        return undecided

    def recover(self) -> None:
        """Restart after a crash: replay durable state, resume maintenance."""
        rt = self.runtime
        rt.up = True
        self.participant.on_recover()
        # Kick maintenance immediately: recovery is exactly when queued
        # queries and notifications are most likely to matter.
        self._outcome_maintenance()

    def shutdown(self) -> None:
        """Stop background work permanently (live-cluster teardown)."""
        self._maintenance.stop()

    # ------------------------------------------------------------------
    # Durable state (live runtime checkpoint/restore)
    # ------------------------------------------------------------------

    #: Bump when the snapshot layout changes incompatibly.
    DURABLE_VERSION = 1

    def durable_snapshot(self) -> Dict[str, object]:
        """This site's durable state as a JSON-serialisable dict.

        Exactly the state the crash/recovery docstring above calls
        stable: item values (polyvalues included), the outcome log, the
        learned-outcome cache, direct doubts, owed notifications, staged
        updates, relaxed-policy unilateral choices, and the coordinator's
        transaction sequence (so a restarted coordinator never reuses a
        txn id).  The in-memory copy is authoritative while the process
        lives; the :class:`~repro.runtime.aio.AsyncioRuntime` persists
        this after every action, and :meth:`restore_durable` rebuilds
        the site from it — the same philosophy as
        :mod:`repro.txn.snapshot`, per site instead of per system.
        """
        from repro.core.serialize import encode_state

        rt = self.runtime
        return {
            "version": self.DURABLE_VERSION,
            "site": self.site_id,
            "values": encode_state(rt.store.all_values()),
            "outcome_log": {
                txn: {
                    "committed": entry.committed,
                    "unacknowledged": sorted(entry.unacknowledged),
                }
                for txn, entry in rt.outcome_log.entries().items()
            },
            "known_outcomes": dict(rt.known_outcomes),
            "direct_doubts": sorted(rt.direct_doubts),
            "pending_notifies": [
                [txn, site, committed]
                for (txn, site), committed in sorted(
                    self._pending_notifies.items()
                )
            ],
            "staged": {
                txn: encode_state(staged)
                for txn, staged in self.participant.durable_staged().items()
            },
            "unilateral": self.participant.unaudited_unilateral(),
            "sequence": self.coordinator.sequence,
        }

    def restore_durable(self, snapshot: Dict[str, object]) -> None:
        """Rebuild durable state from :meth:`durable_snapshot` output.

        Call on a down site, before :meth:`recover`.  Volatile state is
        cleared; the outcome table is rebuilt from the restored
        polyvalues themselves (they *are* the durable record of which
        items depend on which in-doubt transactions).
        """
        from repro.core.serialize import decode_state

        rt = self.runtime
        version = snapshot.get("version")
        if version != self.DURABLE_VERSION:
            raise ProtocolError(
                f"unsupported durable snapshot version {version!r}"
            )
        rt.known_outcomes = dict(snapshot.get("known_outcomes", {}))
        rt.direct_doubts = set(snapshot.get("direct_doubts", []))
        outcome_log = type(rt.outcome_log)()
        for txn, entry in snapshot.get("outcome_log", {}).items():
            outcome_log.decide(
                txn,
                bool(entry["committed"]),
                participants=entry.get("unacknowledged", []),
            )
        rt.outcome_log = outcome_log
        rt.outcomes = type(rt.outcomes)()
        for item, value in decode_state(snapshot.get("values", {})).items():
            rt.store.write(item, value)
            if is_polyvalue(value):
                rt.outcomes.record_dependencies(value.depends_on(), item)
        self._pending_notifies = {
            (txn, site): bool(committed)
            for txn, site, committed in snapshot.get("pending_notifies", [])
        }
        self.participant.restore_durable(
            staged={
                txn: decode_state(staged)
                for txn, staged in snapshot.get("staged", {}).items()
            },
            unilateral={
                txn: bool(choice)
                for txn, choice in snapshot.get("unilateral", {}).items()
            },
        )
        self.coordinator.restore_sequence(int(snapshot.get("sequence", 0)))
        self._retry.clear()
        self._peer_strikes.clear()
