"""Whole-system snapshots: persist and restore a database mid-uncertainty.

A database using polyvalues must be able to checkpoint *while failures
are outstanding* — polyvalues are first-class state, not an in-memory
anomaly.  This module serialises everything a cold restart needs:

* data placement (item → site);
* every item's current value, polyvalues included
  (:mod:`repro.core.serialize`);
* every site's durable commit log (undelivered outcomes — without
  these, an unresolved polyvalue whose transaction actually committed
  would wrongly resolve to presumed-abort after the restore);
* every site's cache of already-learned outcomes.

What is *not* persisted is exactly what the protocol treats as
reconstructible: outcome-table dependencies are rebuilt from the
polyvalues themselves, and every restored in-doubt transaction is
marked for active coordinator querying, so a restored system converges
by the ordinary §3.3 machinery.  Restore targets the same site topology
(transaction identifiers embed coordinator site names).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.core.errors import ReproError
from repro.core.polyvalue import depends_on
from repro.core.serialize import decode_value, encode_value
from repro.db.catalog import Catalog
from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem

SNAPSHOT_VERSION = 1


def export_snapshot(system: DistributedSystem) -> Dict[str, Any]:
    """Capture *system*'s durable state as a JSON-compatible dict."""
    placement: Dict[str, str] = {}
    values: Dict[str, Any] = {}
    for site_id, site in system.sites.items():
        for item in site.runtime.store.items():
            placement[item] = site_id
            values[item] = encode_value(site.runtime.store.read(item))
    outcome_logs: Dict[str, Dict[str, Any]] = {}
    known: Dict[str, Dict[str, bool]] = {}
    for site_id, site in system.sites.items():
        outcome_logs[site_id] = {
            txn: {
                "committed": entry.committed,
                "unacknowledged": sorted(entry.unacknowledged),
            }
            for txn, entry in site.runtime.outcome_log.entries().items()
        }
        known[site_id] = dict(site.runtime.known_outcomes)
    return {
        "version": SNAPSHOT_VERSION,
        "placement": placement,
        "values": values,
        "outcome_logs": outcome_logs,
        "known_outcomes": known,
    }


def import_snapshot(
    snapshot: Mapping[str, Any],
    *,
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    **network_kwargs,
) -> DistributedSystem:
    """Build a fresh system from :func:`export_snapshot` output.

    The restored system resumes outcome resolution on its own: rebuilt
    polyvalue dependencies are queried at their coordinators, restored
    commit logs answer those queries, and anything truly unknown
    resolves by presumed abort — exactly as if the whole cluster had
    crashed and recovered, which is what a restore is.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    try:
        placement = dict(snapshot["placement"])
        encoded_values = snapshot["values"]
        outcome_logs = snapshot["outcome_logs"]
        known = snapshot["known_outcomes"]
    except KeyError as error:
        raise ReproError(f"snapshot missing section {error}") from error
    values = {
        item: decode_value(encoded_values[item]) for item in placement
    }
    catalog = Catalog.from_mapping(placement)
    system = DistributedSystem(
        catalog=catalog,
        initial_values=values,
        seed=seed,
        config=config,
        **network_kwargs,
    )
    for site_id, site in system.sites.items():
        runtime = site.runtime
        # Restore the durable outcome knowledge.
        for txn, outcome in known.get(site_id, {}).items():
            runtime.known_outcomes[txn] = bool(outcome)
        for txn, entry in outcome_logs.get(site_id, {}).items():
            runtime.outcome_log.decide(
                txn,
                bool(entry["committed"]),
                participants=list(entry.get("unacknowledged", ())),
            )
        # Rebuild the §3.3 dependency bookkeeping from the polyvalues
        # themselves, and mark every dependency for active querying:
        # after a full-cluster restore there is no forwarding chain
        # left to rely on.
        for item in runtime.store.polyvalued_items():
            value = runtime.store.read(item)
            for txn in depends_on(value):
                runtime.outcomes.record_dependency(txn, item)
                runtime.direct_doubts.add(txn)
    return system
