"""The top-level facade: a whole simulated distributed database.

:class:`DistributedSystem` assembles the simulation engine, the
network, and one :class:`~repro.txn.site.DatabaseSite` per site, and
offers the client-level API the examples and benchmarks use:

>>> system = DistributedSystem.build(
...     sites=3, items={"a": 10, "b": 20}, seed=42)
>>> handle = system.submit(Transaction(
...     body=lambda ctx: ctx.write("a", ctx.read("a") + 1), items=("a",)))
>>> system.run_for(1.0)
>>> handle.status
<TxnStatus.COMMITTED: 'committed'>

The facade also implements the :class:`~repro.net.failures.Crashable`
interface so the failure injectors can drive it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.errors import ProtocolError
from repro.core.outcome import OutcomeLog, OutcomeTable
from repro.core.polyvalue import Value
from repro.db.catalog import Catalog
from repro.db.locks import LockManager
from repro.db.store import ItemStore
from repro.metrics.collector import MetricsCollector
from repro.net.message import SiteId
from repro.net.network import Network
from repro.obs.events import EventBus
from repro.sim.engine import Simulator
from repro.sim.rand import Rng
from repro.txn.paxos import DecisionBoard, PaxosSite
from repro.txn.pathsensitive import PathRegistry, PathSensitiveSite
from repro.runtime.sim import SimRuntime
from repro.txn.config import CommitProtocol, ProtocolConfig
from repro.txn.runtime import SiteRuntime, TransitionLog
from repro.txn.site import DatabaseSite
from repro.txn.transaction import Transaction, TransactionHandle, TxnStatus

ItemId = str


class DistributedSystem:
    """A complete simulated distributed database.

    Use :meth:`build` for the common case (items spread round-robin over
    ``site-0 .. site-N``); the constructor accepts an explicit
    :class:`~repro.db.catalog.Catalog` for custom placements.
    """

    def __init__(
        self,
        *,
        catalog: Catalog,
        initial_values: Mapping[ItemId, Value],
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        base_latency: float = 0.01,
        jitter: float = 0.005,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        corruption_probability: float = 0.0,
    ) -> None:
        self.config = config or ProtocolConfig()
        #: The database's initial contents, retained for ground-truth
        #: checks (serial replay needs the state before any commit).
        self.initial_values: Dict[ItemId, Value] = dict(initial_values)
        self.sim = Simulator()
        self.rng = Rng(seed)
        #: The system-wide observability bus.  With no subscribers every
        #: instrumentation point short-circuits on a truthiness check,
        #: so an unobserved system pays (almost) nothing.
        self.bus = EventBus()
        self.sim.bus = self.bus
        self.metrics = MetricsCollector()
        self.transitions = TransitionLog(bus=self.bus)
        self.catalog = catalog
        self.network = Network(
            self.sim,
            self.rng.fork("network"),
            base_latency=base_latency,
            jitter=jitter,
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
            corruption_probability=corruption_probability,
            bus=self.bus,
        )
        #: The Runtime the sites run on — here, always the sim adapter.
        #: The facade itself keeps direct `sim`/`network` access: it is
        #: the composition root, not a protocol state machine.
        self.runtime = SimRuntime(self.sim, self.network, rng=self.rng)
        self.sites: Dict[SiteId, DatabaseSite] = {}
        self.handles: List[TransactionHandle] = []
        #: Populated for the protocols that need system-wide registries:
        #: Paxos Commit's client-handle board, path-sensitive commit's
        #: routing record.  None under the classic two-phase protocol.
        self.decision_board: Optional[DecisionBoard] = None
        self.path_registry: Optional[PathRegistry] = None
        if self.config.protocol is CommitProtocol.PAXOS:
            self.decision_board = DecisionBoard()
        elif self.config.protocol is CommitProtocol.PATH_SENSITIVE:
            self.path_registry = PathRegistry()
        for site_id in sorted(catalog.all_sites()):
            store = ItemStore(
                {
                    item: initial_values[item]
                    for item in catalog.items_at(site_id)
                }
            )
            runtime = SiteRuntime(
                site_id=site_id,
                rt=self.runtime,
                catalog=catalog,
                store=store,
                locks=LockManager(),
                outcomes=OutcomeTable(),
                outcome_log=OutcomeLog(),
                config=self.config,
                metrics=self.metrics,
                transitions=self.transitions,
                bus=self.bus,
            )
            if self.decision_board is not None:
                self.sites[site_id] = PaxosSite(runtime, self.decision_board)
            elif self.path_registry is not None:
                self.sites[site_id] = PathSensitiveSite(
                    runtime, self.path_registry
                )
            else:
                self.sites[site_id] = DatabaseSite(runtime)

    @staticmethod
    def build(
        *,
        sites: int,
        items: Mapping[ItemId, Value],
        seed: int = 0,
        config: Optional[ProtocolConfig] = None,
        base_latency: float = 0.01,
        jitter: float = 0.005,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        corruption_probability: float = 0.0,
    ) -> "DistributedSystem":
        """Build a system with *items* spread round-robin over *sites* sites."""
        if sites <= 0:
            raise ProtocolError(f"need at least one site, got {sites}")
        site_ids = [f"site-{index}" for index in range(sites)]
        catalog = Catalog.round_robin(sorted(items), site_ids)
        return DistributedSystem(
            catalog=catalog,
            initial_values=items,
            seed=seed,
            config=config,
            base_latency=base_latency,
            jitter=jitter,
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
            corruption_probability=corruption_probability,
        )

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(
        self, transaction: Transaction, *, at: Optional[SiteId] = None
    ) -> TransactionHandle:
        """Submit *transaction*, coordinated at *at* (default: the home
        site of its first declared item)."""
        coordinator = at if at is not None else self.catalog.site_of(
            transaction.items[0]
        )
        site = self.sites[coordinator]
        handle = TransactionHandle(
            txn="?",
            transaction=transaction,
            submitted_at=self.sim.now,
        )
        self.handles.append(handle)
        if not site.is_up:
            # The client's request never reaches a crashed coordinator;
            # it fails immediately (the client may retry elsewhere).
            handle.txn = f"unsent@{coordinator}"
            handle.was_delayed_by_failure = True
            handle.mark_aborted(
                self.sim.now, f"coordinator site {coordinator} is down"
            )
            self.metrics.txn_submitted(site=coordinator)
            self.metrics.txn_aborted(site=coordinator)
            if self.bus:
                self.bus.emit(
                    "txn.submitted",
                    time=self.sim.now,
                    txn=handle.txn,
                    site=coordinator,
                    items=tuple(transaction.items),
                    sites=(),
                )
                self.bus.emit(
                    "txn.aborted",
                    time=self.sim.now,
                    txn=handle.txn,
                    site=coordinator,
                    reason=f"coordinator site {coordinator} is down",
                )
            return handle
        site.submit(transaction, handle)
        return handle

    def read_item(self, item: ItemId) -> Value:
        """Directly read an item's current value (simple or polyvalue).

        This is an observer's view for tests and metrics, not a
        transactional read.
        """
        return self.sites[self.catalog.site_of(item)].store.read(item)

    # ------------------------------------------------------------------
    # Simulation control
    # ------------------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        """Advance simulated time by *seconds*."""
        self.sim.run_until(self.sim.now + seconds)

    def run_until(self, time: float) -> None:
        """Advance simulated time to absolute *time*."""
        self.sim.run_until(time)

    #: Event-label prefixes that do not count against quiescence: the
    #: per-site outcome-maintenance loops and workload arrival streams
    #: reschedule themselves forever, so "no events pending" never
    #: happens; "nothing pending but background periodics" is the
    #: meaningful notion of an idle system.
    BACKGROUND_LABELS = ("outcome-maintenance", "workload-arrival", "arrival")

    def quiescent(self) -> bool:
        """True iff no protocol work is in flight.

        Quiescent means every pending simulation event is background
        maintenance: no protocol message is travelling, no protocol
        timer is armed.  The invariant oracles are evaluated at
        quiescent points, where the global state is well defined.
        """
        return (
            self.sim.next_time_except(self.BACKGROUND_LABELS) is None
        )

    def run_to_quiescence(self, *, max_time: Optional[float] = None) -> bool:
        """Advance until :meth:`quiescent` (or absolute *max_time*).

        Returns True when quiescence was reached.  Maintenance events
        that come due still fire (they are part of normal behaviour).
        """
        return self.sim.run_until_quiescent(
            ignore_prefixes=self.BACKGROUND_LABELS, max_time=max_time
        )

    def settle(self, *, max_time: float, step: float = 1.0) -> bool:
        """Run maintenance rounds until the database converges.

        Convergence is the paper's end state after all failures
        recover: zero polyvalues, zero outcome bookkeeping (both the
        participants' outcome tables and the coordinators' outcome
        logs), no pending transactions.  Returns True when reached
        before absolute *max_time*; the caller is responsible for
        having recovered all sites and healed all partitions first.
        """

        def _converged() -> bool:
            return (
                self.total_polyvalues() == 0
                and self.outcome_bookkeeping_size() == 0
                and self.total_protocol_residue() == 0
                and not any(
                    site.runtime.outcome_log.pending()
                    for site in self.sites.values()
                )
                and not self.pending_handles()
                # A protocol timer still armed (e.g. a participant whose
                # abort message was lost, waiting out its compute
                # timeout) will still move state — and release locks —
                # when it fires; the system has not converged until it
                # is also quiescent.
                and self.quiescent()
            )

        while self.sim.now < max_time:
            if _converged():
                return True
            self.run_for(min(step, max_time - self.sim.now))
        return _converged()

    # ------------------------------------------------------------------
    # Failure injection (Crashable)
    # ------------------------------------------------------------------

    def crash_site(self, site: SiteId) -> None:
        """Fail-stop *site*: it loses volatile state, its traffic drops.

        Transactions it was coordinating and had not decided are
        presumed aborted — participants converge to the same answer by
        querying after recovery.
        """
        self.network.crash_site(site)
        if self.bus:
            self.bus.emit("site.crash", time=self.sim.now, site=site)
        undecided = self.sites[site].crash()
        for handle in undecided:
            if handle.status is TxnStatus.PENDING:
                handle.was_delayed_by_failure = True
                handle.mark_aborted(
                    self.sim.now, "coordinator crashed; presumed abort"
                )
                self.metrics.txn_aborted(site=site)
                if self.bus:
                    self.bus.emit(
                        "txn.aborted",
                        time=self.sim.now,
                        txn=handle.txn,
                        site=site,
                        reason="coordinator crashed; presumed abort",
                    )

    def down_sites(self) -> List[SiteId]:
        """The sites currently crashed, in stable order."""
        return sorted(
            site_id
            for site_id, site in self.sites.items()
            if not site.is_up
        )

    def recover_site(self, site: SiteId) -> None:
        """Bring *site* back up; it replays durable state."""
        self.network.recover_site(site)
        if self.bus:
            self.bus.emit("site.recover", time=self.sim.now, site=site)
        self.sites[site].recover()

    def degrade_site(self, site: SiteId, factor: float) -> None:
        """Gray-degrade *site*: all its traffic slows by *factor*.

        The site keeps processing — this is the slow-but-alive failure
        mode, not an outage.
        """
        self.network.degrade_site(site, factor)
        if self.bus:
            self.bus.emit(
                "site.degrade", time=self.sim.now, site=site, factor=factor
            )

    def restore_site(self, site: SiteId) -> None:
        """Remove *site*'s gray degradation."""
        self.network.restore_site(site)
        if self.bus:
            self.bus.emit("site.restore", time=self.sim.now, site=site)

    # ------------------------------------------------------------------
    # Whole-database observations
    # ------------------------------------------------------------------

    def total_polyvalues(self) -> int:
        """The number of items currently holding polyvalues — the
        paper's ``P(t)`` for this system."""
        return sum(site.polyvalue_count() for site in self.sites.values())

    def polyvalued_items(self) -> List[ItemId]:
        """Every item currently holding a polyvalue."""
        found: List[ItemId] = []
        for site in self.sites.values():
            found.extend(site.store.polyvalued_items())
        return sorted(found)

    def all_certain(self) -> bool:
        """True iff no item holds a polyvalue (all uncertainty resolved)."""
        return self.total_polyvalues() == 0

    def database_state(self) -> Dict[ItemId, Value]:
        """A copy of every item's current value across all sites."""
        state: Dict[ItemId, Value] = {}
        for site in self.sites.values():
            state.update(site.store.all_values())
        return state

    def pending_handles(self) -> List[TransactionHandle]:
        """Handles still awaiting a decision."""
        return [
            handle
            for handle in self.handles
            if handle.status is TxnStatus.PENDING
        ]

    def total_protocol_residue(self) -> int:
        """Protocol-specific undecided state across all sites (Paxos
        acceptor/registrar records, path-sensitive apply queues);
        convergence requires it to drain to zero."""
        return sum(site.protocol_residue() for site in self.sites.values())

    def outcome_bookkeeping_size(self) -> int:
        """Total outcome-table entries across sites (should fall back to
        zero after failures recover — the paper's GC property)."""
        return sum(len(site.runtime.outcomes) for site in self.sites.values())
